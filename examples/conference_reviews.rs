//! The paper's full §1 scenario: three rules, negation in a body, and how
//! query answers change across the OWA–CWA spectrum.
//!
//! ```sh
//! cargo run --example conference_reviews
//! ```

use oc_exchange::chase::canonical_solution;
use oc_exchange::core::certain;
use oc_exchange::logic::Query;
use oc_exchange::workloads::conference;
use oc_exchange::{Tuple, Value};

fn main() {
    let mapping = conference::mapping();
    println!("The §1 mapping:\n{mapping}");

    // Two papers; p0 is assigned to a reviewer, p1 is not — small enough
    // that the exhaustive CWA decision below stays instant.
    let source = conference::source(2, 2);
    println!("Source:\n{source}\n");

    let csol = canonical_solution(&mapping, &source);
    println!("Canonical solution:\n{}\n", csol.instance);
    println!(
        "({} justifications recorded, one per invented null)\n",
        csol.null_origin.len()
    );

    let empty = Tuple::new(Vec::<Value>::new());

    // Positive queries: one tractable answer for every annotation (Prop 3).
    let reviewed = conference::reviewed_query();
    let (answers, _) = certain::certain_answers(&mapping, &source, &reviewed, None);
    println!("certain(\"papers with some review\") = {answers}");
    println!("  — includes unassigned papers: the third rule invents their reviews.\n");

    // The one-author anomaly across the spectrum.
    let one_author = conference::one_author_query();
    let owa = certain::certain_owa(&mapping, &source, &one_author, &empty, None);
    let mixed = certain::certain_contains(&mapping, &source, &one_author, &empty, None);
    let cwa = certain::certain_cwa(&mapping, &source, &one_author, &empty);
    println!("certain(\"every paper has exactly one author\"):");
    println!("  all-OWA : {}", owa.certain);
    println!(
        "  mixed   : {}   <- the paper's recommended annotation",
        mixed.certain
    );
    println!(
        "  all-CWA : {}   <- the §1 anomaly: CWA invents uniqueness",
        cwa.certain
    );

    // A closed-world guarantee the OWA cannot give: every review belongs to
    // a submitted paper (Submissions mirrors Papers one-to-one on paper#).
    let no_rogue = Query::boolean(
        oc_exchange::logic::parse_formula(
            "forall p r. (Reviews(p, r) -> exists a. Submissions(p, a))",
        )
        .unwrap(),
    );
    let mixed2 = certain::certain_contains(&mapping, &source, &no_rogue, &empty, None);
    let owa2 = certain::certain_owa(&mapping, &source, &no_rogue, &empty, None);
    println!("\ncertain(\"every review belongs to a submitted paper\"):");
    println!(
        "  mixed   : {} (closed paper# gives the guarantee)",
        mixed2.certain
    );
    println!(
        "  all-OWA : {} (open world: rogue reviews may exist)",
        owa2.certain
    );
}
