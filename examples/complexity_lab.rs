//! A miniature complexity laboratory: watch the paper's two trichotomies
//! appear as timing curves.
//!
//! ```sh
//! cargo run --release --example complexity_lab
//! ```

use oc_exchange::chase::Mapping;
use oc_exchange::core::{certain, compose, semantics};
use oc_exchange::logic::Query;
use oc_exchange::solver::SearchBudget;
use oc_exchange::{Instance, Tuple, Value};
use std::time::Instant;

fn us(f: impl FnOnce()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_micros()
}

fn unary_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("E", &[&format!("e{i}")]);
    }
    s
}

fn main() {
    println!("== Theorem 2: membership, PTIME vs NP path ==");
    println!(
        "{:<4} {:>16} {:>16}",
        "n", "all-open (µs)", "all-closed (µs)"
    );
    for n in [4, 8, 16, 32] {
        let mut s = Instance::new();
        let mut t = Instance::new();
        for i in 0..n {
            s.insert_names("E", &[&format!("v{i}"), &format!("v{}", i + 1)]);
            t.insert_names("Ep", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let open = Mapping::parse("Ep(x:op, y:op) <- E(x, y)").unwrap();
        let closed = Mapping::parse("Ep(x:cl, y:cl) <- E(x, y)").unwrap();
        let d_open = us(|| {
            semantics::is_member(&open, &s, &t);
        });
        let d_closed = us(|| {
            semantics::is_member(&closed, &s, &t);
        });
        println!("{n:<4} {d_open:>16} {d_closed:>16}");
    }

    println!("\n== Theorem 3: DEQA, #op = 0 (coNP) vs #op = 1 (coNEXPTIME-ish) ==");
    let q = Query::boolean(
        oc_exchange::logic::parse_formula(
            "exists x. ((exists u. R(x, u)) & (forall y w. (R(y, w) & R(x, w) -> y = x)))",
        )
        .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    println!(
        "{:<4} {:>14} {:>10} {:>16} {:>10}",
        "n", "#op=0 (µs)", "leaves", "#op=1 (µs)", "leaves"
    );
    for n in [1, 2, 3, 4] {
        let s = unary_source(n);
        let closed = Mapping::parse("R(x:cl, z:cl) <- E(x)").unwrap();
        let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
        let mut leaves0 = 0;
        let d0 = us(|| {
            leaves0 = certain::certain_contains(&closed, &s, &q, &empty, None).leaves;
        });
        let budget = SearchBudget::bounded(2, 2);
        let mut leaves1 = 0;
        let d1 = us(|| {
            leaves1 = certain::certain_contains(&open, &s, &q, &empty, Some(&budget)).leaves;
        });
        println!("{n:<4} {d0:>14} {leaves0:>10} {d1:>16} {leaves1:>10}");
    }
    println!("(#op > 1 is undecidable — Theorem 3(3): there is no sweep to run)");

    println!("\n== Theorem 4 / Table 1: composition ==");
    println!(
        "{:<4} {:>14} {:>16} {:>20}",
        "n", "#op=0 (µs)", "#op=1 (µs)", "monotone Δop (µs)"
    );
    for n in [2, 4, 8] {
        let mut s = Instance::new();
        let mut w = Instance::new();
        for i in 0..n {
            s.insert_names("E", &[&format!("v{i}"), &format!("v{}", i + 1)]);
            w.insert_names("F", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let sig0 = Mapping::parse("M(x:cl, y:cl) <- E(x, y)").unwrap();
        let sig1 = Mapping::parse("M(x:cl, z:op) <- E(x, y)").unwrap();
        let del = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
        let delop = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
        let d0 = us(|| {
            compose::comp_membership(&sig0, &del, &s, &w, None);
        });
        let mut w1 = Instance::new();
        for i in 0..n.min(3) {
            w1.insert_names("F", &[&format!("v{i}"), &format!("x{i}")]);
        }
        let d1 = us(|| {
            compose::comp_membership(&sig1, &del, &s, &w1, None);
        });
        let d2 = us(|| {
            compose::comp_membership(&sig1, &delop, &s, &w, None);
        });
        println!("{n:<4} {d0:>14} {d1:>16} {d2:>20}");
    }
    println!("(the monotone-Δop column is Lemma 3: Σ's annotation is irrelevant)");
}
