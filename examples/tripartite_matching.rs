//! NP-hardness made tangible: solving tripartite matching through the
//! data-exchange membership problem (Theorem 2's reduction).
//!
//! ```sh
//! cargo run --release --example tripartite_matching
//! ```

use oc_exchange::workloads::tripartite::{
    mapping, solve_via_membership, source, target, TripartiteInstance,
};
use std::time::Instant;

fn main() {
    println!("The reduction mapping (#cl = 1):\n{}", mapping());

    // A hand-made instance: 3 boys, girls, hobbies; 5 compatible triples.
    let inst = TripartiteInstance {
        n: 3,
        triples: vec![(0, 0, 1), (0, 1, 0), (1, 1, 2), (2, 2, 0), (2, 0, 2)],
    };
    println!("Instance: n = {}, triples = {:?}", inst.n, inst.triples);
    println!("Source S:\n{}", source(&inst));
    println!("Target T:\n{}\n", target(&inst));

    let brute = inst.solve_brute_force();
    println!("brute-force matching: {brute:?}");
    println!("T ∈ ⟦S⟧_Σα (membership): {}\n", solve_via_membership(&inst));

    // Scaling sweep: planted instances stay solvable; timing shows the
    // valuation search at work.
    println!(
        "{:<6} {:>10} {:>14} {:>14}",
        "n", "triples", "brute (µs)", "exchange (µs)"
    );
    for n in 2..=6 {
        let inst = TripartiteInstance::planted(n, n, 42 + n as u64);
        let t0 = Instant::now();
        let b = inst.solve_brute_force().is_some();
        let brute_us = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let e = solve_via_membership(&inst);
        let exch_us = t1.elapsed().as_micros();
        assert_eq!(b, e);
        println!(
            "{:<6} {:>10} {:>14} {:>14}",
            n,
            inst.triples.len(),
            brute_us,
            exch_us
        );
    }
}
