//! Schema evolution through mapping composition (§5).
//!
//! A three-schema pipeline — personnel records evolve twice — composed
//! syntactically with the Lemma 5 algorithm, cross-validated semantically,
//! followed by the Proposition 6 counterexample showing why plain STDs
//! cannot do this.
//!
//! ```sh
//! cargo run --example schema_evolution
//! ```

use oc_exchange::core::compose_alg::{closure_class, compose_skstd};
use oc_exchange::core::{non_closure, skstd::SkMapping};
use oc_exchange::logic::eval::FuncTable;
use oc_exchange::{FuncSym, Instance, Value};

fn main() {
    // Generation 1 → 2: invent an id per employee name (example (8) style).
    let sigma =
        SkMapping::parse("Staff(id(name):cl, name:cl, dept:cl) <- Employees(name, dept)").unwrap();
    // Generation 2 → 3: departments become teams with invented team codes.
    let delta =
        SkMapping::parse("Member(eid:cl, team(dept):cl) <- Staff(eid, name, dept)").unwrap();
    println!("Σ (v1 → v2):\n{sigma}");
    println!("Δ (v2 → v3):\n{delta}");
    println!("Theorem 5 class: {:?}\n", closure_class(&sigma, &delta));

    // Syntactic composition (Lemma 5).
    let comp = compose_skstd(&sigma, &delta).expect("composition succeeds");
    println!("Γ = Σ ∘ Δ (composed syntactically):\n{}", comp.mapping);

    // Cross-validate: pick function tables, run the two-hop pipeline and
    // the composed mapping, compare solutions (Claim 7(b)).
    let mut source = Instance::new();
    source.insert_names("Employees", &["ada", "compilers"]);
    source.insert_names("Employees", &["grace", "compilers"]);
    source.insert_names("Employees", &["edgar", "databases"]);

    let mut f = FuncTable::new();
    let id = FuncSym::new("id");
    f.define(id, vec![Value::c("ada")], Value::c("e1"));
    f.define(id, vec![Value::c("grace")], Value::c("e2"));
    f.define(id, vec![Value::c("edgar")], Value::c("e3"));
    let mid = sigma.sol(&source, &f).rel_part();
    println!("Intermediate (v2) instance:\n{mid}\n");

    let mut g = FuncTable::new();
    let team = FuncSym::new("team");
    g.define(team, vec![Value::c("compilers")], Value::c("T-C"));
    g.define(team, vec![Value::c("databases")], Value::c("T-D"));
    let two_hop = delta.sol(&mid, &g);

    // H′ = F′ ∪ G′ (apply σ-side renames if any).
    let mut h = FuncTable::new();
    for ((sym, args), val) in f.iter().map(|(k, v)| (k.clone(), *v)) {
        let renamed = *comp.sigma_func_renames.get(&sym).unwrap_or(&sym);
        h.define(renamed, args, val);
    }
    for ((sym, args), val) in g.iter().map(|(k, v)| (k.clone(), *v)) {
        h.define(sym, args, val);
    }
    let one_hop = comp.mapping.sol(&source, &h);
    println!("Two-hop solution :\n{}", two_hop.rel_part());
    println!("One-hop solution :\n{}", one_hop.rel_part());
    println!(
        "Claim 7(b) — solutions coincide: {}\n",
        if one_hop == two_hop {
            "yes"
        } else {
            "NO (bug!)"
        }
    );

    // And the negative side: plain annotated STDs do NOT compose (Prop 6).
    println!("Proposition 6 — why plain STDs cannot do this:");
    for n in 2..=4 {
        let (rect, dist) = non_closure::demonstrate(n);
        println!("  n={n}: rectangle target ∈ Σ∘Δ: {rect}; distinct-values target ∈ Σ∘Δ: {dist}");
    }
    println!(
        "  Any FO-STD Γ admits the distinct-values target once n exceeds its\n\
         null-sharing width — so no Γ captures Σ∘Δ; SkSTDs (Skolem terms) fix this."
    );
}
