//! Quickstart: define an annotated mapping, exchange data, answer queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oc_exchange::chase::{canonical_solution, Mapping};
use oc_exchange::core::{certain, semantics};
use oc_exchange::logic::Query;
use oc_exchange::{Instance, Tuple, Value};

fn main() {
    // 1. A mapping with mixed open/closed annotations, in rule syntax:
    //    paper numbers are closed (only source papers flow to the target),
    //    authors are open (a paper may have many authors).
    let mapping = Mapping::parse("Submissions(paper:cl, author:op) <- Papers(paper, title)")
        .expect("rules parse");
    println!("Mapping:\n{mapping}");

    // 2. A source instance.
    let mut source = Instance::new();
    source.insert_names("Papers", &["p1", "Schema mappings, briefly"]);
    source.insert_names("Papers", &["p2", "Nulls considered harmful"]);
    println!("Source:\n{source}\n");

    // 3. The annotated canonical solution: one tuple per paper, with an
    //    open-annotated null for the unknown author.
    let csol = canonical_solution(&mapping, &source);
    println!("Canonical solution CSol_A(S):\n{}\n", csol.instance);

    // 4. Membership in the mixed-world semantics ⟦S⟧_Σα (Theorem 2).
    let mut target = Instance::new();
    target.insert_names("Submissions", &["p1", "ada"]);
    target.insert_names("Submissions", &["p1", "grace"]); // 2nd author: OK, open
    target.insert_names("Submissions", &["p2", "edgar"]);
    println!(
        "T with two authors for p1 is a member: {}",
        semantics::is_member(&mapping, &source, &target)
    );
    let mut rogue = target.clone();
    rogue.insert_names("Submissions", &["p99", "nobody"]);
    println!(
        "T with an unknown paper p99 is a member: {} (paper# is closed)\n",
        semantics::is_member(&mapping, &source, &rogue)
    );

    // 5. Certain answers. A positive query evaluates naively (Prop 3)…
    let q = Query::parse(&["p"], "exists a. Submissions(p, a)").unwrap();
    let (answers, _) = certain::certain_answers(&mapping, &source, &q, None);
    println!("certain(\"papers with an author\") = {answers}");

    // …while the one-author constraint is decided by counterexample search:
    let one_author = Query::boolean(
        oc_exchange::logic::parse_formula(
            "forall p a1 a2. (Submissions(p, a1) & Submissions(p, a2) -> a1 = a2)",
        )
        .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    let mixed = certain::certain_contains(&mapping, &source, &one_author, &empty, None);
    let cwa = certain::certain_cwa(&mapping, &source, &one_author, &empty);
    println!(
        "certain(\"every paper has exactly one author\"): mixed = {}, all-CWA = {} (the paper's §1 anomaly)",
        mixed.certain, cwa.certain
    );
    if let Some(cex) = mixed.counterexample {
        println!("counterexample (a member with a two-author paper):\n{cex}");
    }
}
