//! Incomplete catalog: the extension stack on one scenario.
//!
//! A parts catalog is exchanged into an assembly database that invents
//! nulls; we then answer questions no positive FO query can express:
//!
//! 1. **recursive reachability** over the exchanged data with stratified
//!    Datalog (certain answers for every annotation — §6 extension 1);
//! 2. **minimal materialization** via cores (FKP \[12\]): the smallest
//!    `Σα`-solution worth storing;
//! 3. **a difference query** under the CWA answered exactly with
//!    conditional tables (Imieliński–Lipski, cited in §2) and
//!    cross-checked against the coNP valuation search;
//! 4. the **Codd fast path**: PTIME membership checking when no null is
//!    shared.
//!
//! ```sh
//! cargo run --example incomplete_catalog
//! ```

use oc_exchange::chase::core::{ann_core_of, core_of};
use oc_exchange::chase::{canonical_solution, Mapping};
use oc_exchange::core::ctable_bridge::certain_answers_cwa_ra;
use oc_exchange::core::ptime_lang::certain_answers_ptime;
use oc_exchange::core::{certain, semantics};
use oc_exchange::ctables::RaExpr;
use oc_exchange::logic::datalog::DatalogQuery;
use oc_exchange::logic::Query;
use oc_exchange::solver::repa::is_codd;
use oc_exchange::Instance;

fn main() {
    // ── The exchange ────────────────────────────────────────────────────
    // Source: direct sub-part facts and a vendor list. Target: the same
    // links (closed — the assembly DB is authoritative) plus a Supplier
    // relation whose contract id is invented (closed null: exactly one
    // contract per vendor) and whose region is open (a vendor may serve
    // many regions).
    let mapping = Mapping::parse(
        "Link(part:cl, sub:cl) <- SubPart(part, sub); \
         Supplier(v:cl, contract:cl, region:op) <- Vendor(v)",
    )
    .expect("rules parse");

    let mut source = Instance::new();
    for (a, b) in [
        ("engine", "piston"),
        ("engine", "crankshaft"),
        ("piston", "ring"),
        ("car", "engine"),
        ("car", "wheel"),
    ] {
        source.insert_names("SubPart", &[a, b]);
    }
    source.insert_names("Vendor", &["acme"]);
    source.insert_names("Vendor", &["globex"]);

    let csol = canonical_solution(&mapping, &source);
    println!("Canonical solution:\n{}", csol.instance);

    // ── 1. Recursive certain answers (Datalog, §6 extension) ───────────
    let needs = DatalogQuery::parse(
        "Needs",
        "Needs(x, y) <- Link(x, y); Needs(x, z) <- Needs(x, y) & Link(y, z)",
    )
    .expect("datalog parses");
    let (reachable, completeness) = certain_answers_ptime(&mapping, &source, &needs, None);
    println!(
        "Transitive sub-parts (certain, {completeness:?}): {} pairs",
        reachable.len()
    );
    for t in reachable.iter() {
        println!("  needs{t}");
    }
    assert!(reachable.contains(&oc_exchange::Tuple::from_names(&["car", "ring"])));

    // ── 2. The core: minimal materialization ───────────────────────────
    // The annotated core of CSol_A is the smallest Σα-solution; for this
    // mapping nothing shrinks (every null is justified by a distinct
    // vendor) — but the FKP core collapses nulls onto constants when the
    // data supports it.
    let ann_core = ann_core_of(&csol.instance);
    println!(
        "\nAnnotated core: {} of {} tuples kept ({} merge steps)",
        ann_core.core.tuple_count(),
        csol.instance.tuple_count(),
        ann_core.steps,
    );
    let fkp = core_of(&csol.instance.rel_part());
    println!("FKP core: {} tuples", fkp.core.tuple_count());

    // ── 3. Exact CWA certain answers via c-tables ───────────────────────
    // "Which parts are *roots* — used in some link but never as a
    // sub-part?" — a difference query, where naive evaluation over nulls
    // would lie. The all-closed re-annotation gives the CWA reading.
    let cwa = mapping.all_closed();
    let roots_ra = RaExpr::rel("Link")
        .project([0])
        .diff(RaExpr::rel("Link").project([1]));
    let roots = certain_answers_cwa_ra(&cwa, &source, &roots_ra);
    println!("\nRoot parts under CWA (c-table route): {roots}");

    // Cross-check with the coNP valuation search on the equivalent FO
    // query.
    let roots_fo = Query::parse(&["x"], "(exists y. Link(x, y)) & !exists z. Link(z, x)")
        .expect("query parses");
    let (roots_search, _) = certain::certain_answers(&cwa, &source, &roots_fo, None);
    assert_eq!(roots, roots_search, "two exact engines agree");
    println!("coNP search agrees: {roots_search}");

    // ── 4. Codd fast path ───────────────────────────────────────────────
    // No null repeats in this canonical solution, so all-closed membership
    // checks run through Hopcroft–Karp matching instead of backtracking.
    println!(
        "\nCSol is a Codd table: {}",
        is_codd(&csol.instance.rel_part())
    );
    let mut t = csol.instance.rel_part().apply(&{
        let mut v = oc_exchange::Valuation::new();
        for n in csol.instance.nulls() {
            v.set(n, oc_exchange::relation::ConstId::new("filled"));
        }
        v
    });
    println!(
        "A grounded copy is a member of the CWA semantics: {}",
        semantics::is_member(&cwa, &source, &t)
    );
    t.insert_names("Link", &["unjustified", "tuple"]);
    println!(
        "...and stops being one after adding an unjustified tuple: {}",
        semantics::is_member(&cwa, &source, &t)
    );
}
