//! Target constraints: exchange-then-repair with a weakly acyclic chase.
//!
//! The paper's conclusions (§6) point at target dependencies as the next
//! step ("adding weakly acyclic constraints would lead to a terminating
//! chase as in both open-world and closed-world cases"). This example runs
//! that pipeline: an HR source is exchanged into a target whose schema
//! carries its own tgds (every employee needs a department record) and
//! egds (contract ids are a key), and the chase repairs the canonical
//! solution — or reports that no solution exists.
//!
//! ```sh
//! cargo run --example target_constraints
//! ```

use oc_exchange::chase::{
    canonical_solution, canonical_solution_with_deps, is_weakly_acyclic, ChaseOutcome, Mapping,
    TargetDep,
};
use oc_exchange::core::certain;
use oc_exchange::logic::Query;
use oc_exchange::Instance;

fn main() {
    // Exchange: employees are copied; their manager field is dropped and
    // replaced by an invented contract id (closed: exactly one per person).
    let mapping = Mapping::parse(
        "Emp(name:cl, contract:cl) <- Staff(name, mgr); \
         Mgr(m:cl) <- Staff(name, m)",
    )
    .expect("rules parse");

    // Note: the manager "turing" is nobody's Staff record, so the tgd
    // below has real work to do.
    let mut source = Instance::new();
    source.insert_names("Staff", &["ada", "turing"]);
    source.insert_names("Staff", &["edsger", "turing"]);

    // Target dependencies:
    //   tgd: every manager is also an employee (with some contract);
    //   egd: the contract id is a key for Emp (one name per contract).
    let deps: Vec<TargetDep> = vec![
        TargetDep::parse("Emp(m:cl, c:cl) <- Mgr(m)").expect("tgd parses"),
        TargetDep::parse("n1 = n2 <- Emp(n1, c) & Emp(n2, c)").expect("egd parses"),
    ];
    println!("weakly acyclic: {}", is_weakly_acyclic(&deps));
    assert!(is_weakly_acyclic(&deps), "termination is guaranteed");

    let plain = canonical_solution(&mapping, &source);
    println!("\nBefore the chase:\n{}", plain.instance);

    let chased = canonical_solution_with_deps(&mapping, &deps, &source, 1000);
    assert_eq!(chased.outcome, ChaseOutcome::Satisfied);
    println!(
        "After the chase ({} steps):\n{}",
        chased.steps, chased.instance
    );

    // Positive certain answers straight off the chased instance
    // (certain_positive_with_deps re-runs the pipeline internally).
    let q = Query::parse(&["n"], "exists c. Emp(n, c)").expect("query parses");
    let employees = certain::certain_positive_with_deps(&mapping, &deps, &source, &q, 1000)
        .expect("chase succeeds");
    println!("Certain employees (incl. chased-in manager): {employees}");
    assert!(employees.contains(&oc_exchange::Tuple::from_names(&["turing"])));

    // A failing scenario: a key egd clashing on constants — the chase must
    // report that no solution exists rather than invent one.
    let bad_mapping =
        Mapping::parse("Emp(name:cl, dept:cl) <- Assigned(name, dept)").expect("rules parse");
    let key: Vec<TargetDep> =
        vec![TargetDep::parse("d1 = d2 <- Emp(n, d1) & Emp(n, d2)").expect("egd parses")];
    let mut conflicted = Instance::new();
    conflicted.insert_names("Assigned", &["ada", "compilers"]);
    conflicted.insert_names("Assigned", &["ada", "verification"]);
    let failed = canonical_solution_with_deps(&bad_mapping, &key, &conflicted, 1000);
    println!(
        "\nConflicting assignment chase outcome: {:?}",
        failed.outcome
    );
    assert!(matches!(failed.outcome, ChaseOutcome::Failed { .. }));
}
