//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of criterion the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: per benchmark, one warm-up pass bounded by the warm-up
//! time, then `sample_size` samples bounded by the measurement time; the
//! report prints min / mean / max per-iteration wall time. This is a *smoke
//! and trend* harness — statistically simpler than criterion proper, but the
//! numbers are honest wall-clock means and the output is stable enough for
//! the JSON perf trajectory in `BENCH_chase.json`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: a name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Timing loop handle passed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    target_samples: usize,
}

impl Bencher {
    /// Measure `f`, recording one sample per call until the sample target or
    /// the measurement deadline is reached (at least one sample always runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let t0 = Instant::now();
            let out = f();
            self.samples.push(t0.elapsed());
            std::hint::black_box(&out);
            drop(out);
            if self.samples.len() >= self.target_samples || Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/name/parameter`.
    pub id: String,
    /// Number of recorded samples.
    pub samples: usize,
    /// Minimum per-iteration time.
    pub min: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Maximum per-iteration time.
    pub max: Duration,
}

/// A named group of benchmarks with shared sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bound the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Bound the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run the closure against a throwaway bencher until the
        // warm-up deadline (at least once).
        let mut warm = Bencher {
            samples: Vec::new(),
            deadline: Instant::now() + self.warm_up_time,
            target_samples: usize::MAX,
        };
        f(&mut warm, input);

        let mut bencher = Bencher {
            samples: Vec::new(),
            deadline: Instant::now() + self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut bencher, input);
        let samples = &bencher.samples;
        let n = samples.len().max(1);
        let total: Duration = samples.iter().sum();
        let m = Measurement {
            id: format!("{}/{}", self.name, id),
            samples: samples.len(),
            min: samples.iter().min().copied().unwrap_or_default(),
            mean: total / n as u32,
            max: samples.iter().max().copied().unwrap_or_default(),
        };
        println!(
            "bench {:<60} {:>12?} (min {:?}, max {:?}, {} samples)",
            m.id, m.mean, m.min, m.max, m.samples
        );
        self.criterion.measurements.push(m);
        self
    }

    /// End the group (kept for API compatibility; measurements are recorded
    /// eagerly).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// All measurements recorded so far (inspection hook for harness code).
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(5)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(50));
            g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
                b.iter(|| n * n)
            });
            g.finish();
        }
        assert_eq!(c.measurements.len(), 1);
        let m = &c.measurements[0];
        assert_eq!(m.id, "demo/square/7");
        assert!(m.samples >= 1 && m.samples <= 5);
        assert!(m.min <= m.mean && m.mean <= m.max);
    }
}
