//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (small) slice of `rand` the workspace actually
//! uses: a seedable deterministic [`rngs::StdRng`], the [`Rng`] extension
//! methods `gen_range` / `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — the same
//! construction `rand`'s `SmallRng` family uses. Determinism per seed is the
//! only contract the workspace relies on (every caller pins an explicit
//! seed); the streams are *not* bit-compatible with upstream `StdRng`.

#![warn(missing_docs)]

/// Core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same per-seed determinism guarantee, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types [`Rng::gen_range`] can produce (integer primitives).
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough that
/// type inference at call sites (`consts[rng.gen_range(0..3)]`) resolves the
/// literal range's element type from the usage context, exactly as with the
/// real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                lo: Self,
                hi: Self,
                inclusive: bool,
                next: &mut dyn FnMut() -> u64,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is < 2^-64 * span — irrelevant for test workloads.
                let offset = (next() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly, consuming randomness from `next`.
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        T::sample_uniform(start, end, true, next)
    }
}

/// The user-facing extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample_one(&mut next)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16)
            .map(|_| StdRng::seed_from_u64(42).next_u64())
            .collect();
        assert!(same.iter().all(|&x| x == same[0]));
        assert_ne!(
            StdRng::seed_from_u64(42).next_u64(),
            c.next_u64(),
            "different seeds should diverge"
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0..=3u32);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "counts {counts:?}");
        }
    }
}
