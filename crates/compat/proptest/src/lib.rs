//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro over tests of the form `fn name(x in a..b)`,
//! * `#![proptest_config(ProptestConfig { cases, failure_persistence, .. })]`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Each test draws `cases` deterministic pseudo-random values from its
//! integer-range strategy (a splitmix64 walk keyed only by the case index,
//! so runs are reproducible) and executes the body once per value. There is
//! no shrinking: the workspace's tests all take a single `seed` parameter
//! that they feed to their own seeded generators, so the failing seed *is*
//! the minimal counterexample.

#![warn(missing_docs)]

/// Subset of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Accepted and ignored (no persistence in the offline shim).
    pub failure_persistence: Option<()>,
    /// Accepted and ignored (no shrinking in the offline shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            failure_persistence: None,
            max_shrink_iters: 0,
        }
    }
}

/// Strategies the [`proptest!`] macro can draw from: integer ranges.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// The `i`-th deterministic draw.
    fn draw(&self, i: u64) -> Self::Value;
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn draw(&self, i: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Cover the low end densely first (seeds 0..n are the most
                // scrutinized in seeded-generator tests), then jump around.
                let lo_span = span.min(4);
                let offset = if (i as u128) < lo_span {
                    i as u128
                } else {
                    (splitmix(i) as u128) % span
                };
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The proptest entry macro (offline subset): a config header followed by
/// test functions with a single `ident in strategy` parameter.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($arg:ident in $strat:expr) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strat = $strat;
                for case in 0..cfg.cases as u64 {
                    let $arg = $crate::Strategy::draw(&strat, case);
                    // One closure call per case so `prop_assume!` can bail
                    // out of the case with a plain `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

/// Assertion inside a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 50, failure_persistence: None, ..ProptestConfig::default()
        })]

        /// Values stay inside the strategy range; assume skips cleanly.
        #[test]
        fn draws_in_range(x in 10u64..20) {
            prop_assert!((10..20).contains(&x));
            prop_assume!(x != 13);
            prop_assert!(x != 13);
        }
    }

    #[test]
    fn low_seeds_covered_first() {
        let strat = 0u64..500;
        let first: Vec<u64> = (0..4).map(|i| Strategy::draw(&strat, i)).collect();
        assert_eq!(first, vec![0, 1, 2, 3]);
        // Later draws are reproducible.
        assert_eq!(Strategy::draw(&strat, 40), Strategy::draw(&strat, 40));
    }
}
