//! Offline fork-join / work-stealing subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of rayon the workspace's parallel sweeps use:
//!
//! * [`join`] — run two closures, potentially on different threads;
//! * [`scope`] — spawn an arbitrary number of scoped tasks;
//! * [`par_map`] — the workhorse: map `f` over `0..n` on a work-stealing
//!   pool and collect the results *in index order*;
//! * a minimal `par_iter().map(..).collect()` surface ([`prelude`]).
//!
//! ## Pool model
//!
//! There is no persistent thread pool. Each parallel region opens a
//! [`std::thread::scope`], seeds one double-ended job queue per worker
//! with a contiguous block of indices, and lets idle workers steal from
//! the *back* of their neighbours' queues (classic work-stealing: owners
//! pop from the front for locality, thieves take from the back to grab
//! the largest remaining chunk of someone else's block). Because every
//! job is enqueued before the workers start and nothing re-enqueues,
//! a worker may exit as soon as a full sweep over all queues finds them
//! empty. Scoped threads mean borrowed data needs no `'static` erasure
//! and panics propagate to the caller at scope exit.
//!
//! ## Determinism contract
//!
//! [`par_map`] writes each result into a per-index slot, so its output
//! vector is identical for every thread count — including 1, where the
//! whole region runs inline on the caller with zero queue traffic. Call
//! sites that need bit-identical sequential behaviour arrange for their
//! *merge order* to be canonical (index order) and keep any early-exit
//! logic deterministic; the pool itself never reorders results.
//!
//! ## Thread-count resolution
//!
//! [`current_num_threads`] resolves, in order: a programmatic
//! [`set_threads`] override (used by benches racing several widths in
//! one process), the `DX_THREADS` environment variable (read once), and
//! [`std::thread::available_parallelism`].
//!
//! ## Observability
//!
//! Every enqueued job bumps `pool.tasks_spawned`; every successful steal
//! bumps `pool.steals`. Workers run under a `pool.worker` span and emit a
//! `pool.worker.start` instant carrying their worker index, so timeline
//! events from a parallel region are attributable to workers (the trace
//! ring additionally stamps every event with a dense per-thread id).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Programmatic thread-count override (0 = unset, fall back to env).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("DX_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, usize::from),
        }
    })
}

/// Number of worker threads a parallel region will use.
///
/// Resolution order: [`set_threads`] override, then the `DX_THREADS`
/// environment variable (read once per process), then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn current_num_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Override the thread count for subsequent parallel regions.
///
/// `set_threads(0)` removes the override, restoring `DX_THREADS` / auto
/// resolution. Benches use this to race several widths in one process;
/// determinism tests use it to compare a parallel run against width 1.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Run two closures and return both results.
///
/// With more than one thread configured, `b` runs on a scoped helper
/// thread while `a` runs on the caller; at width 1 both run inline, in
/// order. Panics in either closure propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    dx_obs::count!("pool.tasks_spawned", 2);
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-compat join: task panicked");
        (ra, rb)
    })
}

/// A scope handle for [`scope`], able to spawn further tasks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from outside the scope; it completes
    /// before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        dx_obs::count!("pool.tasks_spawned");
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Create a fork-join scope: tasks spawned on the handle all complete
/// before this returns. At width 1 spawned tasks still run (std scoped
/// threads), so prefer [`par_map`] for width-sensitive hot paths.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Map `f` over `0..n`, in parallel, collecting results in index order.
///
/// The output is identical for every thread count (each index writes its
/// own slot). At width 1 — or for tiny inputs — the map runs inline on
/// the caller with no threads, queues, or counter traffic, making the
/// sequential path bit-identical to a plain loop.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    dx_obs::count!("pool.tasks_spawned", n);

    // One deque per worker, seeded with a contiguous block of indices.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = n * w / threads;
            let hi = n * (w + 1) / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    // Per-index result slots: `Mutex<Option<R>>` (not `OnceLock`) so only
    // `R: Send` is required; each slot is written exactly once, uncontended.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let run_worker = |w: usize| {
            let _span = dx_obs::span!("pool.worker");
            dx_obs::trace_instant!("pool.worker.start", "worker" = w);
            loop {
                // Own front first (locality), then steal from the back of
                // the next non-empty neighbour.
                let mut job = queues[w]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                if job.is_none() {
                    for o in 1..threads {
                        let victim = (w + o) % threads;
                        let stolen = queues[victim]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_back();
                        if stolen.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            job = stolen;
                            break;
                        }
                    }
                }
                match job {
                    Some(i) => {
                        let r = f(i);
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                    }
                    // All queues empty and nothing re-enqueues: done.
                    None => break,
                }
            }
        };
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            handles.push(s.spawn(move || run_worker(w)));
        }
        run_worker(0);
        for h in handles {
            h.join().expect("rayon-compat par_map: worker panicked");
        }
    });

    dx_obs::count!("pool.steals", steals.load(Ordering::Relaxed));
    slots
        .into_iter()
        .map(|c| {
            c.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("par_map slot filled exactly once")
        })
        .collect()
}

/// Like [`par_map`], but only goes parallel when `n >= min_parallel`;
/// below the threshold it runs inline regardless of the configured
/// width. Keeps tiny inputs off the pool without branching at every
/// call site.
pub fn par_map_threshold<R, F>(n: usize, min_parallel: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n < min_parallel || current_num_threads() <= 1 {
        return (0..n).map(f).collect();
    }
    par_map(n, f)
}

/// Minimal parallel-iterator surface: `slice.par_iter().map(f).collect()`.
pub mod iter {
    use super::par_map;

    /// Conversion into [`ParIter`] by reference (`&[T]`, `&Vec<T>`).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: Sync + 'a;
        /// Parallel iterator over `&Self::Item`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowed parallel iterator (produced by `par_iter()`).
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Map each item through `f` on the pool.
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`]; terminal op is [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Run the map on the pool and collect results in input order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
            C: FromParIter<R>,
        {
            let items = self.items;
            let f = self.f;
            C::from_par(par_map(items.len(), |i| f(&items[i])))
        }
    }

    /// Collection target for [`ParMap::collect`].
    pub trait FromParIter<T> {
        /// Build the collection from results already in input order.
        fn from_par(v: Vec<T>) -> Self;
    }

    impl<T> FromParIter<T> for Vec<T> {
        fn from_par(v: Vec<T>) -> Self {
            v
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{FromParIter, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    /// Serialize tests that touch the global width override.
    fn width_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_is_identical_across_widths() {
        let _g = width_guard();
        let n = 1000;
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9) ^ (i as u64);
        set_threads(1);
        let seq: Vec<u64> = par_map(n, f);
        for width in [2, 3, 4, 8] {
            set_threads(width);
            assert_eq!(par_map(n, f), seq, "width {width} diverged");
        }
        set_threads(0);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let _g = width_guard();
        for width in [1, 4] {
            set_threads(width);
            let (a, b) = join(|| 1 + 1, || "b");
            assert_eq!((a, b), (2, "b"));
        }
        set_threads(0);
    }

    #[test]
    fn scope_spawns_complete_before_return() {
        let _g = width_guard();
        set_threads(4);
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        set_threads(0);
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let _g = width_guard();
        set_threads(4);
        let words = vec!["a", "bb", "ccc", "dddd"];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
        set_threads(0);
    }

    #[test]
    fn threshold_keeps_small_inputs_inline() {
        let _g = width_guard();
        set_threads(4);
        let out = par_map_threshold(3, 64, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
        set_threads(0);
    }

    #[test]
    fn par_map_panics_propagate() {
        let _g = width_guard();
        set_threads(2);
        let r = std::panic::catch_unwind(|| {
            par_map(100, |i| {
                assert!(i != 37, "boom");
                i
            })
        });
        assert!(r.is_err());
        set_threads(0);
    }
}
