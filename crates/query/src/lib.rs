//! # dx-query — compiled, index-backed query evaluation
//!
//! The paper's query-answering results (Proposition 3, Theorem 4) reduce
//! certain answers of positive queries to *naive evaluation* over one
//! null-carrying instance, followed by discarding null-containing tuples.
//! The reference implementation of that semantics is the tree-walking
//! active-domain evaluator in [`dx_logic::eval`], which rescans whole
//! relations per quantifier. This crate is the compiled alternative:
//!
//! * [`lower`] — **safe-range analysis** and lowering of [`dx_logic::Formula`]
//!   queries into relational-algebra [`plan::Plan`]s: conjunctions become
//!   n-ary joins, constant equalities become pushed-down selections
//!   ([`plan::Plan::Bind`] inputs that seed index probes), safe negations
//!   become anti-joins, existentials become projections. Formulas outside
//!   the safe-range fragment are rejected — callers fall back to the
//!   tree-walking oracle, which stays bit-compatible by construction;
//! * [`ra`] — the same lowering for positional relational-algebra
//!   expressions ([`dx_ctables::RaExpr`]), with equality selections over
//!   products unified into natural joins;
//! * [`exec`] — the ground executor: greedy **join-order selection by index
//!   selectivity**, index-probe joins against any [`store::QueryStore`]
//!   (immutable [`dx_relation::InstanceIndex`] snapshots, or `dx-engine`'s
//!   live `IndexedInstance`), hash joins for materialized inputs, and
//!   semi-/anti-join reduction. Nulls are atomic values throughout — the
//!   naive semantics of §2;
//! * [`cexec`] — the **conditional execution mode**: the same plans run
//!   over [`dx_ctables::CInstance`] conditional tables, producing guarded
//!   [`dx_ctables::CTable`] results so the CWA certain-answer pipeline
//!   (`dx-core::ctable_bridge`) runs on plans too;
//! * [`eval`] — the consumer-facing bundle: [`eval::CompiledQuery`] (plan +
//!   head), [`eval::QueryEval`] (compile-or-fallback evaluation of a
//!   [`dx_logic::Query`], with [`eval::QueryEval::holds_on_indexed`] as the
//!   per-leaf form probing an already-maintained store), and
//!   [`eval::PlannedBodyEval`] (the [`dx_chase::BodyEval`] implementation
//!   that makes `canonical_solution`'s STD-body evaluation run on indexed
//!   plans);
//! * [`catalog`] — the shared [`catalog::PlanCatalog`]: compiled plans
//!   cached behind interior mutability, keyed by structural hash + schema
//!   fingerprint and verified by equality, so one catalog serves every
//!   pipeline (certain/possible answers, composition, c-table routes, the
//!   chase body evaluator, the solver's `Rep_A` refutation closures).
//!   Consumers draw from [`catalog::PlanCatalog::shared`] instead of
//!   constructing [`eval::QueryEval`]s directly.
//!
//! Differential testing: `tests/query_differential.rs` at the workspace
//! root asserts plan execution ≡ tree-walking evaluation on randomized
//! safe formulas, workload queries, null handling and certain-answer
//! post-filtering; `cexec` is cross-validated against
//! [`dx_ctables::RaExpr::eval_conditional`] and brute-force `Rep`
//! enumeration.

#![warn(missing_docs)]

pub mod catalog;
pub mod cexec;
pub mod delta;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod lower;
pub mod plan;
pub mod ra;
pub mod store;

pub use catalog::{CatalogStats, PlanCatalog};
pub use delta::{delta_plan, delta_sym, DeltaStore};
pub use eval::{CompiledQuery, PlannedBodyEval, QueryEval};
pub use explain::{explain_run, explain_run_conditional};
pub use lower::{lower_formula, LowerError, LowerReason};
pub use plan::{Plan, PlanPred, Ref};
pub use ra::CompiledRa;
pub use store::QueryStore;
