//! Lowering positional relational algebra ([`RaExpr`]) to plans.
//!
//! Each base-relation leaf scans with fresh variables; positional column
//! lists are tracked alongside the plan (`outcols`, which may repeat
//! variables — `π[0,0]` style). Two selections are pushed down during
//! lowering:
//!
//! * `σ_{i=j}` over any subexpression **unifies** the two column variables,
//!   turning products into natural joins the executor can order by
//!   selectivity;
//! * `σ_{i=c}` substitutes the constant into the scan templates (an index
//!   probe) and re-attaches the column through a single-row bind.
//!
//! Set operations align the two sides positionally (duplicated columns are
//! expanded with [`Plan::Alias`], then the right side is renamed onto the
//! left's variables): union stays a union, difference becomes an
//! anti-join, intersection a semi-join.

use crate::cexec::exec_conditional_table;
use crate::exec::exec;
use crate::plan::{Plan, PlanPred, Ref};
use crate::store::QueryStore;
use dx_ctables::algebra::{ColRef, RaError, RaExpr, RaPred};
use dx_ctables::{certain_answers_from, possible_answers_from, CInstance, CTable};
use dx_relation::{ConstId, Instance, InstanceIndex, RelSym, Relation, Tuple, Value, Var};
use std::collections::BTreeSet;

/// A relational-algebra expression compiled to a plan, with its positional
/// output columns and the constants the source expression mentions.
#[derive(Clone, Debug)]
pub struct CompiledRa {
    plan: Plan,
    outcols: Vec<Var>,
    consts: BTreeSet<ConstId>,
}

impl CompiledRa {
    /// Compile an RA expression; `arity` resolves base-relation arities
    /// (schema errors surface as the same [`RaError`]s the interpreter
    /// reports).
    pub fn compile(
        expr: &RaExpr,
        arity: &impl Fn(RelSym) -> Option<usize>,
    ) -> Result<Self, RaError> {
        // Validate against the schema first: lowering reuses the checks.
        expr.arity_with(arity)?;
        let mut supply = VarSupply::default();
        let (plan, outcols) = lower_ra(expr, arity, &mut supply)?;
        Ok(CompiledRa {
            plan,
            outcols,
            consts: expr.constants(),
        })
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.outcols.len()
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Ground evaluation over an indexed store (nulls as atomic values),
    /// mirroring [`RaExpr::eval_ground`].
    pub fn eval_ground_store(&self, store: &dyn QueryStore) -> Relation {
        let rows = exec(&self.plan, store);
        let cols: Vec<usize> = self
            .outcols
            .iter()
            .map(|v| rows.col(*v).expect("output column is produced"))
            .collect();
        Relation::from_tuples(
            self.outcols.len(),
            rows.rows
                .iter()
                .map(|r| Tuple::new(cols.iter().map(|&c| r[c]).collect::<Vec<_>>())),
        )
    }

    /// Ground evaluation over an instance.
    pub fn eval_ground(&self, inst: &Instance) -> Relation {
        self.eval_ground_store(&InstanceIndex::build(inst))
    }

    /// Conditional evaluation over a c-instance, mirroring
    /// [`RaExpr::eval_conditional`]: the result represents
    /// `{ eval_ground(v(T)) | v ⊨ global }`.
    pub fn eval_conditional(&self, cinst: &CInstance) -> CTable {
        exec_conditional_table(&self.plan, &self.outcols, cinst)
    }

    /// Exact certain answers `□Q(T)` via the conditional plan execution
    /// (the plan-backed counterpart of [`dx_ctables::certain_answers_ra`]).
    pub fn certain_answers(&self, cinst: &CInstance) -> Relation {
        let result = self.eval_conditional(cinst);
        let mut extra: BTreeSet<ConstId> = cinst.constants();
        extra.extend(self.consts.iter().copied());
        certain_answers_from(&result, &extra, &cinst.global)
    }

    /// Exact possible answers `◇Q(T)` via the conditional plan execution.
    pub fn possible_answers(&self, cinst: &CInstance) -> Relation {
        let result = self.eval_conditional(cinst);
        let mut extra: BTreeSet<ConstId> = cinst.constants();
        extra.extend(self.consts.iter().copied());
        possible_answers_from(&result, &extra, &cinst.global)
    }
}

#[derive(Default)]
struct VarSupply(u32);

impl VarSupply {
    fn fresh(&mut self) -> Var {
        let v = Var::new(&format!("·q{}", self.0));
        self.0 += 1;
        v
    }

    fn fresh_n(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

fn lower_ra(
    expr: &RaExpr,
    arity: &impl Fn(RelSym) -> Option<usize>,
    supply: &mut VarSupply,
) -> Result<(Plan, Vec<Var>), RaError> {
    match expr {
        RaExpr::Rel(r) => {
            let a = arity(*r).ok_or(RaError::UnknownRelation(*r))?;
            let vars = supply.fresh_n(a);
            Ok((
                Plan::Scan {
                    rel: *r,
                    args: vars.iter().map(|v| dx_logic::Term::Var(*v)).collect(),
                },
                vars,
            ))
        }
        RaExpr::Singleton(cs) => {
            let vars = supply.fresh_n(cs.len());
            let inputs: Vec<Plan> = vars
                .iter()
                .zip(cs.iter())
                .map(|(v, c)| Plan::Bind {
                    var: *v,
                    value: Value::Const(*c),
                })
                .collect();
            let plan = match inputs.len() {
                0 => Plan::Unit,
                1 => inputs.into_iter().next().expect("len checked"),
                _ => Plan::Join { inputs },
            };
            Ok((plan, vars))
        }
        RaExpr::Empty(a) => {
            let vars = supply.fresh_n(*a);
            Ok((Plan::Empty { vars: vars.clone() }, vars))
        }
        RaExpr::Select(e, pred) => {
            let (mut plan, mut outcols) = lower_ra(e, arity, supply)?;
            let mut residual: Vec<&RaPred> = Vec::new();
            // Pushdown is only attempted over alias-free subtrees: renaming
            // into (or out of) an `Alias` destination could collide two
            // columns of the same variable. With aliases present the
            // selection stays a filter, which is always correct.
            let pushable = alias_free(&plan);
            for p in top_conjuncts(pred) {
                match p {
                    RaPred::Eq(ColRef::Col(i), ColRef::Col(j)) if pushable => {
                        let (vi, vj) = (outcols[*i], outcols[*j]);
                        if vi != vj {
                            plan.rename_var(vj, vi);
                            for c in &mut outcols {
                                if *c == vj {
                                    *c = vi;
                                }
                            }
                        }
                    }
                    RaPred::Eq(ColRef::Col(i), ColRef::Const(c))
                    | RaPred::Eq(ColRef::Const(c), ColRef::Col(i))
                        if pushable =>
                    {
                        let vi = outcols[*i];
                        plan.substitute_const(vi, *c);
                        // Re-attach the column the substitution removed; the
                        // shared variable keeps any remaining producers
                        // (e.g. an inner bind) tied to the constant.
                        plan = Plan::Join {
                            inputs: vec![
                                plan,
                                Plan::Bind {
                                    var: vi,
                                    value: Value::Const(*c),
                                },
                            ],
                        };
                    }
                    other => residual.push(other),
                }
            }
            if !residual.is_empty() {
                let pred = PlanPred::And(
                    residual
                        .iter()
                        .map(|p| ra_pred_to_plan(p, &outcols))
                        .collect(),
                );
                plan = Plan::Select {
                    input: Box::new(plan),
                    pred,
                };
            }
            Ok((plan, outcols))
        }
        RaExpr::Project(e, cols) => {
            let (plan, outcols) = lower_ra(e, arity, supply)?;
            let new_cols: Vec<Var> = cols.iter().map(|&c| outcols[c]).collect();
            let keep: Vec<Var> = {
                let set: BTreeSet<Var> = new_cols.iter().copied().collect();
                set.into_iter().collect()
            };
            Ok((
                Plan::Project {
                    input: Box::new(plan),
                    vars: keep,
                },
                new_cols,
            ))
        }
        RaExpr::Product(l, r) => {
            let (pl, cl) = lower_ra(l, arity, supply)?;
            let (pr, cr) = lower_ra(r, arity, supply)?;
            let mut outcols = cl;
            outcols.extend(cr);
            Ok((
                Plan::Join {
                    inputs: vec![pl, pr],
                },
                outcols,
            ))
        }
        RaExpr::Union(l, r) | RaExpr::Diff(l, r) | RaExpr::Intersect(l, r) => {
            let (pl, cl) = lower_ra(l, arity, supply)?;
            let (pr, cr) = lower_ra(r, arity, supply)?;
            let (pl, cl) = distinct_columns(pl, cl, supply);
            let (mut pr, cr) = distinct_columns(pr, cr, supply);
            for (a, b) in cl.iter().zip(cr.iter()) {
                if a != b {
                    pr.rename_var(*b, *a);
                }
            }
            let plan = match expr {
                RaExpr::Union(_, _) => Plan::Union {
                    inputs: vec![pl, pr],
                },
                RaExpr::Diff(_, _) => Plan::AntiJoin {
                    left: Box::new(pl),
                    right: Box::new(pr),
                },
                _ => Plan::SemiJoin {
                    left: Box::new(pl),
                    right: Box::new(pr),
                },
            };
            Ok((plan, cl))
        }
    }
}

/// Expand duplicated output columns with aliases and narrow the plan to
/// exactly the column variables, so set operations compare positionally.
fn distinct_columns(mut plan: Plan, outcols: Vec<Var>, supply: &mut VarSupply) -> (Plan, Vec<Var>) {
    let mut seen: BTreeSet<Var> = BTreeSet::new();
    let mut cols = Vec::with_capacity(outcols.len());
    for v in outcols {
        if seen.insert(v) {
            cols.push(v);
        } else {
            let fresh = supply.fresh();
            plan = Plan::Alias {
                input: Box::new(plan),
                src: v,
                dst: fresh,
            };
            seen.insert(fresh);
            cols.push(fresh);
        }
    }
    let plan = Plan::Project {
        input: Box::new(plan),
        vars: cols.clone(),
    };
    (plan, cols)
}

/// Does the subtree contain no [`Plan::Alias`] node? (The precondition for
/// safe selection pushdown — see the `Select` arm above.)
fn alias_free(plan: &Plan) -> bool {
    match plan {
        Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } | Plan::Scan { .. } => true,
        Plan::Join { inputs } | Plan::Union { inputs } => inputs.iter().all(alias_free),
        Plan::SemiJoin { left, right }
        | Plan::AntiJoin { left, right }
        | Plan::SeededAntiJoin { left, right, .. } => alias_free(left) && alias_free(right),
        Plan::Select { input, .. } | Plan::Project { input, .. } => alias_free(input),
        Plan::Alias { .. } => false,
    }
}

fn top_conjuncts(pred: &RaPred) -> Vec<&RaPred> {
    match pred {
        RaPred::And(ps) => ps.iter().flat_map(top_conjuncts).collect(),
        RaPred::True => Vec::new(),
        other => vec![other],
    }
}

fn ra_pred_to_plan(pred: &RaPred, outcols: &[Var]) -> PlanPred {
    let conv = |r: &ColRef| -> Ref {
        match r {
            ColRef::Col(i) => Ref::Var(outcols[*i]),
            ColRef::Const(c) => Ref::Val(Value::Const(*c)),
        }
    };
    match pred {
        RaPred::True => PlanPred::True,
        RaPred::Eq(a, b) => PlanPred::Eq(conv(a), conv(b)),
        RaPred::And(ps) => PlanPred::And(ps.iter().map(|p| ra_pred_to_plan(p, outcols)).collect()),
        RaPred::Or(ps) => PlanPred::Or(ps.iter().map(|p| ra_pred_to_plan(p, outcols)).collect()),
        RaPred::Not(p) => PlanPred::Not(Box::new(ra_pred_to_plan(p, outcols))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Instance {
        let mut i = Instance::new();
        i.insert_names("RqE", &["a", "b"]);
        i.insert_names("RqE", &["b", "c"]);
        i.insert_names("RqE", &["a", "c"]);
        i
    }

    fn arity_of(inst: &Instance) -> impl Fn(RelSym) -> Option<usize> + '_ {
        |r| inst.relation(r).map(|rel| rel.arity())
    }

    fn check(expr: &RaExpr, inst: &Instance) {
        let compiled = CompiledRa::compile(expr, &arity_of(inst)).expect("compiles");
        assert_eq!(
            compiled.eval_ground(inst),
            expr.eval_ground(inst),
            "plan ≠ interpreter on {expr:?}"
        );
    }

    #[test]
    fn select_project_matches_interpreter() {
        let e = RaExpr::rel("RqE")
            .select(RaPred::col_is(0, "a"))
            .project([1]);
        check(&e, &edges());
    }

    #[test]
    fn product_with_eq_select_becomes_join() {
        let e = RaExpr::rel("RqE")
            .product(RaExpr::rel("RqE"))
            .select(RaPred::cols_eq(1, 2))
            .project([0, 3]);
        let compiled = CompiledRa::compile(&e, &arity_of(&edges())).unwrap();
        // The unification shows up as a shared variable (a natural join).
        assert!(!compiled.plan().explain().contains("select"));
        check(&e, &edges());
    }

    #[test]
    fn set_ops_match_interpreter() {
        let hop2 = RaExpr::rel("RqE")
            .product(RaExpr::rel("RqE"))
            .select(RaPred::cols_eq(1, 2))
            .project([0, 3]);
        check(
            &RaExpr::rel("RqE").clone().intersect(hop2.clone()),
            &edges(),
        );
        check(&RaExpr::rel("RqE").diff(hop2.clone()), &edges());
        check(&RaExpr::rel("RqE").union(hop2), &edges());
    }

    #[test]
    fn duplicate_projection_columns() {
        let e = RaExpr::rel("RqE").project([0, 0]);
        check(&e, &edges());
        let diff = RaExpr::rel("RqE").project([0, 0]).diff(RaExpr::rel("RqE"));
        check(&diff, &edges());
    }

    #[test]
    fn singleton_and_empty() {
        let s = RaExpr::Singleton(vec![ConstId::new("a"), ConstId::new("b")]);
        check(&s, &edges());
        check(&RaExpr::Empty(2).union(RaExpr::rel("RqE")), &edges());
    }

    #[test]
    fn schema_errors_surface() {
        let bad = RaExpr::rel("RqMissing");
        assert!(matches!(
            CompiledRa::compile(&bad, &arity_of(&edges())),
            Err(RaError::UnknownRelation(_))
        ));
    }

    #[test]
    fn conditional_certain_matches_interpreter_route() {
        let r = RelSym::new("RqC");
        let s = RelSym::new("RqD");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::from_names(&["a"]));
        inst.insert(s, Tuple::new(vec![Value::null(1)]));
        let ct = CInstance::from_naive(&inst);
        let q = RaExpr::Rel(r).diff(RaExpr::Rel(s));
        let arity = |rel: RelSym| inst.relation(rel).map(|x| x.arity());
        let compiled = CompiledRa::compile(&q, &arity).unwrap();
        assert_eq!(
            compiled.certain_answers(&ct),
            dx_ctables::certain_answers_ra(&q, &ct)
        );
        assert_eq!(
            compiled.possible_answers(&ct),
            dx_ctables::possible_answers_ra(&q, &ct)
        );
    }
}
