//! Delta plans: incremental maintenance of compiled-plan result sets.
//!
//! Given a compiled [`Plan`] and a set of *changed* relations, the delta
//! plan computes (a superset of) the **new** answers an insert-only change
//! produces, by the classic differentiation rule: for each occurrence of a
//! changed-relation scan, emit a copy of the plan with that one occurrence
//! redirected to the corresponding Δ-relation, and union the copies. Each
//! copy runs against the *post-update* store (via [`DeltaStore`], which
//! resolves Δ-symbols to the delta tuples and delegates everything else),
//! so every new answer — whose witness must use at least one new tuple —
//! is found by the copy that pins that tuple's occurrence, while old
//! answers may be re-derived (harmless under set union).
//!
//! This rule is only sound where the plan is **monotone in the changed
//! relations**: a changed relation occurring in the refuting side of an
//! [`Plan::AntiJoin`] / [`Plan::SeededAntiJoin`] can *remove* answers,
//! which no unioned copy can express. [`delta_plan`] returns `None` there,
//! and callers fall back to recomputation — the fallback arm of the delta
//! protocol (`DESIGN.md §Streaming data exchange`).

use crate::plan::Plan;
use crate::store::QueryStore;
use dx_relation::{FastMap, Instance, RelSym, Tuple, Value};
use std::collections::BTreeSet;

/// The reserved suffix marking a Δ-relation symbol. `$` cannot appear in
/// parsed relation names, so `R$delta` never collides with a user symbol.
const DELTA_SUFFIX: &str = "$delta";

/// The Δ-symbol for `rel` (the scan target delta plans redirect to).
pub fn delta_sym(rel: RelSym) -> RelSym {
    RelSym::new(&format!("{rel}{DELTA_SUFFIX}"))
}

/// Derive the delta plan of `plan` with respect to the `changed`
/// relations, or `None` when a changed relation occurs in a non-monotone
/// position (the refuting side of an anti-join) and incremental
/// maintenance is unsound.
///
/// When no changed relation occurs in the plan at all the result is
/// `Plan::Empty` — the change cannot produce new answers (callers usually
/// skip evaluation entirely in that case).
pub fn delta_plan(plan: &Plan, changed: &BTreeSet<RelSym>) -> Option<Plan> {
    if !monotone_in(plan, changed) {
        return None;
    }
    let mut variants = Vec::new();
    collect_variants(plan, changed, &mut |p| variants.push(p));
    Some(match variants.len() {
        0 => Plan::Empty { vars: plan.vars() },
        1 => variants.pop().expect("len checked"),
        _ => Plan::Union { inputs: variants },
    })
}

/// Is `plan` monotone in every relation of `changed` (no occurrence in a
/// refuting anti-join branch)?
fn monotone_in(plan: &Plan, changed: &BTreeSet<RelSym>) -> bool {
    match plan {
        Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } | Plan::Scan { .. } => true,
        Plan::Join { inputs } | Plan::Union { inputs } => {
            inputs.iter().all(|p| monotone_in(p, changed))
        }
        Plan::SemiJoin { left, right } => monotone_in(left, changed) && monotone_in(right, changed),
        Plan::AntiJoin { left, right } | Plan::SeededAntiJoin { left, right, .. } => {
            monotone_in(left, changed) && !mentions(right, changed)
        }
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Alias { input, .. } => {
            monotone_in(input, changed)
        }
    }
}

/// Does `plan` scan any relation of `rels`?
fn mentions(plan: &Plan, rels: &BTreeSet<RelSym>) -> bool {
    match plan {
        Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } => false,
        Plan::Scan { rel, .. } => rels.contains(rel),
        Plan::Join { inputs } | Plan::Union { inputs } => inputs.iter().any(|p| mentions(p, rels)),
        Plan::SemiJoin { left, right }
        | Plan::AntiJoin { left, right }
        | Plan::SeededAntiJoin { left, right, .. } => mentions(left, rels) || mentions(right, rels),
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Alias { input, .. } => {
            mentions(input, rels)
        }
    }
}

/// Emit one copy of the (sub)plan per changed-relation scan occurrence,
/// with that occurrence redirected to its Δ-symbol. Linear in plan size
/// times occurrence count.
fn collect_variants(plan: &Plan, changed: &BTreeSet<RelSym>, emit: &mut dyn FnMut(Plan)) {
    match plan {
        Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } => {}
        Plan::Scan { rel, args } => {
            if changed.contains(rel) {
                emit(Plan::Scan {
                    rel: delta_sym(*rel),
                    args: args.clone(),
                });
            }
        }
        Plan::Join { inputs } => {
            for (i, input) in inputs.iter().enumerate() {
                collect_variants(input, changed, &mut |v| {
                    let mut new_inputs = inputs.clone();
                    new_inputs[i] = v;
                    emit(Plan::Join { inputs: new_inputs });
                });
            }
        }
        Plan::Union { inputs } => {
            for (i, input) in inputs.iter().enumerate() {
                collect_variants(input, changed, &mut |v| {
                    let mut new_inputs = inputs.clone();
                    new_inputs[i] = v;
                    emit(Plan::Union { inputs: new_inputs });
                });
            }
        }
        Plan::SemiJoin { left, right } => {
            collect_variants(left, changed, &mut |v| {
                emit(Plan::SemiJoin {
                    left: Box::new(v),
                    right: right.clone(),
                });
            });
            collect_variants(right, changed, &mut |v| {
                emit(Plan::SemiJoin {
                    left: left.clone(),
                    right: Box::new(v),
                });
            });
        }
        Plan::AntiJoin { left, right } => {
            collect_variants(left, changed, &mut |v| {
                emit(Plan::AntiJoin {
                    left: Box::new(v),
                    right: right.clone(),
                });
            });
        }
        Plan::SeededAntiJoin { left, right, seed } => {
            collect_variants(left, changed, &mut |v| {
                emit(Plan::SeededAntiJoin {
                    left: Box::new(v),
                    right: right.clone(),
                    seed: seed.clone(),
                });
            });
        }
        Plan::Select { input, pred } => {
            collect_variants(input, changed, &mut |v| {
                emit(Plan::Select {
                    input: Box::new(v),
                    pred: pred.clone(),
                });
            });
        }
        Plan::Project { input, vars } => {
            collect_variants(input, changed, &mut |v| {
                emit(Plan::Project {
                    input: Box::new(v),
                    vars: vars.clone(),
                });
            });
        }
        Plan::Alias { input, src, dst } => {
            collect_variants(input, changed, &mut |v| {
                emit(Plan::Alias {
                    input: Box::new(v),
                    src: *src,
                    dst: *dst,
                });
            });
        }
    }
}

/// A [`QueryStore`] view that resolves Δ-symbols to a delta [`Instance`]
/// and delegates every other relation to the post-update base store —
/// what delta plans execute against.
pub struct DeltaStore<'a> {
    base: &'a dyn QueryStore,
    delta: &'a Instance,
    /// Δ-symbol → underlying relation, for the relations the delta holds.
    syms: FastMap<RelSym, RelSym>,
}

impl<'a> DeltaStore<'a> {
    /// View `base` (the post-update store) extended with Δ-relations
    /// serving the tuples of `delta`.
    pub fn new(base: &'a dyn QueryStore, delta: &'a Instance) -> Self {
        let syms = delta
            .relations()
            .map(|(rel, _)| (delta_sym(rel), rel))
            .collect();
        DeltaStore { base, delta, syms }
    }
}

impl QueryStore for DeltaStore<'_> {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        match self.syms.get(&rel) {
            Some(orig) => self.delta.rel_arity(*orig),
            None => self.base.rel_arity(rel),
        }
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        match self.syms.get(&rel) {
            Some(orig) => self.delta.rel_len(*orig),
            None => self.base.rel_len(rel),
        }
    }

    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        match self.syms.get(&rel) {
            Some(orig) => self.delta.selectivity(*orig, pattern),
            None => self.base.selectivity(rel, pattern),
        }
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        match self.syms.get(&rel) {
            Some(orig) => self.delta.for_each_matching(*orig, pattern, f),
            None => self.base.for_each_matching(rel, pattern, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CompiledQuery;
    use dx_logic::Query;
    use dx_relation::InstanceIndex;

    fn plan_of(heads: &[&str], src: &str) -> CompiledQuery {
        CompiledQuery::compile(&Query::parse(heads, src).unwrap()).unwrap()
    }

    fn inst(facts: &[(&str, &[&str])]) -> Instance {
        let mut s = Instance::new();
        for (rel, names) in facts {
            s.insert_names(rel, names);
        }
        s
    }

    #[test]
    fn join_delta_finds_exactly_the_new_answers() {
        let q = plan_of(&["x", "z"], "exists y. DltE(x, y) & DltF(y, z)");
        let old = inst(&[("DltE", &["a", "b"]), ("DltF", &["b", "c"])]);
        let delta = inst(&[("DltE", &["d", "b"])]);
        let mut new = old.clone();
        new.insert_names("DltE", &["d", "b"]);

        let changed: BTreeSet<RelSym> = [RelSym::new("DltE")].into();
        let dp = delta_plan(q.plan(), &changed).expect("join is monotone");
        let base = InstanceIndex::build(&new);
        let store = DeltaStore::new(&base, &delta);
        let rows = crate::exec::exec(&dp, &store);
        let cols: Vec<usize> = q
            .head()
            .iter()
            .map(|v| rows.col(*v).expect("head var produced"))
            .collect();
        let answers: BTreeSet<Vec<Value>> = rows
            .rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect();
        assert_eq!(
            answers,
            [vec![Value::c("d"), Value::c("c")]].into(),
            "only the (d, c) answer is new"
        );
    }

    #[test]
    fn unrelated_change_yields_empty_delta() {
        let q = plan_of(&["x"], "exists y. DltE(x, y)");
        let changed: BTreeSet<RelSym> = [RelSym::new("DltOther")].into();
        let dp = delta_plan(q.plan(), &changed).unwrap();
        assert!(matches!(dp, Plan::Empty { .. }));
    }

    #[test]
    fn negated_occurrence_refuses_delta() {
        let q = plan_of(&["x"], "exists y. DltE(x, y) & !DltF(y, x)");
        let changed: BTreeSet<RelSym> = [RelSym::new("DltF")].into();
        assert!(
            delta_plan(q.plan(), &changed).is_none(),
            "DltF sits under the anti-join's refuting side"
        );
        // But a change confined to the positive side is fine.
        let changed: BTreeSet<RelSym> = [RelSym::new("DltE")].into();
        assert!(delta_plan(q.plan(), &changed).is_some());
    }

    #[test]
    fn delta_sym_round_trip_is_distinct() {
        let rel = RelSym::new("DltE");
        assert_ne!(delta_sym(rel), rel);
        assert_eq!(delta_sym(rel), delta_sym(rel));
    }
}
