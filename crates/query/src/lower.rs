//! Safe-range lowering of first-order formulas to plans.
//!
//! The compiled evaluator only accepts the **safe-range** fragment — the
//! formulas whose answers are *domain independent*, so that relational
//! evaluation agrees with the tree-walking active-domain semantics of
//! [`dx_logic::eval`] (the quantifier domain there always contains the
//! active domain plus the formula's constants, which is all a safe-range
//! formula can see). Everything else is rejected with a [`LowerError`];
//! callers fall back to the tree walker, keeping behaviour bit-identical.
//!
//! The translation is the classic one:
//!
//! * a conjunction becomes an n-ary [`Plan::Join`] of its positive
//!   conjuncts, with `x = c` equalities lowered to [`Plan::Bind`] inputs
//!   (pushed-down selections: the executor starts its greedy join order
//!   from single-row binds, turning downstream scans into index probes);
//! * `x = y` equalities either filter (both sides range-restricted) or
//!   extend ([`Plan::Alias`]) the bound set, iterated to a fixpoint so
//!   equality chains propagate range-restriction;
//! * a negated conjunct `¬ψ` whose free variables are covered by the
//!   positive part becomes an [`Plan::AntiJoin`]; a negated equality
//!   becomes an inequality filter; a negated disjunction is expanded by
//!   De Morgan into negated conjuncts first — which is how the implication
//!   shape `φ → ψ` (parsed as `¬φ ∨ ψ`) under a universal quantifier (the
//!   one-author query of §1) reaches the plan algebra;
//! * `∃z̄ φ` projects `z̄` away; `∀z̄ φ` is rewritten to `¬∃z̄ ¬φ` first;
//! * a disjunction whose disjuncts range identical variables becomes a
//!   [`Plan::Union`]; a disjunction whose disjuncts range **different**
//!   variable sets is accepted as a *filter* when all its free variables
//!   are range-restricted by the surrounding conjunction — each disjunct
//!   reduces the bound rows (semi-join, anti-join, or predicate select)
//!   and the branches union back together.
//!
//! ## Seeded (correlated) negation
//!
//! A negated conjunct `¬ψ` may use a variable the surrounding conjunction
//! binds but `ψ` itself does not range — the *correlated* negation of the
//! §1 one-author implication `∃a S(p, a) ∧ ∀b (S(p, b) → a = b)`, whose
//! `∀`-rewritten branch `∃b (S(p, b) ∧ a ≠ b)` mentions `a` only in a
//! filter. Such a branch is not safe-range on its own, but it **is**
//! safe-range once the outer bindings are treated as constants: for any
//! fixed value of `a`, `ψ[a := v]` is an ordinary safe-range formula, and
//! substituting a constant cannot enlarge what the branch can see (the
//! branch's answers stay domain independent, so plan execution still agrees
//! with the active-domain oracle). The lowering therefore retries a failed
//! negated conjunct with the conjunction's bound variables *allowed as
//! seeds*, records which of them the branch actually relied on, and emits a
//! [`Plan::SeededAntiJoin`] — executed by hash-partitioning the outer rows
//! on the seed key and running the branch once per distinct key with the
//! seeds substituted ([`Plan::bind_seed`]). Quantifiers that shadow an
//! allowed seed are α-renamed first, so substitution can never capture.

use crate::plan::{Plan, PlanPred, Ref};
use dx_logic::{Formula, Term};
use dx_relation::{Value, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The reason class of a lowering rejection — the key [`crate::PlanCatalog`]
/// aggregates rejection counts under, so fragment gaps show up in bench/CI
/// stats instead of silently falling back to the tree walker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LowerReason {
    /// Skolem/function terms (plans are function-free).
    FunctionTerm,
    /// A quantified variable not range-restricted by its scope.
    UnrestrictedQuantifiedVar,
    /// A bare `x = y` outside any restricting conjunction.
    BareVariableEquality,
    /// A variable-equality chain none of whose members is restricted.
    UnrestrictedEqualityChain,
    /// A filter predicate over an unrestricted variable.
    UnrestrictedFilterVar,
    /// A negated subformula ranging a variable bound nowhere.
    UncoveredNegation,
    /// Disjuncts ranging different variable sets outside a restricting
    /// conjunction.
    MixedSchemaDisjunction,
    /// A disjunctive filter over an unrestricted variable.
    UnrestrictedDisjunctionVar,
    /// A free variable not range-restricted by the formula.
    UnrestrictedFreeVar,
    /// A head variable not produced by the body.
    UnrestrictedHeadVar,
}

impl LowerReason {
    /// A stable label for stats/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            LowerReason::FunctionTerm => "function-term",
            LowerReason::UnrestrictedQuantifiedVar => "unrestricted-quantified-var",
            LowerReason::BareVariableEquality => "bare-variable-equality",
            LowerReason::UnrestrictedEqualityChain => "unrestricted-equality-chain",
            LowerReason::UnrestrictedFilterVar => "unrestricted-filter-var",
            LowerReason::UncoveredNegation => "uncovered-negation",
            LowerReason::MixedSchemaDisjunction => "mixed-schema-disjunction",
            LowerReason::UnrestrictedDisjunctionVar => "unrestricted-disjunction-var",
            LowerReason::UnrestrictedFreeVar => "unrestricted-free-var",
            LowerReason::UnrestrictedHeadVar => "unrestricted-head-var",
        }
    }
}

impl fmt::Display for LowerReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a formula could not be lowered to a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// The formula contains Skolem/function terms (plans are function-free;
    /// SkSTD bodies keep the tree-walking evaluator).
    FunctionTerm,
    /// The formula is outside the safe-range fragment; the payload names
    /// the reason class and the offending construct.
    NotSafeRange(LowerReason, String),
}

impl LowerError {
    /// The rejection's reason class (see [`LowerReason`]).
    pub fn reason(&self) -> LowerReason {
        match self {
            LowerError::FunctionTerm => LowerReason::FunctionTerm,
            LowerError::NotSafeRange(reason, _) => *reason,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::FunctionTerm => write!(f, "formula contains function terms"),
            LowerError::NotSafeRange(reason, what) => {
                write!(f, "not safe-range ({reason}): {what}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

fn not_safe(reason: LowerReason, what: impl Into<String>) -> LowerError {
    LowerError::NotSafeRange(reason, what.into())
}

/// The seeded-lowering environment threaded through the translation.
///
/// `allowed` is the set of outer-bound variables the current (sub)formula
/// may rely on as seeds — empty at the top level, so the plain fragment
/// lowers exactly as before. `used` accumulates the allowed variables the
/// lowering actually consulted; the enclosing negated-conjunct site turns
/// the locally bound ones into a [`Plan::SeededAntiJoin`]'s seed list and
/// propagates the rest outward. `fresh` numbers the α-renamings of
/// quantifiers that shadow an allowed seed.
#[derive(Default)]
struct Env {
    allowed: BTreeSet<Var>,
    used: BTreeSet<Var>,
    fresh: usize,
}

/// Lower a formula to a plan whose output variables are exactly the
/// formula's free variables. Fails outside the (seeded) safe-range
/// fragment.
pub fn lower_formula(f: &Formula) -> Result<Plan, LowerError> {
    let mut env = Env::default();
    let plan = lower(f, &mut env)?;
    debug_assert!(env.used.is_empty(), "no seeds exist at the top level");
    Ok(plan)
}

fn lower(f: &Formula, env: &mut Env) -> Result<Plan, LowerError> {
    match f {
        Formula::True => Ok(Plan::Unit),
        Formula::False => Ok(Plan::Empty { vars: Vec::new() }),
        Formula::Atom(rel, args) => {
            if args.iter().any(|t| matches!(t, Term::App(_, _))) {
                return Err(LowerError::FunctionTerm);
            }
            Ok(Plan::Scan {
                rel: *rel,
                args: args.clone(),
            })
        }
        Formula::Eq(a, b) => lower_eq(a, b),
        Formula::And(fs) => lower_and(fs, env),
        Formula::Or(fs) => lower_or(fs, env),
        Formula::Not(_) => lower_and(std::slice::from_ref(f), env),
        Formula::Exists(vars, inner) => {
            // α-rename quantified variables that shadow an allowed seed:
            // seed substitution is plan-wide and cannot see binder scopes,
            // so bound names must be disjoint from the seed set.
            let (vars, inner) = rename_shadowing(vars, inner, env);
            let p = lower(&inner, env)?;
            let pv: BTreeSet<Var> = p.vars().into_iter().collect();
            for v in &vars {
                if !pv.contains(v) {
                    // ∃z φ with z not ranged by φ depends on the quantifier
                    // domain being non-empty — not domain independent.
                    return Err(not_safe(
                        LowerReason::UnrestrictedQuantifiedVar,
                        format!("quantified variable {v} is not range-restricted"),
                    ));
                }
            }
            let keep: Vec<Var> = pv.into_iter().filter(|v| !vars.contains(v)).collect();
            Ok(Plan::Project {
                input: Box::new(p),
                vars: keep,
            })
        }
        Formula::Forall(vars, inner) => {
            // ∀z̄ φ ≡ ¬∃z̄ ¬φ; Formula::not collapses double negations.
            let rewritten = Formula::Not(Box::new(Formula::Exists(
                vars.clone(),
                Box::new(Formula::not((**inner).clone())),
            )));
            lower(&rewritten, env)
        }
    }
}

/// α-rename the quantified variables colliding with the environment's seed
/// set (a uniform rename to a globally fresh `$qN` name, which is α-safe).
/// Returns the block and body unchanged when no collision exists — the only
/// case that ever occurs outside a seeded lowering.
fn rename_shadowing(vars: &[Var], inner: &Formula, env: &mut Env) -> (Vec<Var>, Formula) {
    if vars.iter().all(|v| !env.allowed.contains(v)) {
        return (vars.to_vec(), inner.clone());
    }
    let mut map: BTreeMap<Var, Var> = BTreeMap::new();
    let mut out_vars = Vec::with_capacity(vars.len());
    for v in vars {
        if env.allowed.contains(v) {
            let fresh = Var::new(&format!("$q{}", env.fresh));
            env.fresh += 1;
            map.insert(*v, fresh);
            out_vars.push(fresh);
        } else {
            out_vars.push(*v);
        }
    }
    (out_vars, inner.rename_vars(&map))
}

/// A bare equality: only the ground-able shapes are range-restricted.
fn lower_eq(a: &Term, b: &Term) -> Result<Plan, LowerError> {
    match (a, b) {
        (Term::App(_, _), _) | (_, Term::App(_, _)) => Err(LowerError::FunctionTerm),
        (Term::Const(c), Term::Const(d)) => Ok(if c == d {
            Plan::Unit
        } else {
            Plan::Empty { vars: Vec::new() }
        }),
        (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => Ok(Plan::Bind {
            var: *x,
            value: Value::Const(*c),
        }),
        (Term::Var(x), Term::Var(y)) => Err(not_safe(
            LowerReason::BareVariableEquality,
            format!("bare variable equality {x} = {y}"),
        )),
    }
}

fn lower_or(fs: &[Formula], env: &mut Env) -> Result<Plan, LowerError> {
    let mut inputs = Vec::new();
    for g in fs {
        let p = lower(g, env)?;
        // Row-free children contribute nothing regardless of schema.
        if !matches!(p, Plan::Empty { .. }) {
            inputs.push(p);
        }
    }
    if inputs.is_empty() {
        let vars: Vec<Var> = Formula::Or(fs.to_vec()).free_vars().into_iter().collect();
        return Ok(Plan::Empty { vars });
    }
    let schema = inputs[0].vars();
    for p in &inputs[1..] {
        if p.vars() != schema {
            return Err(not_safe(
                LowerReason::MixedSchemaDisjunction,
                "disjuncts range different variables",
            ));
        }
    }
    if inputs.len() == 1 {
        return Ok(inputs.pop_unwrap());
    }
    Ok(Plan::Union { inputs })
}

// Small helper so clippy accepts the single-element pop above.
trait PopUnwrap<T> {
    fn pop_unwrap(self) -> T;
}
impl<T> PopUnwrap<T> for Vec<T> {
    fn pop_unwrap(mut self) -> T {
        self.pop().expect("non-empty")
    }
}

fn term_ref(t: &Term) -> Result<Ref, LowerError> {
    match t {
        Term::Var(v) => Ok(Ref::Var(*v)),
        Term::Const(c) => Ok(Ref::Val(Value::Const(*c))),
        Term::App(_, _) => Err(LowerError::FunctionTerm),
    }
}

fn lower_and(fs: &[Formula], env: &mut Env) -> Result<Plan, LowerError> {
    // Flatten nested conjunctions (substitution can re-nest them) and
    // expand negated disjunctions by De Morgan: ¬(g₁ ∨ … ∨ gₖ) contributes
    // the conjuncts ¬g₁, …, ¬gₖ — each handled by whichever rule fits it
    // (inequality filter, anti-join, …). This is what admits the
    // implication shape `ψ → x = y` (the §1 one-author query) into the
    // safe-range fragment: under ∀-rewriting it arrives here as
    // ¬(¬ψ ∨ x = y), i.e. the conjuncts ψ and ¬(x = y).
    let mut conjuncts: Vec<Formula> = Vec::new();
    fn flatten(fs: &[Formula], out: &mut Vec<Formula>) {
        for f in fs {
            match f {
                Formula::And(inner) => flatten(inner, out),
                Formula::Not(inner) => match &**inner {
                    Formula::Or(gs) => {
                        let negated: Vec<Formula> = gs.iter().cloned().map(Formula::not).collect();
                        flatten(&negated, out);
                    }
                    _ => out.push(f.clone()),
                },
                other => out.push(other.clone()),
            }
        }
    }
    flatten(fs, &mut conjuncts);

    let free: BTreeSet<Var> = conjuncts.iter().flat_map(|f| f.free_vars()).collect();
    let empty = || Plan::Empty {
        vars: free.iter().copied().collect(),
    };

    let mut positives: Vec<Plan> = Vec::new();
    let mut var_eqs: Vec<(Var, Var)> = Vec::new();
    let mut filters: Vec<PlanPred> = Vec::new();
    let mut negatives: Vec<Formula> = Vec::new();
    // Disjunctive conjuncts whose disjuncts range different variable sets:
    // deferred, then applied as row filters once the bound set is known.
    let mut or_filters: Vec<Vec<Formula>> = Vec::new();

    for c in &conjuncts {
        match c {
            Formula::True => {}
            Formula::False => return Ok(empty()),
            Formula::Eq(a, b) => match (a, b) {
                (Term::Var(x), Term::Var(y)) if x == y => {
                    // Trivially true wherever x is bound; the coverage check
                    // below rejects the formula if nothing else ranges x.
                }
                (Term::Var(x), Term::Var(y)) => var_eqs.push((*x, *y)),
                _ => match lower_eq(a, b)? {
                    Plan::Empty { .. } => return Ok(empty()),
                    p => positives.push(p),
                },
            },
            Formula::Not(inner) => match &**inner {
                Formula::Eq(a, b) => {
                    filters.push(PlanPred::Not(Box::new(PlanPred::Eq(
                        term_ref(a)?,
                        term_ref(b)?,
                    ))));
                }
                g => negatives.push(g.clone()),
            },
            // A universal conjunct is an anti-join against the *whole*
            // conjunction's bound variables: ∀z̄ φ ≡ ¬∃z̄ ¬φ.
            Formula::Forall(vars, inner) => negatives.push(Formula::Exists(
                vars.clone(),
                Box::new(Formula::not((**inner).clone())),
            )),
            Formula::Or(gs) => match lower_or(gs, env) {
                // Identically ranged disjuncts: a positive union, as before.
                Ok(p) => positives.push(p),
                Err(LowerError::FunctionTerm) => return Err(LowerError::FunctionTerm),
                // Differing variable sets: usable as a filter if the rest of
                // the conjunction ranges every variable (checked below).
                Err(LowerError::NotSafeRange(_, _)) => or_filters.push(gs.clone()),
            },
            other => positives.push(lower(other, env)?),
        }
    }

    let mut plan = match positives.len() {
        0 => Plan::Unit,
        1 => positives.pop_unwrap(),
        _ => Plan::Join { inputs: positives },
    };
    let mut avail: BTreeSet<Var> = plan.vars().into_iter().collect();
    // Consult an outer seed: legal exactly for the environment's allowed
    // set, and every consultation is recorded for the enclosing
    // seeded-anti-join site.
    macro_rules! try_seed {
        ($v:expr, $reason:expr, $what:expr) => {
            if env.allowed.contains(&$v) {
                env.used.insert($v);
            } else {
                return Err(not_safe($reason, $what));
            }
        };
    }

    // Propagate range restriction through variable equalities to a fixpoint:
    // both sides bound → filter; one side bound → alias (extends the bound
    // set, possibly unblocking further equalities); a side bound only as an
    // outer seed participates in filters (it is substituted at execution
    // time) but can never be an alias source (it is not a column).
    let mut pending = var_eqs;
    while !pending.is_empty() {
        let mut progressed = false;
        let mut rest = Vec::new();
        for (x, y) in pending {
            let col = |v: Var| avail.contains(&v);
            let seeded = |v: Var, env: &Env| !avail.contains(&v) && env.allowed.contains(&v);
            match (col(x), col(y)) {
                (true, true) => {
                    filters.push(PlanPred::Eq(Ref::Var(x), Ref::Var(y)));
                    progressed = true;
                }
                (true, false) | (false, true) => {
                    let (src, dst) = if col(x) { (x, y) } else { (y, x) };
                    if seeded(dst, env) {
                        // A column against an outer binding: a filter, not a
                        // new column (the outer value substitutes in).
                        env.used.insert(dst);
                        filters.push(PlanPred::Eq(Ref::Var(src), Ref::Var(dst)));
                    } else {
                        plan = Plan::Alias {
                            input: Box::new(plan),
                            src,
                            dst,
                        };
                        avail.insert(dst);
                    }
                    progressed = true;
                }
                (false, false) if seeded(x, env) && seeded(y, env) => {
                    env.used.insert(x);
                    env.used.insert(y);
                    filters.push(PlanPred::Eq(Ref::Var(x), Ref::Var(y)));
                    progressed = true;
                }
                (false, false) => rest.push((x, y)),
            }
        }
        if !progressed {
            return Err(not_safe(
                LowerReason::UnrestrictedEqualityChain,
                "variable equality between unrestricted variables",
            ));
        }
        pending = rest;
    }

    if !filters.is_empty() {
        for p in &filters {
            for v in p.vars() {
                if !avail.contains(&v) {
                    try_seed!(
                        v,
                        LowerReason::UnrestrictedFilterVar,
                        format!("filter variable {v} is not range-restricted")
                    );
                }
            }
        }
        let pred = if filters.len() == 1 {
            filters.pop_unwrap()
        } else {
            PlanPred::And(filters)
        };
        plan = Plan::Select {
            input: Box::new(plan),
            pred,
        };
    }

    for g in &negatives {
        // Plain attempt first: a self-contained negated branch stays the
        // ordinary anti-join of the pre-seeding fragment.
        let plain = {
            let mut sub = Env {
                allowed: BTreeSet::new(),
                used: BTreeSet::new(),
                fresh: env.fresh,
            };
            let r = lower(g, &mut sub);
            env.fresh = sub.fresh;
            r
        };
        let (p, seed) = match plain {
            Ok(p) => (p, Vec::new()),
            Err(LowerError::FunctionTerm) => return Err(LowerError::FunctionTerm),
            Err(LowerError::NotSafeRange(_, _)) => {
                // Seeded retry: the branch may rely on anything the
                // conjunction has bound, plus whatever an enclosing seeded
                // scope already allows.
                let mut allowed = avail.clone();
                allowed.extend(env.allowed.iter().copied());
                let mut sub = Env {
                    allowed,
                    used: BTreeSet::new(),
                    fresh: env.fresh,
                };
                let p = lower(g, &mut sub)?;
                env.fresh = sub.fresh;
                // Locally bound seeds key this node; outer ones propagate to
                // the enclosing site (a local column wins a name clash — the
                // nearest binding is the one the branch sees).
                let mut seed: Vec<Var> = Vec::new();
                for v in sub.used {
                    if avail.contains(&v) {
                        seed.push(v);
                    } else {
                        debug_assert!(env.allowed.contains(&v));
                        env.used.insert(v);
                    }
                }
                (p, seed)
            }
        };
        // Output coverage: every column the branch produces must be bound by
        // the conjunction — or be an outer seed, which the enclosing
        // substitution removes from the branch's schema before execution.
        for v in p.vars() {
            if !avail.contains(&v) {
                try_seed!(
                    v,
                    LowerReason::UncoveredNegation,
                    format!("negated subformula ranges uncovered variable {v}")
                );
            }
        }
        plan = if seed.is_empty() {
            Plan::AntiJoin {
                left: Box::new(plan),
                right: Box::new(p),
            }
        } else {
            Plan::SeededAntiJoin {
                left: Box::new(plan),
                right: Box::new(p),
                seed,
            }
        };
    }

    // Deferred disjunctions with differing variable sets: every free
    // variable must now be bound, then each disjunct filters the bound
    // rows — semi-join for a positive disjunct, anti-join for a negated
    // one, predicate select for (in)equalities — and the per-disjunct
    // branches union back together (schemas agree: filters preserve the
    // input schema).
    for gs in &or_filters {
        for v in Formula::Or(gs.clone()).free_vars() {
            if !avail.contains(&v) {
                try_seed!(
                    v,
                    LowerReason::UnrestrictedDisjunctionVar,
                    format!("disjunctive filter variable {v} is not range-restricted")
                );
            }
        }
        let mut branches: Vec<Plan> = Vec::new();
        for g in gs {
            let branch = match g {
                Formula::Eq(a, b) => Plan::Select {
                    input: Box::new(plan.clone()),
                    pred: PlanPred::Eq(term_ref(a)?, term_ref(b)?),
                },
                Formula::Not(inner) => match &**inner {
                    Formula::Eq(a, b) => Plan::Select {
                        input: Box::new(plan.clone()),
                        pred: PlanPred::Not(Box::new(PlanPred::Eq(term_ref(a)?, term_ref(b)?))),
                    },
                    neg => Plan::AntiJoin {
                        left: Box::new(plan.clone()),
                        right: Box::new(lower_branch(neg, env)?),
                    },
                },
                pos => Plan::SemiJoin {
                    left: Box::new(plan.clone()),
                    right: Box::new(lower_branch(pos, env)?),
                },
            };
            branches.push(branch);
        }
        plan = match branches.len() {
            0 => empty(),
            1 => branches.pop_unwrap(),
            _ => Plan::Union { inputs: branches },
        };
    }

    for v in free.iter() {
        if !avail.contains(v) {
            try_seed!(
                *v,
                LowerReason::UnrestrictedFreeVar,
                format!("free variable {v} is not range-restricted")
            );
        }
    }
    Ok(plan)
}

/// Lower a disjunctive-filter branch. Only the environment's *outer* seeds
/// are allowed inside (the enclosing substitution rewrites the whole
/// subtree before execution); the conjunction's own columns are not — a
/// branch correlated against them would need per-key re-execution, which
/// the semi-/anti-join filter shape does not provide.
fn lower_branch(g: &Formula, env: &mut Env) -> Result<Plan, LowerError> {
    let mut sub = Env {
        allowed: env.allowed.clone(),
        used: BTreeSet::new(),
        fresh: env.fresh,
    };
    let r = lower(g, &mut sub);
    env.fresh = sub.fresh;
    env.used.extend(sub.used);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::parse_formula;

    fn lower_src(src: &str) -> Result<Plan, LowerError> {
        lower_formula(&parse_formula(src).expect("parses"))
    }

    #[test]
    fn cq_lowers_to_join_project() {
        let p = lower_src("exists y. LoR(x, y) & LoS(y, z)").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("z")];
        expected.sort();
        assert_eq!(p.vars(), expected);
        assert!(matches!(p, Plan::Project { .. }));
    }

    #[test]
    fn safe_negation_is_antijoin() {
        let p = lower_src("LoR(x, y) & !LoS(y)").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn constant_equality_becomes_bind() {
        let p = lower_src("LoR(x, y) & y = 'c'").unwrap();
        // Bind joins in as a single-row input.
        assert!(matches!(p, Plan::Join { .. }));
    }

    #[test]
    fn equality_chain_aliases() {
        let p = lower_src("LoR(x) & y = x & z = y").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn forall_rewrites_to_antijoin() {
        // sinks: LoV(x) & ∀y ¬LoE(x,y)
        let p = lower_src("LoV(x) & (forall y. !LoE(x, y))").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
    }

    #[test]
    fn unsafe_shapes_rejected() {
        assert!(matches!(
            lower_src("x = y"),
            Err(LowerError::NotSafeRange(
                LowerReason::BareVariableEquality,
                _
            ))
        ));
        assert!(matches!(
            lower_src("!LoR(x)"),
            Err(LowerError::NotSafeRange(_, _))
        ));
        // Disjuncts ranging different variables.
        assert!(matches!(
            lower_src("LoR(x, y) | LoS(x)"),
            Err(LowerError::NotSafeRange(
                LowerReason::MixedSchemaDisjunction,
                _
            ))
        ));
        // Unused quantified variable (domain dependent).
        assert!(matches!(
            lower_src("exists z. LoR(x, y)"),
            Err(LowerError::NotSafeRange(
                LowerReason::UnrestrictedQuantifiedVar,
                _
            ))
        ));
        // Function terms.
        assert!(matches!(
            lower_src("LoF(x) & x = fsk(x)"),
            Err(LowerError::FunctionTerm)
        ));
        assert_eq!(LowerError::FunctionTerm.reason(), LowerReason::FunctionTerm);
    }

    /// Disjuncts ranging different variable sets are accepted as filters
    /// when the surrounding conjunction binds every variable.
    #[test]
    fn mixed_schema_disjunction_filters() {
        let p = lower_src("LoR(x, y) & (LoS(x) | LoT(y))").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
        assert!(matches!(p, Plan::Union { .. }));
        // Equality and negated disjuncts participate too.
        let p = lower_src("LoR(x, y) & (x = y | LoS(x))").unwrap();
        assert_eq!(p.vars(), expected);
        let p = lower_src("LoR(x, y) & (!LoS(x) | LoT(y))").unwrap();
        assert_eq!(p.vars(), expected);
        // Unbound variables still reject.
        assert!(matches!(
            lower_src("LoR(x, y) & (LoS(z) | LoT(y))"),
            Err(LowerError::NotSafeRange(
                LowerReason::UnrestrictedDisjunctionVar,
                _
            ))
        ));
    }

    /// The §1 one-author query — a universally quantified implication —
    /// lowers via the De Morgan expansion of its `¬(¬ψ ∨ x = y)` core.
    #[test]
    fn one_author_implication_lowers() {
        let p = lower_src("forall p a1 a2. (LoSub(p, a1) & LoSub(p, a2) -> a1 = a2)").unwrap();
        assert!(p.vars().is_empty(), "boolean sentence");
        assert!(matches!(p, Plan::AntiJoin { .. }));
    }

    /// The *correlated* §1 shape — `∃a S(p,a) ∧ ∀b (S(p,b) → a = b)`, the
    /// outer-bound `a` occurring only in the negated branch's inequality —
    /// lowers to a seeded anti-join keyed on exactly `a` (`p` is ranged by
    /// the branch itself and joins as an ordinary shared column).
    #[test]
    fn correlated_implication_lowers_to_seeded_antijoin() {
        let p = lower_src("exists a. LoSub(p, a) & (forall b. (LoSub(p, b) -> a = b))").unwrap();
        assert_eq!(p.vars(), vec![Var::new("p")]);
        let Plan::Project { input, .. } = p else {
            panic!("∃a projects the witness away");
        };
        let Plan::SeededAntiJoin { right, seed, .. } = *input else {
            panic!("correlated negation must lower to a seeded anti-join");
        };
        assert_eq!(seed, vec![Var::new("a")], "seeded on the correlated var");
        assert_eq!(right.vars(), vec![Var::new("p")], "branch ranges p only");
    }

    /// Correlated negation against a nested atom: one seed (`x`) occurs in
    /// a filter, the other (`y`) in a scan of a doubly-nested negation —
    /// both must be seeded, exercising the scan-substitution path.
    #[test]
    fn correlated_nested_negation_lowers() {
        let p = lower_src("LoR(x, y) & !(exists b. LoS(b) & !LoT(y, b) & !(b = x))").unwrap();
        let Plan::SeededAntiJoin { seed, .. } = p else {
            panic!("correlated negation must lower to a seeded anti-join");
        };
        let got: BTreeSet<Var> = seed.into_iter().collect();
        let want: BTreeSet<Var> = [Var::new("x"), Var::new("y")].into_iter().collect();
        assert_eq!(got, want);
    }

    /// Quantifiers shadowing a seed are α-renamed, so the inner binder's
    /// occurrences are never substituted.
    #[test]
    fn shadowed_seed_variable_is_alpha_renamed() {
        // The inner `exists a` rebinds the seeded name.
        let p = lower_src(
            "exists a. LoSub(p, a) & !(exists b. LoSub(p, b) & !(a = b) & (exists a. LoT(a, b)))",
        )
        .unwrap();
        let mut found = false;
        fn walk(p: &Plan, found: &mut bool) {
            if let Plan::SeededAntiJoin { right, seed, .. } = p {
                assert_eq!(seed, &vec![Var::new("a")]);
                // The rebound inner `a` was renamed: the branch's scans of
                // LoT must not mention the seed name.
                let mut bad = false;
                fn scan_mentions(p: &Plan, var: Var, bad: &mut bool) {
                    if let Plan::Scan { rel, args } = p {
                        if rel.name() == "LoT"
                            && args.iter().any(|t| matches!(t, Term::Var(v) if *v == var))
                        {
                            *bad = true;
                        }
                    }
                    for c in plan_children(p) {
                        scan_mentions(c, var, bad);
                    }
                }
                scan_mentions(right, Var::new("a"), &mut bad);
                assert!(!bad, "shadowed binder must be α-renamed away");
                *found = true;
            }
            for c in plan_children(p) {
                walk(c, found);
            }
        }
        walk(&p, &mut found);
        assert!(found, "a seeded anti-join was built");
    }

    fn plan_children(p: &Plan) -> Vec<&Plan> {
        match p {
            Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } | Plan::Scan { .. } => Vec::new(),
            Plan::Join { inputs } | Plan::Union { inputs } => inputs.iter().collect(),
            Plan::SemiJoin { left, right }
            | Plan::AntiJoin { left, right }
            | Plan::SeededAntiJoin { left, right, .. } => vec![left, right],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Alias { input, .. } => {
                vec![input]
            }
        }
    }

    #[test]
    fn union_of_same_schema_disjuncts() {
        let p = lower_src("LoR(x, y) | LoS(x, y)").unwrap();
        assert!(matches!(p, Plan::Union { .. }));
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn boolean_negation_over_sentence() {
        let p = lower_src("!(exists x. LoR(x, x))").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
        assert!(p.vars().is_empty());
    }
}
