//! Safe-range lowering of first-order formulas to plans.
//!
//! The compiled evaluator only accepts the **safe-range** fragment — the
//! formulas whose answers are *domain independent*, so that relational
//! evaluation agrees with the tree-walking active-domain semantics of
//! [`dx_logic::eval`] (the quantifier domain there always contains the
//! active domain plus the formula's constants, which is all a safe-range
//! formula can see). Everything else is rejected with a [`LowerError`];
//! callers fall back to the tree walker, keeping behaviour bit-identical.
//!
//! The translation is the classic one:
//!
//! * a conjunction becomes an n-ary [`Plan::Join`] of its positive
//!   conjuncts, with `x = c` equalities lowered to [`Plan::Bind`] inputs
//!   (pushed-down selections: the executor starts its greedy join order
//!   from single-row binds, turning downstream scans into index probes);
//! * `x = y` equalities either filter (both sides range-restricted) or
//!   extend ([`Plan::Alias`]) the bound set, iterated to a fixpoint so
//!   equality chains propagate range-restriction;
//! * a negated conjunct `¬ψ` whose free variables are covered by the
//!   positive part becomes an [`Plan::AntiJoin`]; a negated equality
//!   becomes an inequality filter; a negated disjunction is expanded by
//!   De Morgan into negated conjuncts first — which is how the implication
//!   shape `φ → ψ` (parsed as `¬φ ∨ ψ`) under a universal quantifier (the
//!   one-author query of §1) reaches the plan algebra;
//! * `∃z̄ φ` projects `z̄` away; `∀z̄ φ` is rewritten to `¬∃z̄ ¬φ` first;
//! * a disjunction whose disjuncts range identical variables becomes a
//!   [`Plan::Union`]; a disjunction whose disjuncts range **different**
//!   variable sets is accepted as a *filter* when all its free variables
//!   are range-restricted by the surrounding conjunction — each disjunct
//!   reduces the bound rows (semi-join, anti-join, or predicate select)
//!   and the branches union back together.

use crate::plan::{Plan, PlanPred, Ref};
use dx_logic::{Formula, Term};
use dx_relation::{Value, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Why a formula could not be lowered to a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// The formula contains Skolem/function terms (plans are function-free;
    /// SkSTD bodies keep the tree-walking evaluator).
    FunctionTerm,
    /// The formula is outside the safe-range fragment; the payload names
    /// the offending construct.
    NotSafeRange(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::FunctionTerm => write!(f, "formula contains function terms"),
            LowerError::NotSafeRange(what) => write!(f, "not safe-range: {what}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a formula to a plan whose output variables are exactly the
/// formula's free variables. Fails outside the safe-range fragment.
pub fn lower_formula(f: &Formula) -> Result<Plan, LowerError> {
    lower(f)
}

fn lower(f: &Formula) -> Result<Plan, LowerError> {
    match f {
        Formula::True => Ok(Plan::Unit),
        Formula::False => Ok(Plan::Empty { vars: Vec::new() }),
        Formula::Atom(rel, args) => {
            if args.iter().any(|t| matches!(t, Term::App(_, _))) {
                return Err(LowerError::FunctionTerm);
            }
            Ok(Plan::Scan {
                rel: *rel,
                args: args.clone(),
            })
        }
        Formula::Eq(a, b) => lower_eq(a, b),
        Formula::And(fs) => lower_and(fs),
        Formula::Or(fs) => lower_or(fs),
        Formula::Not(_) => lower_and(std::slice::from_ref(f)),
        Formula::Exists(vars, inner) => {
            let p = lower(inner)?;
            let pv: BTreeSet<Var> = p.vars().into_iter().collect();
            for v in vars {
                if !pv.contains(v) {
                    // ∃z φ with z not ranged by φ depends on the quantifier
                    // domain being non-empty — not domain independent.
                    return Err(LowerError::NotSafeRange(format!(
                        "quantified variable {v} is not range-restricted"
                    )));
                }
            }
            let keep: Vec<Var> = pv.into_iter().filter(|v| !vars.contains(v)).collect();
            Ok(Plan::Project {
                input: Box::new(p),
                vars: keep,
            })
        }
        Formula::Forall(vars, inner) => {
            // ∀z̄ φ ≡ ¬∃z̄ ¬φ; Formula::not collapses double negations.
            let rewritten = Formula::Not(Box::new(Formula::Exists(
                vars.clone(),
                Box::new(Formula::not((**inner).clone())),
            )));
            lower(&rewritten)
        }
    }
}

/// A bare equality: only the ground-able shapes are range-restricted.
fn lower_eq(a: &Term, b: &Term) -> Result<Plan, LowerError> {
    match (a, b) {
        (Term::App(_, _), _) | (_, Term::App(_, _)) => Err(LowerError::FunctionTerm),
        (Term::Const(c), Term::Const(d)) => Ok(if c == d {
            Plan::Unit
        } else {
            Plan::Empty { vars: Vec::new() }
        }),
        (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => Ok(Plan::Bind {
            var: *x,
            value: Value::Const(*c),
        }),
        (Term::Var(x), Term::Var(y)) => Err(LowerError::NotSafeRange(format!(
            "bare variable equality {x} = {y}"
        ))),
    }
}

fn lower_or(fs: &[Formula]) -> Result<Plan, LowerError> {
    let mut inputs = Vec::new();
    for g in fs {
        let p = lower(g)?;
        // Row-free children contribute nothing regardless of schema.
        if !matches!(p, Plan::Empty { .. }) {
            inputs.push(p);
        }
    }
    if inputs.is_empty() {
        let vars: Vec<Var> = Formula::Or(fs.to_vec()).free_vars().into_iter().collect();
        return Ok(Plan::Empty { vars });
    }
    let schema = inputs[0].vars();
    for p in &inputs[1..] {
        if p.vars() != schema {
            return Err(LowerError::NotSafeRange(
                "disjuncts range different variables".to_string(),
            ));
        }
    }
    if inputs.len() == 1 {
        return Ok(inputs.pop_unwrap());
    }
    Ok(Plan::Union { inputs })
}

// Small helper so clippy accepts the single-element pop above.
trait PopUnwrap<T> {
    fn pop_unwrap(self) -> T;
}
impl<T> PopUnwrap<T> for Vec<T> {
    fn pop_unwrap(mut self) -> T {
        self.pop().expect("non-empty")
    }
}

fn term_ref(t: &Term) -> Result<Ref, LowerError> {
    match t {
        Term::Var(v) => Ok(Ref::Var(*v)),
        Term::Const(c) => Ok(Ref::Val(Value::Const(*c))),
        Term::App(_, _) => Err(LowerError::FunctionTerm),
    }
}

fn lower_and(fs: &[Formula]) -> Result<Plan, LowerError> {
    // Flatten nested conjunctions (substitution can re-nest them) and
    // expand negated disjunctions by De Morgan: ¬(g₁ ∨ … ∨ gₖ) contributes
    // the conjuncts ¬g₁, …, ¬gₖ — each handled by whichever rule fits it
    // (inequality filter, anti-join, …). This is what admits the
    // implication shape `ψ → x = y` (the §1 one-author query) into the
    // safe-range fragment: under ∀-rewriting it arrives here as
    // ¬(¬ψ ∨ x = y), i.e. the conjuncts ψ and ¬(x = y).
    let mut conjuncts: Vec<Formula> = Vec::new();
    fn flatten(fs: &[Formula], out: &mut Vec<Formula>) {
        for f in fs {
            match f {
                Formula::And(inner) => flatten(inner, out),
                Formula::Not(inner) => match &**inner {
                    Formula::Or(gs) => {
                        let negated: Vec<Formula> = gs.iter().cloned().map(Formula::not).collect();
                        flatten(&negated, out);
                    }
                    _ => out.push(f.clone()),
                },
                other => out.push(other.clone()),
            }
        }
    }
    flatten(fs, &mut conjuncts);

    let free: BTreeSet<Var> = conjuncts.iter().flat_map(|f| f.free_vars()).collect();
    let empty = || Plan::Empty {
        vars: free.iter().copied().collect(),
    };

    let mut positives: Vec<Plan> = Vec::new();
    let mut var_eqs: Vec<(Var, Var)> = Vec::new();
    let mut filters: Vec<PlanPred> = Vec::new();
    let mut negatives: Vec<Formula> = Vec::new();
    // Disjunctive conjuncts whose disjuncts range different variable sets:
    // deferred, then applied as row filters once the bound set is known.
    let mut or_filters: Vec<Vec<Formula>> = Vec::new();

    for c in &conjuncts {
        match c {
            Formula::True => {}
            Formula::False => return Ok(empty()),
            Formula::Eq(a, b) => match (a, b) {
                (Term::Var(x), Term::Var(y)) if x == y => {
                    // Trivially true wherever x is bound; the coverage check
                    // below rejects the formula if nothing else ranges x.
                }
                (Term::Var(x), Term::Var(y)) => var_eqs.push((*x, *y)),
                _ => match lower_eq(a, b)? {
                    Plan::Empty { .. } => return Ok(empty()),
                    p => positives.push(p),
                },
            },
            Formula::Not(inner) => match &**inner {
                Formula::Eq(a, b) => {
                    filters.push(PlanPred::Not(Box::new(PlanPred::Eq(
                        term_ref(a)?,
                        term_ref(b)?,
                    ))));
                }
                g => negatives.push(g.clone()),
            },
            // A universal conjunct is an anti-join against the *whole*
            // conjunction's bound variables: ∀z̄ φ ≡ ¬∃z̄ ¬φ.
            Formula::Forall(vars, inner) => negatives.push(Formula::Exists(
                vars.clone(),
                Box::new(Formula::not((**inner).clone())),
            )),
            Formula::Or(gs) => match lower_or(gs) {
                // Identically ranged disjuncts: a positive union, as before.
                Ok(p) => positives.push(p),
                Err(LowerError::FunctionTerm) => return Err(LowerError::FunctionTerm),
                // Differing variable sets: usable as a filter if the rest of
                // the conjunction ranges every variable (checked below).
                Err(LowerError::NotSafeRange(_)) => or_filters.push(gs.clone()),
            },
            other => positives.push(lower(other)?),
        }
    }

    let mut plan = match positives.len() {
        0 => Plan::Unit,
        1 => positives.pop_unwrap(),
        _ => Plan::Join { inputs: positives },
    };
    let mut avail: BTreeSet<Var> = plan.vars().into_iter().collect();

    // Propagate range restriction through variable equalities to a fixpoint:
    // both sides bound → filter; one side bound → alias (extends the bound
    // set, possibly unblocking further equalities).
    let mut pending = var_eqs;
    while !pending.is_empty() {
        let mut progressed = false;
        let mut rest = Vec::new();
        for (x, y) in pending {
            match (avail.contains(&x), avail.contains(&y)) {
                (true, true) => {
                    filters.push(PlanPred::Eq(Ref::Var(x), Ref::Var(y)));
                    progressed = true;
                }
                (true, false) | (false, true) => {
                    let (src, dst) = if avail.contains(&x) { (x, y) } else { (y, x) };
                    plan = Plan::Alias {
                        input: Box::new(plan),
                        src,
                        dst,
                    };
                    avail.insert(dst);
                    progressed = true;
                }
                (false, false) => rest.push((x, y)),
            }
        }
        if !progressed {
            return Err(LowerError::NotSafeRange(
                "variable equality between unrestricted variables".to_string(),
            ));
        }
        pending = rest;
    }

    if !filters.is_empty() {
        for p in &filters {
            if let Some(v) = p.vars().iter().find(|v| !avail.contains(v)) {
                return Err(LowerError::NotSafeRange(format!(
                    "filter variable {v} is not range-restricted"
                )));
            }
        }
        let pred = if filters.len() == 1 {
            filters.pop_unwrap()
        } else {
            PlanPred::And(filters)
        };
        plan = Plan::Select {
            input: Box::new(plan),
            pred,
        };
    }

    for g in &negatives {
        let p = lower(g)?;
        if let Some(v) = p.vars().iter().find(|v| !avail.contains(v)) {
            return Err(LowerError::NotSafeRange(format!(
                "negated subformula ranges uncovered variable {v}"
            )));
        }
        plan = Plan::AntiJoin {
            left: Box::new(plan),
            right: Box::new(p),
        };
    }

    // Deferred disjunctions with differing variable sets: every free
    // variable must now be bound, then each disjunct filters the bound
    // rows — semi-join for a positive disjunct, anti-join for a negated
    // one, predicate select for (in)equalities — and the per-disjunct
    // branches union back together (schemas agree: filters preserve the
    // input schema).
    for gs in &or_filters {
        for v in Formula::Or(gs.clone()).free_vars() {
            if !avail.contains(&v) {
                return Err(LowerError::NotSafeRange(format!(
                    "disjunctive filter variable {v} is not range-restricted"
                )));
            }
        }
        let mut branches: Vec<Plan> = Vec::new();
        for g in gs {
            let branch = match g {
                Formula::Eq(a, b) => Plan::Select {
                    input: Box::new(plan.clone()),
                    pred: PlanPred::Eq(term_ref(a)?, term_ref(b)?),
                },
                Formula::Not(inner) => match &**inner {
                    Formula::Eq(a, b) => Plan::Select {
                        input: Box::new(plan.clone()),
                        pred: PlanPred::Not(Box::new(PlanPred::Eq(term_ref(a)?, term_ref(b)?))),
                    },
                    neg => Plan::AntiJoin {
                        left: Box::new(plan.clone()),
                        right: Box::new(lower(neg)?),
                    },
                },
                pos => Plan::SemiJoin {
                    left: Box::new(plan.clone()),
                    right: Box::new(lower(pos)?),
                },
            };
            branches.push(branch);
        }
        plan = match branches.len() {
            0 => empty(),
            1 => branches.pop_unwrap(),
            _ => Plan::Union { inputs: branches },
        };
    }

    if let Some(v) = free.iter().find(|v| !avail.contains(v)) {
        return Err(LowerError::NotSafeRange(format!(
            "free variable {v} is not range-restricted"
        )));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::parse_formula;

    fn lower_src(src: &str) -> Result<Plan, LowerError> {
        lower_formula(&parse_formula(src).expect("parses"))
    }

    #[test]
    fn cq_lowers_to_join_project() {
        let p = lower_src("exists y. LoR(x, y) & LoS(y, z)").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("z")];
        expected.sort();
        assert_eq!(p.vars(), expected);
        assert!(matches!(p, Plan::Project { .. }));
    }

    #[test]
    fn safe_negation_is_antijoin() {
        let p = lower_src("LoR(x, y) & !LoS(y)").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn constant_equality_becomes_bind() {
        let p = lower_src("LoR(x, y) & y = 'c'").unwrap();
        // Bind joins in as a single-row input.
        assert!(matches!(p, Plan::Join { .. }));
    }

    #[test]
    fn equality_chain_aliases() {
        let p = lower_src("LoR(x) & y = x & z = y").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn forall_rewrites_to_antijoin() {
        // sinks: LoV(x) & ∀y ¬LoE(x,y)
        let p = lower_src("LoV(x) & (forall y. !LoE(x, y))").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
    }

    #[test]
    fn unsafe_shapes_rejected() {
        assert!(matches!(
            lower_src("x = y"),
            Err(LowerError::NotSafeRange(_))
        ));
        assert!(matches!(
            lower_src("!LoR(x)"),
            Err(LowerError::NotSafeRange(_))
        ));
        // Disjuncts ranging different variables.
        assert!(matches!(
            lower_src("LoR(x, y) | LoS(x)"),
            Err(LowerError::NotSafeRange(_))
        ));
        // Unused quantified variable (domain dependent).
        assert!(matches!(
            lower_src("exists z. LoR(x, y)"),
            Err(LowerError::NotSafeRange(_))
        ));
        // Function terms.
        assert!(matches!(
            lower_src("LoF(x) & x = fsk(x)"),
            Err(LowerError::FunctionTerm)
        ));
    }

    /// Disjuncts ranging different variable sets are accepted as filters
    /// when the surrounding conjunction binds every variable.
    #[test]
    fn mixed_schema_disjunction_filters() {
        let p = lower_src("LoR(x, y) & (LoS(x) | LoT(y))").unwrap();
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
        assert!(matches!(p, Plan::Union { .. }));
        // Equality and negated disjuncts participate too.
        let p = lower_src("LoR(x, y) & (x = y | LoS(x))").unwrap();
        assert_eq!(p.vars(), expected);
        let p = lower_src("LoR(x, y) & (!LoS(x) | LoT(y))").unwrap();
        assert_eq!(p.vars(), expected);
        // Unbound variables still reject.
        assert!(matches!(
            lower_src("LoR(x, y) & (LoS(z) | LoT(y))"),
            Err(LowerError::NotSafeRange(_))
        ));
    }

    /// The §1 one-author query — a universally quantified implication —
    /// lowers via the De Morgan expansion of its `¬(¬ψ ∨ x = y)` core.
    #[test]
    fn one_author_implication_lowers() {
        let p = lower_src("forall p a1 a2. (LoSub(p, a1) & LoSub(p, a2) -> a1 = a2)").unwrap();
        assert!(p.vars().is_empty(), "boolean sentence");
        assert!(matches!(p, Plan::AntiJoin { .. }));
    }

    #[test]
    fn union_of_same_schema_disjuncts() {
        let p = lower_src("LoR(x, y) | LoS(x, y)").unwrap();
        assert!(matches!(p, Plan::Union { .. }));
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn boolean_negation_over_sentence() {
        let p = lower_src("!(exists x. LoR(x, x))").unwrap();
        assert!(matches!(p, Plan::AntiJoin { .. }));
        assert!(p.vars().is_empty());
    }
}
