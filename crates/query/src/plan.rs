//! Relational-algebra plans over named variables.
//!
//! A [`Plan`] node produces a set of *binding rows*: tuples of values keyed
//! by the node's **output variables**, which are always reported in sorted
//! order ([`Plan::vars`]). The executor ([`crate::exec`]) materializes rows
//! bottom-up, choosing join orders at run time from index selectivity; the
//! conditional executor ([`crate::cexec`]) runs the same tree over
//! conditional tables.
//!
//! The operator set is the safe-range target algebra:
//!
//! * [`Plan::Scan`] — an atom template `R(t̄)` with `Var`/`Const` arguments
//!   (constants and repeated variables are matched by index probe +
//!   post-filter);
//! * [`Plan::Bind`] — a single-row constant binding, the pushed-down form
//!   of an equality selection `x = c` (the greedy join order starts from
//!   binds, so downstream scans become index probes);
//! * [`Plan::Join`] — n-ary natural join; order is chosen by the executor;
//! * [`Plan::SemiJoin`] / [`Plan::AntiJoin`] — reduction by an existence /
//!   non-existence check on the shared variables (anti-join is how safe
//!   negation and RA difference lower);
//! * [`Plan::Select`], [`Plan::Project`], [`Plan::Union`], [`Plan::Alias`] —
//!   filters, projection-with-dedup, same-schema union, and column
//!   duplication (`y := x`, the lowering of a variable equality that
//!   *extends* the bound set).

use dx_logic::Term;
use dx_relation::{RelSym, Value, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A value reference in a selection predicate: a variable or a literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ref {
    /// The value bound to a variable of the input row.
    Var(Var),
    /// A literal value (a constant, or — in specialized plans — a null,
    /// which is an atomic value under the naive semantics).
    Val(Value),
}

/// A selection predicate: boolean combinations of reference equalities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanPred {
    /// Always true.
    True,
    /// Equality of two references.
    Eq(Ref, Ref),
    /// Conjunction.
    And(Vec<PlanPred>),
    /// Disjunction.
    Or(Vec<PlanPred>),
    /// Negation.
    Not(Box<PlanPred>),
}

impl PlanPred {
    /// Variables mentioned by the predicate.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            PlanPred::True => {}
            PlanPred::Eq(a, b) => {
                for r in [a, b] {
                    if let Ref::Var(v) = r {
                        out.insert(*v);
                    }
                }
            }
            PlanPred::And(ps) | PlanPred::Or(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            PlanPred::Not(p) => p.collect_vars(out),
        }
    }
}

/// A query plan node. See the module docs for the operator inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// The unit: exactly one empty row (join identity).
    Unit,
    /// No rows, with a fixed output schema.
    Empty {
        /// Output variables of the empty result.
        vars: Vec<Var>,
    },
    /// A single row binding `var` to `value`.
    Bind {
        /// The bound variable.
        var: Var,
        /// Its value.
        value: Value,
    },
    /// An atom scan `R(t̄)`; arguments are `Term::Var` / `Term::Const` only.
    Scan {
        /// The scanned relation.
        rel: RelSym,
        /// The atom's argument template.
        args: Vec<Term>,
    },
    /// N-ary natural join (the executor picks the order).
    Join {
        /// Join inputs.
        inputs: Vec<Plan>,
    },
    /// Rows of `left` with at least one `right` row agreeing on the shared
    /// variables.
    SemiJoin {
        /// The preserved side.
        left: Box<Plan>,
        /// The filter side.
        right: Box<Plan>,
    },
    /// Rows of `left` with **no** `right` row agreeing on the shared
    /// variables (`right`'s variables must be a subset of `left`'s).
    AntiJoin {
        /// The preserved side.
        left: Box<Plan>,
        /// The refuting side.
        right: Box<Plan>,
    },
    /// Filter by a predicate over the input's variables.
    Select {
        /// The filtered input.
        input: Box<Plan>,
        /// The predicate.
        pred: PlanPred,
    },
    /// Projection onto a subset of the variables, with dedup.
    Project {
        /// The projected input.
        input: Box<Plan>,
        /// The surviving variables (sorted).
        vars: Vec<Var>,
    },
    /// Union of same-schema inputs, with dedup.
    Union {
        /// Union inputs (identical output variables).
        inputs: Vec<Plan>,
    },
    /// Extend every row with `dst := src` (the lowering of `dst = src`
    /// when `dst` is not otherwise range-restricted).
    Alias {
        /// The extended input.
        input: Box<Plan>,
        /// The copied (already bound) variable.
        src: Var,
        /// The fresh output variable.
        dst: Var,
    },
    /// The lowering of **correlated negation**: rows of `left` for which the
    /// `right` branch — re-executed with the `seed` variables bound to the
    /// row's values ("bindings as constants") — produces no row agreeing on
    /// the shared variables. `right` references the seed variables without
    /// ranging them (they occur only in predicates, or in scans of nested
    /// subtrees), so it is safe-range *given* the seeds; executors
    /// hash-partition the left rows on the seed key and run `right` once per
    /// distinct key via [`Plan::bind_seed`], not once per row.
    SeededAntiJoin {
        /// The preserved side (binds every seed variable).
        left: Box<Plan>,
        /// The correlated refuting branch.
        right: Box<Plan>,
        /// The outer-bound variables seeded into `right`; never output
        /// columns of `right`.
        seed: Vec<Var>,
    },
}

impl Plan {
    /// The node's output variables, sorted ascending.
    pub fn vars(&self) -> Vec<Var> {
        let mut set = BTreeSet::new();
        self.collect_out_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_out_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Plan::Unit => {}
            Plan::Empty { vars } => out.extend(vars.iter().copied()),
            Plan::Bind { var, .. } => {
                out.insert(*var);
            }
            Plan::Scan { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        out.insert(*v);
                    }
                }
            }
            Plan::Join { inputs } => {
                for p in inputs {
                    p.collect_out_vars(out);
                }
            }
            Plan::SemiJoin { left, .. }
            | Plan::AntiJoin { left, .. }
            | Plan::SeededAntiJoin { left, .. } => left.collect_out_vars(out),
            Plan::Select { input, .. } => input.collect_out_vars(out),
            Plan::Project { vars, .. } => out.extend(vars.iter().copied()),
            Plan::Union { inputs } => {
                if let Some(first) = inputs.first() {
                    first.collect_out_vars(out);
                }
            }
            Plan::Alias { input, dst, .. } => {
                input.collect_out_vars(out);
                out.insert(*dst);
            }
        }
    }

    /// Rename every occurrence of variable `from` to `to` (used by the RA
    /// lowering to unify equality-selected columns into natural joins;
    /// callers guarantee `to` does not already occur with a different
    /// meaning).
    pub fn rename_var(&mut self, from: Var, to: Var) {
        let fix = |v: &mut Var| {
            if *v == from {
                *v = to;
            }
        };
        match self {
            Plan::Unit => {}
            Plan::Empty { vars } => vars.iter_mut().for_each(fix),
            Plan::Bind { var, .. } => fix(var),
            Plan::Scan { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        if *v == from {
                            *t = Term::Var(to);
                        }
                    }
                }
            }
            Plan::Join { inputs } | Plan::Union { inputs } => {
                for p in inputs {
                    p.rename_var(from, to);
                }
            }
            Plan::SemiJoin { left, right } | Plan::AntiJoin { left, right } => {
                left.rename_var(from, to);
                right.rename_var(from, to);
            }
            Plan::SeededAntiJoin { left, right, seed } => {
                left.rename_var(from, to);
                right.rename_var(from, to);
                seed.iter_mut().for_each(fix);
            }
            Plan::Select { input, pred } => {
                input.rename_var(from, to);
                rename_pred(pred, from, to);
            }
            Plan::Project { input, vars } => {
                input.rename_var(from, to);
                vars.iter_mut().for_each(fix);
                vars.sort();
                vars.dedup();
            }
            Plan::Alias { input, src, dst } => {
                input.rename_var(from, to);
                fix(src);
                fix(dst);
            }
        }
    }

    /// Substitute the constant `value` for every occurrence of `var` in scan
    /// templates and predicates (the pushed-down form of `var = value`); the
    /// variable disappears from the subtree's output schema.
    pub fn substitute_const(&mut self, var: Var, value: dx_relation::ConstId) {
        match self {
            Plan::Unit => {}
            Plan::Empty { vars } => vars.retain(|v| *v != var),
            Plan::Bind { .. } => {}
            Plan::Scan { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        if *v == var {
                            *t = Term::Const(value);
                        }
                    }
                }
            }
            Plan::Join { inputs } | Plan::Union { inputs } => {
                for p in inputs {
                    p.substitute_const(var, value);
                }
            }
            Plan::SemiJoin { left, right } | Plan::AntiJoin { left, right } => {
                left.substitute_const(var, value);
                right.substitute_const(var, value);
            }
            Plan::SeededAntiJoin { left, right, seed } => {
                left.substitute_const(var, value);
                right.substitute_const(var, value);
                // The substitution did the seeding's job for this variable.
                seed.retain(|s| *s != var);
            }
            Plan::Select { input, pred } => {
                input.substitute_const(var, value);
                subst_pred(pred, var, Value::Const(value));
            }
            Plan::Project { input, vars } => {
                input.substitute_const(var, value);
                vars.retain(|v| *v != var);
            }
            Plan::Alias { input, .. } => input.substitute_const(var, value),
        }
    }

    /// Substitute `value` for the correlated variable `var` throughout the
    /// subtree — the "bindings as constants" step of seeded anti-join
    /// execution ([`Plan::SeededAntiJoin`]). Constants substitute into scan
    /// templates (becoming index-probe positions); **nulls** — atomic values
    /// the executors must compare exactly, but unrepresentable in a
    /// [`Term`] — rename the scan occurrences to the reserved variable
    /// `$seed:<var>` constrained by an equality select below the scan, so
    /// the constraint applies before any projection. Deriving the reserved
    /// name from the seed variable keeps substitutions collision-free
    /// across **nested** seeded anti-joins (each variable is substituted at
    /// most once per plan instance: an enclosing substitution strips it
    /// from nested seed lists) and consistent across union branches. The
    /// variable disappears from the subtree's output schema, mirroring
    /// [`Plan::substitute_const`].
    pub fn bind_seed(&mut self, var: Var, value: Value) {
        match self {
            Plan::Unit => {}
            Plan::Empty { vars } => vars.retain(|v| *v != var),
            Plan::Bind {
                var: v,
                value: bound,
            } => {
                if *v == var {
                    // The branch bound the seeded variable itself (`var = c`
                    // deep inside): the row survives exactly when the two
                    // values agree — conditionally, under nulls.
                    let pred = PlanPred::Eq(Ref::Val(*bound), Ref::Val(value));
                    *self = Plan::Select {
                        input: Box::new(Plan::Unit),
                        pred,
                    };
                }
            }
            Plan::Scan { args, .. } => {
                if !args.iter().any(|t| matches!(t, Term::Var(v) if *v == var)) {
                    return;
                }
                match value {
                    Value::Const(c) => {
                        for t in args.iter_mut() {
                            if matches!(t, Term::Var(v) if *v == var) {
                                *t = Term::Const(c);
                            }
                        }
                    }
                    null => {
                        let fv = Var::new(&format!("$seed:{var}"));
                        for t in args.iter_mut() {
                            if matches!(t, Term::Var(v) if *v == var) {
                                *t = Term::Var(fv);
                            }
                        }
                        let scan = std::mem::replace(self, Plan::Unit);
                        *self = Plan::Select {
                            input: Box::new(scan),
                            pred: PlanPred::Eq(Ref::Var(fv), Ref::Val(null)),
                        };
                    }
                }
            }
            Plan::Join { inputs } | Plan::Union { inputs } => {
                for p in inputs {
                    p.bind_seed(var, value);
                }
            }
            Plan::SemiJoin { left, right } | Plan::AntiJoin { left, right } => {
                left.bind_seed(var, value);
                right.bind_seed(var, value);
            }
            Plan::SeededAntiJoin { left, right, seed } => {
                left.bind_seed(var, value);
                right.bind_seed(var, value);
                // An enclosing seed shadows a nested one: the substitution
                // fixed the value everywhere, so the nested node no longer
                // partitions on it.
                seed.retain(|s| *s != var);
            }
            Plan::Select { input, pred } => {
                input.bind_seed(var, value);
                subst_pred(pred, var, value);
            }
            Plan::Project { input, vars } => {
                input.bind_seed(var, value);
                vars.retain(|v| *v != var);
            }
            Plan::Alias { input, src, dst } => {
                debug_assert_ne!(*dst, var, "alias target cannot be a seeded variable");
                if *src == var {
                    // `dst := var` with `var` now a constant: materialize the
                    // column as a single-row bind joined in.
                    let dst = *dst;
                    input.bind_seed(var, value);
                    let inner = std::mem::replace(&mut **input, Plan::Unit);
                    *self = Plan::Join {
                        inputs: vec![inner, Plan::Bind { var: dst, value }],
                    };
                } else {
                    input.bind_seed(var, value);
                }
            }
        }
    }

    /// All constants the plan mentions (scan templates, binds, selection
    /// predicates) — the `C_φ` palette seed for certain-answer extraction.
    pub fn constants(&self) -> BTreeSet<dx_relation::ConstId> {
        fn pred_consts(p: &PlanPred, out: &mut BTreeSet<dx_relation::ConstId>) {
            match p {
                PlanPred::True => {}
                PlanPred::Eq(a, b) => {
                    for r in [a, b] {
                        if let Ref::Val(Value::Const(c)) = r {
                            out.insert(*c);
                        }
                    }
                }
                PlanPred::And(ps) | PlanPred::Or(ps) => {
                    for p in ps {
                        pred_consts(p, out);
                    }
                }
                PlanPred::Not(p) => pred_consts(p, out),
            }
        }
        let mut out = BTreeSet::new();
        let mut stack = vec![self];
        while let Some(p) = stack.pop() {
            match p {
                Plan::Unit | Plan::Empty { .. } => {}
                Plan::Bind { value, .. } => {
                    if let Value::Const(c) = value {
                        out.insert(*c);
                    }
                }
                Plan::Scan { args, .. } => {
                    for t in args {
                        if let Term::Const(c) = t {
                            out.insert(*c);
                        }
                    }
                }
                Plan::Join { inputs } | Plan::Union { inputs } => stack.extend(inputs.iter()),
                Plan::SemiJoin { left, right }
                | Plan::AntiJoin { left, right }
                | Plan::SeededAntiJoin { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
                Plan::Select { input, pred } => {
                    pred_consts(pred, &mut out);
                    stack.push(input);
                }
                Plan::Project { input, .. } | Plan::Alias { input, .. } => stack.push(input),
            }
        }
        out
    }

    /// The node's direct children, in plan order (the tree-walk order the
    /// EXPLAIN renderers use).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Unit | Plan::Empty { .. } | Plan::Bind { .. } | Plan::Scan { .. } => Vec::new(),
            Plan::Join { inputs } | Plan::Union { inputs } => inputs.iter().collect(),
            Plan::SemiJoin { left, right }
            | Plan::AntiJoin { left, right }
            | Plan::SeededAntiJoin { left, right, .. } => vec![left, right],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Alias { input, .. } => vec![input],
        }
    }

    /// One line describing this node alone — operator, operator arguments,
    /// and the output schema (`-> [vars]`). [`Plan::explain`] indents these
    /// into a tree; `dx_query::explain` annotates them with run counts. The
    /// rendering is stable: one node per line, seed keys in brackets.
    pub fn node_label(&self) -> String {
        let schema = {
            let vs: Vec<String> = self.vars().iter().map(|v| v.to_string()).collect();
            format!("-> [{}]", vs.join(", "))
        };
        match self {
            Plan::Unit => format!("unit {schema}"),
            Plan::Empty { .. } => format!("empty {schema}"),
            Plan::Bind { var, value } => format!("bind {var} := {value} {schema}"),
            Plan::Scan { rel, args } => {
                let args: Vec<String> = args.iter().map(|t| t.to_string()).collect();
                format!("scan {rel}({}) {schema}", args.join(", "))
            }
            Plan::Join { .. } => format!("join {schema}"),
            Plan::SemiJoin { .. } => format!("semijoin {schema}"),
            Plan::AntiJoin { .. } => format!("antijoin {schema}"),
            Plan::SeededAntiJoin { seed, .. } => {
                let vs: Vec<String> = seed.iter().map(|v| v.to_string()).collect();
                format!("seeded-antijoin [{}] {schema}", vs.join(", "))
            }
            Plan::Select { pred, .. } => format!("select {pred:?} {schema}"),
            Plan::Project { vars, .. } => {
                let vs: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                format!("project [{}] {schema}", vs.join(", "))
            }
            Plan::Union { .. } => format!("union {schema}"),
            Plan::Alias { src, dst, .. } => format!("alias {dst} := {src} {schema}"),
        }
    }

    /// Render the plan as an indented operator tree (`EXPLAIN` output):
    /// one node per line via [`Plan::node_label`], children indented two
    /// spaces per level.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.node_label());
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }
}

fn rename_pred(pred: &mut PlanPred, from: Var, to: Var) {
    match pred {
        PlanPred::True => {}
        PlanPred::Eq(a, b) => {
            for r in [a, b] {
                if let Ref::Var(v) = r {
                    if *v == from {
                        *r = Ref::Var(to);
                    }
                }
            }
        }
        PlanPred::And(ps) | PlanPred::Or(ps) => {
            for p in ps {
                rename_pred(p, from, to);
            }
        }
        PlanPred::Not(p) => rename_pred(p, from, to),
    }
}

fn subst_pred(pred: &mut PlanPred, var: Var, value: Value) {
    match pred {
        PlanPred::True => {}
        PlanPred::Eq(a, b) => {
            for r in [a, b] {
                if let Ref::Var(v) = r {
                    if *v == var {
                        *r = Ref::Val(value);
                    }
                }
            }
        }
        PlanPred::And(ps) | PlanPred::Or(ps) => {
            for p in ps {
                subst_pred(p, var, value);
            }
        }
        PlanPred::Not(p) => subst_pred(p, var, value),
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_are_sorted_unions() {
        let p = Plan::Join {
            inputs: vec![
                Plan::Scan {
                    rel: RelSym::new("PlR"),
                    args: vec![Term::var("y"), Term::var("x")],
                },
                Plan::Bind {
                    var: Var::new("z"),
                    value: Value::c("a"),
                },
            ],
        };
        let mut expected = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn anti_join_keeps_left_schema() {
        let left = Plan::Scan {
            rel: RelSym::new("PlR"),
            args: vec![Term::var("x"), Term::var("y")],
        };
        let right = Plan::Scan {
            rel: RelSym::new("PlS"),
            args: vec![Term::var("y")],
        };
        let p = Plan::AntiJoin {
            left: Box::new(left),
            right: Box::new(right),
        };
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(p.vars(), expected);
    }

    #[test]
    fn rename_and_substitute() {
        let mut p = Plan::Scan {
            rel: RelSym::new("PlR"),
            args: vec![Term::var("x"), Term::var("y")],
        };
        p.rename_var(Var::new("y"), Var::new("x"));
        assert_eq!(p.vars(), vec![Var::new("x")]);
        p.substitute_const(Var::new("x"), dx_relation::ConstId::new("a"));
        assert!(p.vars().is_empty());
    }

    #[test]
    fn explain_renders_tree() {
        let p = Plan::Project {
            input: Box::new(Plan::Scan {
                rel: RelSym::new("PlR"),
                args: vec![Term::var("x"), Term::cst("a")],
            }),
            vars: vec![Var::new("x")],
        };
        let text = p.explain();
        assert!(text.contains("project"));
        assert!(text.contains("scan PlR"));
    }
}
