//! The shared compiled-plan catalog.
//!
//! Every pipeline stage that evaluates queries — `dx-core`'s certain/
//! possible-answer engines, composition, the 1-to-m and PTIME-language
//! extensions, the c-table CWA routes, `dx-chase`'s planned body
//! evaluation, and `dx-solver`'s `Rep_A` refutation closures — needs the
//! same thing: *the compiled form of a query it has seen before*. Before
//! this module each consumer compiled (and re-compiled) privately;
//! [`PlanCatalog`] is the one place plans live:
//!
//! * entries are keyed by a **structural hash** of the query (formula +
//!   head, or `RaExpr`) combined with a **schema fingerprint**, and
//!   verified by full structural equality — a hash collision can cost a
//!   recompile, never a wrong plan;
//! * lookups are **interior-mutable** behind a read-mostly `RwLock`: the
//!   hit path — the overwhelmingly common case inside refutation loops,
//!   and the one parallel workers hammer concurrently — takes a shared
//!   read lock, so lookups of already-compiled plans never serialize;
//!   only inserting a freshly compiled plan takes the write lock. One
//!   catalog instance — typically [`PlanCatalog::shared`] — serves a
//!   whole pipeline, across stages and threads, without plumbing
//!   `&mut` through every signature;
//! * compiled artifacts are returned as [`Arc`]s: consumers hold cheap
//!   clones, the catalog keeps the canonical copy, and repeated calls with
//!   an equal query are hash-lookup cheap (the per-leaf cost inside a
//!   refutation loop);
//! * negative results (non-safe-range formulas, ill-schema'd RA) are cached
//!   too, so fallback paths do not re-attempt lowering per call.
//!
//! ## Keying and invalidation
//!
//! The schema fingerprint ([`PlanCatalog::fingerprint`]) hashes the
//! `(relation, arity)` pairs of the scenario's target schema. Plans are
//! schema independent — the same formula always lowers to the same plan —
//! but the fingerprint keeps entries *scenario scoped*: two exchange
//! problems reusing a query text over different schemas get separate
//! entries, so [`PlanCatalog::clear`] (the only invalidation: interned
//! symbols never change meaning within a process, so entries cannot go
//! stale) and [`PlanCatalog::stats`] stay attributable. Callers without a
//! schema at hand use the unfingerprinted entry points.

use crate::delta::delta_plan;
use crate::eval::{CompiledQuery, QueryEval};
use crate::lower::{LowerError, LowerReason};
use crate::plan::Plan;
use crate::ra::CompiledRa;
use dx_ctables::algebra::RaError;
use dx_ctables::RaExpr;
use dx_logic::{Formula, Query};
use dx_relation::fxmap::FastHasher;
use dx_relation::{FastMap, RelSym, Schema, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Catalog usage counters (see [`PlanCatalog::stats`]).
///
/// Since the dx-obs integration this is a *view*: hit/miss tallies live in
/// [`dx_obs::Counter`] sinks — registered as `query.catalog.hits` /
/// `query.catalog.misses` for [`PlanCatalog::shared`], detached (private
/// to the instance) for [`PlanCatalog::new`] — and `stats()` reads them
/// back out. The accessor API and its exact semantics (per-instance
/// isolation, `clear()` resetting counts) are unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Number of cached entries (all kinds).
    pub entries: usize,
    /// Estimated resident bytes of the cached entries (struct + compiled
    /// artifact shells per entry kind — an order-of-magnitude gauge for
    /// `mem.catalog.est_bytes`, not an allocator audit).
    pub est_bytes: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that compiled.
    pub misses: u64,
    /// Lowering rejections by reason class, counted once per distinct
    /// rejected query/formula (cache hits on a negative entry do not
    /// re-count) — the observability hook that keeps fragment gaps visible
    /// in bench/CI output instead of silently tree-walking.
    pub rejections: Vec<(LowerReason, u64)>,
}

impl CatalogStats {
    /// Total rejected compilations across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejections.iter().map(|(_, n)| n).sum()
    }
}

struct QueryEntry {
    schema_fp: u64,
    query: Query,
    eval: Arc<QueryEval>,
}

struct FormulaEntry {
    formula: Formula,
    head: Vec<Var>,
    compiled: Result<Arc<CompiledQuery>, LowerError>,
}

struct RaEntry {
    schema_fp: u64,
    expr: RaExpr,
    compiled: Result<Arc<CompiledRa>, RaError>,
}

struct DeltaEntry {
    schema_fp: u64,
    query: Query,
    changed: BTreeSet<RelSym>,
    /// `None` = the query is non-monotone in the changed relations (or not
    /// compiled) — the negative result is cached so streaming sessions do
    /// not re-derive the refusal per batch.
    variant: Option<Arc<Plan>>,
}

#[derive(Default)]
struct Inner {
    queries: FastMap<u64, Vec<QueryEntry>>,
    formulas: FastMap<u64, Vec<FormulaEntry>>,
    ras: FastMap<u64, Vec<RaEntry>>,
    deltas: FastMap<u64, Vec<DeltaEntry>>,
    rejections: BTreeMap<LowerReason, u64>,
    // `clear()` baselines: the obs counters are monotonic, so a cleared
    // catalog reports `counter - base` instead of resetting the sink.
    hits_base: u64,
    misses_base: u64,
}

impl Inner {
    fn note_rejection(&mut self, err: Option<&LowerError>) {
        if let Some(err) = err {
            *self.rejections.entry(err.reason()).or_default() += 1;
            dx_obs::count!("query.catalog.rejections");
        }
    }
}

impl Inner {
    fn entries(&self) -> usize {
        self.queries.values().map(Vec::len).sum::<usize>()
            + self.formulas.values().map(Vec::len).sum::<usize>()
            + self.ras.values().map(Vec::len).sum::<usize>()
            + self.deltas.values().map(Vec::len).sum::<usize>()
    }

    /// Order-of-magnitude resident size: per-entry struct shells plus the
    /// Arc'd compiled artifact for each entry kind. Deliberately cheap —
    /// no plan-tree traversal — so it can run on every bench row.
    fn estimated_bytes(&self) -> u64 {
        use std::mem::size_of;
        let q = self.queries.values().map(Vec::len).sum::<usize>()
            * (size_of::<QueryEntry>() + size_of::<QueryEval>());
        let f = self.formulas.values().map(Vec::len).sum::<usize>()
            * (size_of::<FormulaEntry>() + size_of::<CompiledQuery>());
        let r = self.ras.values().map(Vec::len).sum::<usize>()
            * (size_of::<RaEntry>() + size_of::<CompiledRa>());
        let d = self.deltas.values().map(Vec::len).sum::<usize>()
            * (size_of::<DeltaEntry>() + size_of::<Plan>());
        let rej = self.rejections.len() * size_of::<(LowerReason, u64)>();
        (q + f + r + d + rej) as u64
    }
}

/// A shared, interior-mutable cache of compiled query plans (see the
/// module docs).
pub struct PlanCatalog {
    inner: RwLock<Inner>,
    hits: dx_obs::Counter,
    misses: dx_obs::Counter,
}

impl Default for PlanCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCatalog {
    /// An empty catalog (for scoped pipelines and tests; most consumers use
    /// [`PlanCatalog::shared`]). Its hit/miss counters are detached —
    /// private to the instance, never visible in the global metrics
    /// snapshot — so tests stay isolated.
    pub fn new() -> Self {
        PlanCatalog {
            inner: RwLock::default(),
            hits: dx_obs::Counter::detached(),
            misses: dx_obs::Counter::detached(),
        }
    }

    /// The process-wide catalog: one instance serving every pipeline, so a
    /// query compiled during, say, certain answering is reused verbatim by
    /// the solver's refutation closures and the bench harness. Its hit/miss
    /// counters are the registered `query.catalog.hits` /
    /// `query.catalog.misses` metrics.
    pub fn shared() -> &'static PlanCatalog {
        static SHARED: OnceLock<PlanCatalog> = OnceLock::new();
        SHARED.get_or_init(|| PlanCatalog {
            inner: RwLock::default(),
            hits: dx_obs::registry().counter("query.catalog.hits"),
            misses: dx_obs::registry().counter("query.catalog.misses"),
        })
    }

    /// The schema fingerprint: a structural hash of the `(relation, arity)`
    /// pairs. Deterministic within a process (interned symbol ids are
    /// first-use stable).
    pub fn fingerprint(schema: &Schema) -> u64 {
        let mut h = FastHasher::default();
        for (rel, arity) in schema.iter() {
            rel.hash(&mut h);
            arity.hash(&mut h);
        }
        h.finish()
    }

    /// The compile-or-fallback evaluator for `query`, unscoped (fingerprint
    /// 0). Compiles on first sight, hash-lookup cheap afterwards.
    pub fn eval(&self, query: &Query) -> Arc<QueryEval> {
        self.eval_fp(query, 0)
    }

    /// [`PlanCatalog::eval`] scoped to a target schema's fingerprint.
    pub fn eval_in(&self, query: &Query, schema: &Schema) -> Arc<QueryEval> {
        self.eval_fp(query, Self::fingerprint(schema))
    }

    fn eval_fp(&self, query: &Query, schema_fp: u64) -> Arc<QueryEval> {
        let mut h = FastHasher::default();
        query.formula.hash(&mut h);
        query.head.hash(&mut h);
        schema_fp.hash(&mut h);
        let key = h.finish();
        {
            let inner = self.inner.read().expect("catalog lock");
            if let Some(e) = inner.queries.get(&key).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|e| e.schema_fp == schema_fp && &e.query == query)
            }) {
                let eval = Arc::clone(&e.eval);
                self.hits.incr();
                return eval;
            }
        }
        // Compile outside the lock: a miss must not serialize other users
        // (or deadlock a re-entrant lookup). Double-check before inserting —
        // a racing thread may have compiled the same query meanwhile.
        let eval = Arc::new(QueryEval::new(query));
        let mut inner = self.inner.write().expect("catalog lock");
        let bucket = inner.queries.entry(key).or_default();
        if let Some(e) = bucket
            .iter()
            .find(|e| e.schema_fp == schema_fp && &e.query == query)
        {
            let eval = Arc::clone(&e.eval);
            self.hits.incr();
            return eval;
        }
        bucket.push(QueryEntry {
            schema_fp,
            query: query.clone(),
            eval: Arc::clone(&eval),
        });
        inner.note_rejection(eval.lower_error());
        self.misses.incr();
        eval
    }

    /// The **delta-plan variant** of `query` with respect to the `changed`
    /// relations, scoped to a schema fingerprint: the cached result of
    /// [`crate::delta::delta_plan`] over the query's compiled plan.
    /// `None` means incremental maintenance is unsound for this
    /// (query, changed) pair — the query is non-monotone in a changed
    /// relation, or not compilable — and the caller must recompute; the
    /// refusal is cached like any other entry.
    pub fn delta_in(
        &self,
        query: &Query,
        schema: &Schema,
        changed: &BTreeSet<RelSym>,
    ) -> Option<Arc<Plan>> {
        let schema_fp = Self::fingerprint(schema);
        let mut h = FastHasher::default();
        query.formula.hash(&mut h);
        query.head.hash(&mut h);
        schema_fp.hash(&mut h);
        changed.hash(&mut h);
        let key = h.finish();
        {
            let inner = self.inner.read().expect("catalog lock");
            if let Some(e) = inner.deltas.get(&key).and_then(|bucket| {
                bucket.iter().find(|e| {
                    e.schema_fp == schema_fp && &e.query == query && &e.changed == changed
                })
            }) {
                self.hits.incr();
                return e.variant.clone();
            }
        }
        let variant = self
            .eval_fp(query, schema_fp)
            .compiled()
            .and_then(|cq| delta_plan(cq.plan(), changed))
            .map(Arc::new);
        let mut inner = self.inner.write().expect("catalog lock");
        let bucket = inner.deltas.entry(key).or_default();
        if let Some(e) = bucket
            .iter()
            .find(|e| e.schema_fp == schema_fp && &e.query == query && &e.changed == changed)
        {
            self.hits.incr();
            return e.variant.clone();
        }
        bucket.push(DeltaEntry {
            schema_fp,
            query: query.clone(),
            changed: changed.clone(),
            variant: variant.clone(),
        });
        self.misses.incr();
        variant
    }

    /// The compiled plan of a bare formula with an explicit head (the
    /// STD-body shape used by [`crate::eval::PlannedBodyEval`]). Both
    /// successful compiles and safe-range rejections are cached.
    pub fn formula(
        &self,
        formula: &Formula,
        head: &[Var],
    ) -> Result<Arc<CompiledQuery>, LowerError> {
        let mut h = FastHasher::default();
        formula.hash(&mut h);
        head.hash(&mut h);
        let key = h.finish();
        {
            let inner = self.inner.read().expect("catalog lock");
            if let Some(e) = inner.formulas.get(&key).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|e| e.head == head && &e.formula == formula)
            }) {
                let compiled = e.compiled.clone();
                self.hits.incr();
                return compiled;
            }
        }
        let compiled = CompiledQuery::compile_formula(formula, head).map(Arc::new);
        let mut inner = self.inner.write().expect("catalog lock");
        let bucket = inner.formulas.entry(key).or_default();
        if let Some(e) = bucket
            .iter()
            .find(|e| e.head == head && &e.formula == formula)
        {
            let compiled = e.compiled.clone();
            self.hits.incr();
            return compiled;
        }
        bucket.push(FormulaEntry {
            formula: formula.clone(),
            head: head.to_vec(),
            compiled: compiled.clone(),
        });
        inner.note_rejection(compiled.as_ref().err().map(|e| e as &LowerError));
        self.misses.incr();
        compiled
    }

    /// The compiled plan of a positional relational-algebra expression over
    /// `schema` (the c-table CWA route). Schema errors are cached alongside
    /// successes — the expression is structurally invalid for that
    /// fingerprint, so re-validation would re-fail identically.
    pub fn ra_in(&self, expr: &RaExpr, schema: &Schema) -> Result<Arc<CompiledRa>, RaError> {
        let schema_fp = Self::fingerprint(schema);
        let mut h = FastHasher::default();
        expr.hash(&mut h);
        schema_fp.hash(&mut h);
        let key = h.finish();
        {
            let inner = self.inner.read().expect("catalog lock");
            if let Some(e) = inner.ras.get(&key).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|e| e.schema_fp == schema_fp && &e.expr == expr)
            }) {
                let compiled = e.compiled.clone();
                self.hits.incr();
                return compiled;
            }
        }
        let compiled = CompiledRa::compile(expr, &|r| schema.arity(r)).map(Arc::new);
        let mut inner = self.inner.write().expect("catalog lock");
        let bucket = inner.ras.entry(key).or_default();
        if let Some(e) = bucket
            .iter()
            .find(|e| e.schema_fp == schema_fp && &e.expr == expr)
        {
            let compiled = e.compiled.clone();
            self.hits.incr();
            return compiled;
        }
        bucket.push(RaEntry {
            schema_fp,
            expr: expr.clone(),
            compiled: compiled.clone(),
        });
        self.misses.incr();
        compiled
    }

    /// Usage counters, read back out of the obs sinks (relative to the
    /// last [`PlanCatalog::clear`]).
    pub fn stats(&self) -> CatalogStats {
        let inner = self.inner.read().expect("catalog lock");
        let stats = CatalogStats {
            entries: inner.entries(),
            est_bytes: inner.estimated_bytes(),
            hits: self.hits.get().saturating_sub(inner.hits_base),
            misses: self.misses.get().saturating_sub(inner.misses_base),
            rejections: inner
                .rejections
                .iter()
                .map(|(reason, n)| (*reason, *n))
                .collect(),
        };
        // Reading the stats refreshes the catalog's footprint gauges, so
        // snapshots (and bench rows) carry the current entry count and
        // size estimate (last-value semantics; see `dx_obs::mem`).
        dx_obs::mem::publish_all(&[
            (dx_obs::mem::names::CATALOG_ENTRIES, stats.entries as u64),
            (dx_obs::mem::names::CATALOG_EST_BYTES, stats.est_bytes),
        ]);
        stats
    }

    /// Drop every entry (counters included). The underlying obs counters
    /// are monotonic; clearing rebases the view [`PlanCatalog::stats`]
    /// reports.
    pub fn clear(&self) {
        let mut inner = self.inner.write().expect("catalog lock");
        *inner = Inner::default();
        inner.hits_base = self.hits.get();
        inner.misses_base = self.misses.get();
    }
}

impl std::fmt::Debug for PlanCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCatalog")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Instance, RelSym, Tuple};

    fn inst() -> Instance {
        let mut i = Instance::new();
        i.insert_names("CatR", &["a", "b"]);
        i.insert_names("CatR", &["b", "c"]);
        i
    }

    #[test]
    fn query_entries_are_shared_and_counted() {
        let cat = PlanCatalog::new();
        let q = Query::parse(&["x"], "exists y. CatR(x, y)").unwrap();
        let e1 = cat.eval(&q);
        let e2 = cat.eval(&q);
        assert!(Arc::ptr_eq(&e1, &e2), "same Arc from the cache");
        let stats = cat.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(
            stats.est_bytes > 0,
            "a populated catalog reports a nonzero size estimate"
        );
        cat.clear();
        assert_eq!(cat.stats().est_bytes, 0, "cleared catalog holds nothing");
        // Evaluation through the cached entry matches a fresh compile.
        assert_eq!(e1.answers(&inst()), QueryEval::new(&q).answers(&inst()));
    }

    #[test]
    fn schema_fingerprint_scopes_entries() {
        let cat = PlanCatalog::new();
        let q = Query::parse(&["x"], "CatR(x, x)").unwrap();
        let s1 = Schema::from_pairs([("CatR", 2)]);
        let s2 = Schema::from_pairs([("CatR", 2), ("CatS", 1)]);
        assert_ne!(PlanCatalog::fingerprint(&s1), PlanCatalog::fingerprint(&s2));
        let a = cat.eval_in(&q, &s1);
        let b = cat.eval_in(&q, &s2);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different scenarios, separate entries"
        );
        assert_eq!(cat.stats().entries, 2);
        assert!(Arc::ptr_eq(&a, &cat.eval_in(&q, &s1)));
    }

    #[test]
    fn formula_rejections_are_cached() {
        let cat = PlanCatalog::new();
        let bad = dx_logic::parse_formula("x = y").unwrap();
        let head = [dx_relation::Var::new("x"), dx_relation::Var::new("y")];
        assert!(cat.formula(&bad, &head).is_err());
        assert!(cat.formula(&bad, &head).is_err());
        let stats = cat.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The rejection is attributed to its reason class, once (the cached
        // negative replay does not re-count).
        assert_eq!(
            stats.rejections,
            vec![(crate::lower::LowerReason::BareVariableEquality, 1)]
        );
        assert_eq!(stats.rejected(), 1);
        // A good formula compiles once and is replayed.
        let good = dx_logic::parse_formula("CatR(x, y)").unwrap();
        let c1 = cat.formula(&good, &head).unwrap();
        let c2 = cat.formula(&good, &head).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    fn delta_variants_are_cached_per_changed_set() {
        let cat = PlanCatalog::new();
        let q = Query::parse(&["x"], "exists y. CatR(x, y)").unwrap();
        let schema = Schema::from_pairs([("CatR", 2), ("CatS", 2)]);
        let changed: BTreeSet<RelSym> = [RelSym::new("CatR")].into();
        let d1 = cat.delta_in(&q, &schema, &changed).expect("monotone");
        let d2 = cat.delta_in(&q, &schema, &changed).expect("monotone");
        assert!(Arc::ptr_eq(&d1, &d2), "one canonical delta variant");
        // An unrelated changed set is a distinct (cached) entry, and a
        // non-monotone query caches its refusal.
        let other: BTreeSet<RelSym> = [RelSym::new("CatS")].into();
        let empty = cat.delta_in(&q, &schema, &other).expect("still monotone");
        assert!(matches!(*empty, Plan::Empty { .. }));
        let neg = Query::parse(&["x"], "exists y. CatR(x, y) & !CatS(y, x)").unwrap();
        assert!(cat.delta_in(&neg, &schema, &other).is_none());
        let before = cat.stats().hits;
        assert!(cat.delta_in(&neg, &schema, &other).is_none());
        assert_eq!(cat.stats().hits, before + 1, "negative result replayed");
    }

    #[test]
    fn ra_entries_compile_once_per_schema() {
        let cat = PlanCatalog::new();
        let expr = RaExpr::rel("CatR").project([0]);
        let schema = Schema::from_pairs([("CatR", 2)]);
        let c1 = cat.ra_in(&expr, &schema).unwrap();
        let c2 = cat.ra_in(&expr, &schema).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
        // Unknown relation: the error is cached, not re-validated.
        let bad = RaExpr::rel("CatMissing");
        assert!(matches!(
            cat.ra_in(&bad, &schema),
            Err(RaError::UnknownRelation(r)) if r == RelSym::new("CatMissing")
        ));
        let before = cat.stats();
        assert!(cat.ra_in(&bad, &schema).is_err());
        assert_eq!(cat.stats().hits, before.hits + 1);
        // The compiled entry evaluates like a fresh compile.
        let fresh = CompiledRa::compile(&expr, &|r| schema.arity(r)).unwrap();
        assert_eq!(c1.eval_ground(&inst()), fresh.eval_ground(&inst()));
        assert!(c1.eval_ground(&inst()).contains(&Tuple::from_names(&["a"])));
    }

    /// Parallel workers hammering one catalog entry: lookups stay exact —
    /// every call is either a hit or a miss, the entry is compiled at
    /// most once per racing thread (double-checked insert), and all
    /// callers share one canonical `Arc`.
    #[test]
    fn concurrent_lookups_keep_stats_exact() {
        let cat = PlanCatalog::new();
        let q = Query::parse(&["x"], "exists y. CatR(x, y)").unwrap();
        const THREADS: usize = 8;
        const CALLS: usize = 50;
        let evals: Vec<Arc<QueryEval>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        let mut last = None;
                        for _ in 0..CALLS {
                            last = Some(cat.eval(&q));
                        }
                        last.unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in &evals {
            assert!(Arc::ptr_eq(e, &evals[0]), "one canonical compiled plan");
        }
        let stats = cat.stats();
        assert_eq!(stats.entries, 1, "double-checked insert keeps one entry");
        assert_eq!(
            stats.hits + stats.misses,
            (THREADS * CALLS) as u64,
            "every lookup is counted exactly once"
        );
        assert!(stats.misses >= 1 && stats.misses <= THREADS as u64);
    }

    #[test]
    fn shared_catalog_is_one_instance() {
        let a = PlanCatalog::shared() as *const PlanCatalog;
        let b = PlanCatalog::shared() as *const PlanCatalog;
        assert_eq!(a, b);
    }
}
