//! The storage abstraction plans execute against.
//!
//! [`QueryStore`] is the slice of an indexed tuple store the executor
//! needs: per-relation cardinalities, a **selectivity estimate** for a
//! partially bound pattern (the quantity the greedy join order minimizes),
//! and pattern-matching scans that probe the tightest bound column.
//!
//! Implementations in the workspace:
//!
//! * [`dx_relation::InstanceIndex`] (here) — an immutable snapshot index
//!   built per instance; the default backing of
//!   [`crate::eval::QueryEval`];
//! * `dx_engine::IndexedInstance` (in `dx-engine`, which depends on this
//!   crate) — the live, incrementally maintained store behind the
//!   delta-driven chase, so plans run against chase output without a
//!   re-index.

use dx_relation::{DeltaIndex, Instance, InstanceIndex, OverlayIndex, RelSym, Tuple, Value};

/// An indexed tuple source the executor can scan and probe.
///
/// `Sync` is a supertrait so the parallel executors can share one store
/// across pool workers; every implementation in the workspace is plain
/// data (no interior mutability), so the bound costs nothing.
pub trait QueryStore: Sync {
    /// The arity of `rel`, if the store knows the relation.
    fn rel_arity(&self, rel: RelSym) -> Option<usize>;

    /// Number of tuples in `rel` (0 when absent).
    fn rel_len(&self, rel: RelSym) -> usize;

    /// Upper bound on the number of tuples of `rel` matching `pattern`
    /// (`Some(v)` = position bound to `v`): the posting-list length of the
    /// tightest bound column, or the relation size when nothing is bound.
    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize;

    /// Invoke `f` on every tuple of `rel` matching `pattern` on all bound
    /// positions.
    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple));
}

impl QueryStore for InstanceIndex {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.relation(rel).map(|idx| idx.arity())
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        self.relation(rel).map_or(0, |idx| idx.len())
    }

    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        self.relation(rel).map_or(0, |idx| idx.selectivity(pattern))
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        if let Some(idx) = self.relation(rel) {
            for id in idx.matching(pattern) {
                f(idx.get(id));
            }
        }
    }
}

/// The incrementally maintained store: `dx-solver`'s `Rep_A` search mutates
/// one [`DeltaIndex`] by delta apply/undo and compiled plans probe it at
/// every leaf — the replacement for building an [`InstanceIndex`] per
/// candidate instance. Identical tuple sets answer identically to the
/// snapshot index (`dx-relation`'s delta tests assert it).
impl QueryStore for DeltaIndex {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        DeltaIndex::rel_arity(self, rel)
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        DeltaIndex::rel_len(self, rel)
    }

    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        DeltaIndex::selectivity(self, rel, pattern)
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        DeltaIndex::for_each_matching(self, rel, pattern, f)
    }
}

/// A per-worker overlay over a shared frozen snapshot: what parallel
/// sweeps probe. Same visible set ⇒ same (set-normalized) answers as the
/// sequential [`DeltaIndex`] it was frozen from.
impl QueryStore for OverlayIndex {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        OverlayIndex::rel_arity(self, rel)
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        OverlayIndex::rel_len(self, rel)
    }

    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        OverlayIndex::selectivity(self, rel, pattern)
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        OverlayIndex::for_each_matching(self, rel, pattern, f)
    }
}

/// Un-indexed fallback: scan-and-filter directly over an [`Instance`].
/// Used when the instance is too small for an index build to pay off.
impl QueryStore for Instance {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.relation(rel).map(|r| r.arity())
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        self.relation(rel).map_or(0, |r| r.len())
    }

    fn selectivity(&self, rel: RelSym, _pattern: &[Option<Value>]) -> usize {
        self.rel_len(rel)
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        for t in self.tuples(rel) {
            let matches = pattern
                .iter()
                .enumerate()
                .all(|(c, p)| p.is_none_or(|pv| t.get(c) == pv));
            if matches {
                f(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        let mut i = Instance::new();
        i.insert_names("QsE", &["a", "b"]);
        i.insert_names("QsE", &["a", "c"]);
        i.insert_names("QsE", &["b", "c"]);
        i
    }

    #[test]
    fn index_and_naive_stores_agree() {
        let inst = sample();
        let idx = InstanceIndex::build(&inst);
        let pattern = [Some(Value::c("a")), None];
        let rel = RelSym::new("QsE");
        assert_eq!(idx.rel_arity(rel), Some(2));
        assert_eq!(inst.rel_arity(rel), Some(2));
        assert_eq!(idx.rel_len(rel), 3);
        assert_eq!(idx.selectivity(rel, &pattern), 2);
        let mut via_idx = Vec::new();
        idx.for_each_matching(rel, &pattern, &mut |t| via_idx.push(t.clone()));
        let mut via_scan = Vec::new();
        inst.for_each_matching(rel, &pattern, &mut |t| via_scan.push(t.clone()));
        via_idx.sort();
        via_scan.sort();
        assert_eq!(via_idx, via_scan);
        assert_eq!(via_idx.len(), 2);
    }

    #[test]
    fn absent_relations_read_empty() {
        let inst = sample();
        let idx = InstanceIndex::build(&inst);
        let rel = RelSym::new("QsMissing");
        assert_eq!(idx.rel_arity(rel), None);
        assert_eq!(idx.rel_len(rel), 0);
        let mut n = 0;
        idx.for_each_matching(rel, &[None], &mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
