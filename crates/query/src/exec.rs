//! The ground executor: plans over [`QueryStore`]s, nulls as atomic values.
//!
//! Rows are vectors of values keyed by the executing node's sorted output
//! variables. Joins are executed **greedily by index selectivity**: scans
//! stay symbolic until joined, and at each step the executor prefers an
//! input sharing variables with the rows built so far (so the scan becomes
//! a per-row index probe) and, among those, the one with the smallest
//! selectivity estimate. Materialized inputs (subplans, unions, single-row
//! binds) join by hashing on the shared variables. Anti-/semi-joins hash
//! the filter side once and reduce the preserved side in one pass.
//!
//! Work metrics (`DX_OBS=1`): `query.exec.rows_emitted` (rows returned by
//! root [`exec`] calls), `.rows_scanned` (tuples visited by scans and
//! probes), `.rows_joined` (rows produced by join nodes), `.index_probes`
//! (per-row store probes), and `.seed_partitions` / `.seed_reruns` (the
//! seeded anti-join's distinct keys / correlated branch executions).
//! Per-node row counts for EXPLAIN reports are captured through
//! [`crate::explain`]'s thread-local collector.

use crate::plan::{Plan, PlanPred, Ref};
use crate::store::QueryStore;
use dx_logic::Term;
use dx_relation::{FastMap, FastSet, RelSym, Value, Var};
use std::collections::BTreeSet;

/// Row count below which the chunked executors stay sequential: the
/// per-region pool setup costs more than it saves on tiny inputs.
const PAR_MIN_ROWS: usize = 256;

/// Chunk geometry for a parallel sweep over `n` rows: `Some((chunk_len,
/// chunk_count))` when going parallel pays off, `None` to stay inline.
/// Chunks are contiguous and merged in index order, so every chunked
/// executor emits rows in exactly the sequential order.
fn par_chunks(n: usize) -> Option<(usize, usize)> {
    let threads = rayon::current_num_threads();
    if threads <= 1 || n < PAR_MIN_ROWS {
        return None;
    }
    // Over-decompose (4 chunks per worker) so stealing can level skew.
    let chunk = n.div_ceil(threads * 4).max(1);
    Some((chunk, n.div_ceil(chunk)))
}

/// A materialized binding table: `vars` are sorted, every row is keyed by
/// them positionally.
#[derive(Clone, Debug, Default)]
pub struct Rows {
    /// The sorted output variables.
    pub vars: Vec<Var>,
    /// The binding rows (a set by construction).
    pub rows: Vec<Vec<Value>>,
}

impl Rows {
    /// Position of `v` in the schema.
    pub fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    fn unit() -> Rows {
        Rows {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    fn empty(vars: Vec<Var>) -> Rows {
        Rows {
            vars,
            rows: Vec::new(),
        }
    }
}

/// Execute a plan against a store, materializing its binding rows.
pub fn exec(plan: &Plan, store: &dyn QueryStore) -> Rows {
    let _span = dx_obs::span!("query.exec");
    let rows = exec_node(plan, store);
    dx_obs::count!("query.exec.rows_emitted", rows.rows.len());
    dx_obs::trace_instant!("query.exec.root_done", "rows" = rows.rows.len());
    rows
}

/// One node's execution (the recursive form). Every node completion is
/// reported to the explain collector; only root [`exec`] calls count
/// toward `query.exec.rows_emitted`.
fn exec_node(plan: &Plan, store: &dyn QueryStore) -> Rows {
    let rows = exec_node_inner(plan, store);
    crate::explain::trace::note_rows(plan, rows.rows.len());
    rows
}

fn exec_node_inner(plan: &Plan, store: &dyn QueryStore) -> Rows {
    match plan {
        Plan::Unit => Rows::unit(),
        Plan::Empty { vars } => {
            let mut vs = vars.clone();
            vs.sort();
            Rows::empty(vs)
        }
        Plan::Bind { var, value } => Rows {
            vars: vec![*var],
            rows: vec![vec![*value]],
        },
        Plan::Scan { rel, args } => scan_all(store, *rel, args),
        Plan::Join { inputs } => exec_join(inputs, store),
        Plan::SemiJoin { left, right } => exec_filter_join(left, right, store, true),
        Plan::AntiJoin { left, right } => exec_filter_join(left, right, store, false),
        Plan::SeededAntiJoin { left, right, seed } => {
            exec_seeded_anti(plan, left, right, seed, store)
        }
        Plan::Select { input, pred } => {
            let mut rows = exec_node(input, store);
            rows.rows.retain(|r| eval_pred(pred, &rows.vars, r));
            rows
        }
        Plan::Project { input, vars } => {
            let rows = exec_node(input, store);
            let mut out_vars = vars.clone();
            out_vars.sort();
            let cols: Vec<usize> = out_vars
                .iter()
                .map(|v| rows.col(*v).expect("projected variable is produced"))
                .collect();
            let set: BTreeSet<Vec<Value>> = rows
                .rows
                .iter()
                .map(|r| cols.iter().map(|&c| r[c]).collect())
                .collect();
            Rows {
                vars: out_vars,
                rows: set.into_iter().collect(),
            }
        }
        Plan::Union { inputs } => {
            let mut out_vars: Option<Vec<Var>> = None;
            let mut set: BTreeSet<Vec<Value>> = BTreeSet::new();
            for p in inputs {
                let rows = exec_node(p, store);
                match &out_vars {
                    None => out_vars = Some(rows.vars.clone()),
                    Some(vs) => debug_assert_eq!(vs, &rows.vars, "union schema mismatch"),
                }
                set.extend(rows.rows);
            }
            Rows {
                vars: out_vars.unwrap_or_default(),
                rows: set.into_iter().collect(),
            }
        }
        Plan::Alias { input, src, dst } => {
            let rows = exec_node(input, store);
            let src_col = rows.col(*src).expect("alias source is produced");
            let mut vars = rows.vars.clone();
            vars.push(*dst);
            vars.sort();
            let order: Vec<usize> = vars
                .iter()
                .map(|v| {
                    if v == dst {
                        usize::MAX
                    } else {
                        rows.col(*v).expect("existing column")
                    }
                })
                .collect();
            let out = rows
                .rows
                .iter()
                .map(|r| {
                    order
                        .iter()
                        .map(|&c| if c == usize::MAX { r[src_col] } else { r[c] })
                        .collect()
                })
                .collect();
            Rows { vars, rows: out }
        }
    }
}

/// Does the plan produce at least one row?
pub fn exec_nonempty(plan: &Plan, store: &dyn QueryStore) -> bool {
    !exec(plan, store).rows.is_empty()
}

fn eval_ref(r: &Ref, vars: &[Var], row: &[Value]) -> Value {
    match r {
        Ref::Val(v) => *v,
        Ref::Var(v) => {
            let i = vars.iter().position(|w| w == v).expect("bound pred var");
            row[i]
        }
    }
}

fn eval_pred(p: &PlanPred, vars: &[Var], row: &[Value]) -> bool {
    match p {
        PlanPred::True => true,
        PlanPred::Eq(a, b) => eval_ref(a, vars, row) == eval_ref(b, vars, row),
        PlanPred::And(ps) => ps.iter().all(|p| eval_pred(p, vars, row)),
        PlanPred::Or(ps) => ps.iter().any(|p| eval_pred(p, vars, row)),
        PlanPred::Not(p) => !eval_pred(p, vars, row),
    }
}

/// The constant-only probe pattern of an atom template.
fn const_pattern(args: &[Term]) -> Vec<Option<Value>> {
    args.iter()
        .map(|t| match t {
            Term::Const(c) => Some(Value::Const(*c)),
            _ => None,
        })
        .collect()
}

/// Unify one stored tuple against the template given some already-bound
/// variables; returns the row over `schema` on success.
fn unify_tuple(
    args: &[Term],
    tuple: &dx_relation::Tuple,
    schema: &[Var],
    prebound: &[(Var, Value)],
) -> Option<Vec<Value>> {
    let mut bound: Vec<(Var, Value)> = prebound.to_vec();
    for (i, arg) in args.iter().enumerate() {
        let v = tuple.get(i);
        match arg {
            Term::Const(c) => {
                if v != Value::Const(*c) {
                    return None;
                }
            }
            Term::Var(x) => match bound.iter().find(|(b, _)| b == x) {
                Some((_, bv)) => {
                    if *bv != v {
                        return None;
                    }
                }
                None => bound.push((*x, v)),
            },
            Term::App(_, _) => unreachable!("plans are function-free"),
        }
    }
    Some(
        schema
            .iter()
            .map(|s| {
                bound
                    .iter()
                    .find(|(b, _)| b == s)
                    .map(|(_, v)| *v)
                    .expect("schema variable bound")
            })
            .collect(),
    )
}

/// Full scan of an atom template (constants pre-filtered by the index).
fn scan_all(store: &dyn QueryStore, rel: RelSym, args: &[Term]) -> Rows {
    let schema: Vec<Var> = {
        let mut s: BTreeSet<Var> = BTreeSet::new();
        for t in args {
            if let Term::Var(v) = t {
                s.insert(*v);
            }
        }
        s.into_iter().collect()
    };
    let mut rows = Vec::new();
    let mut scanned = 0u64;
    dx_obs::count!("query.exec.index_probes");
    store.for_each_matching(rel, &const_pattern(args), &mut |t| {
        scanned += 1;
        if let Some(row) = unify_tuple(args, t, &schema, &[]) {
            rows.push(row);
        }
    });
    dx_obs::count!("query.exec.rows_scanned", scanned);
    // Repeated scans of set-semantics relations produce no duplicates, but a
    // live annotated store may expose the same tuple under two annotations.
    rows.sort();
    rows.dedup();
    Rows { vars: schema, rows }
}

enum JoinItem<'p> {
    Scan {
        rel: RelSym,
        args: &'p [Term],
        sel: usize,
    },
    Mat(Rows),
}

impl JoinItem<'_> {
    fn size(&self) -> usize {
        match self {
            JoinItem::Scan { sel, .. } => *sel,
            JoinItem::Mat(rows) => rows.rows.len(),
        }
    }

    fn vars(&self) -> Vec<Var> {
        match self {
            JoinItem::Scan { args, .. } => {
                let mut s: BTreeSet<Var> = BTreeSet::new();
                for t in *args {
                    if let Term::Var(v) = t {
                        s.insert(*v);
                    }
                }
                s.into_iter().collect()
            }
            JoinItem::Mat(rows) => rows.vars.clone(),
        }
    }
}

/// Greedy n-ary join: repeatedly fold in the input that (a) shares
/// variables with what is bound so far and (b) has the smallest
/// selectivity estimate; shared-variable scans run as per-row index
/// probes, everything else as hash joins.
fn exec_join(inputs: &[Plan], store: &dyn QueryStore) -> Rows {
    let mut items: Vec<JoinItem> = inputs
        .iter()
        .map(|p| match p {
            Plan::Scan { rel, args } => JoinItem::Scan {
                rel: *rel,
                args,
                sel: store.selectivity(*rel, &const_pattern(args)),
            },
            other => JoinItem::Mat(exec_node(other, store)),
        })
        .collect();
    if items.is_empty() {
        return Rows::unit();
    }
    // Start from the smallest input.
    let start = items
        .iter()
        .enumerate()
        .min_by_key(|(_, it)| it.size())
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut acc = match items.swap_remove(start) {
        JoinItem::Scan { rel, args, .. } => scan_all(store, rel, args),
        JoinItem::Mat(rows) => rows,
    };
    while !items.is_empty() {
        let bound: BTreeSet<Var> = acc.vars.iter().copied().collect();
        let next = items
            .iter()
            .enumerate()
            .min_by_key(|(_, it)| {
                let shares = it.vars().iter().any(|v| bound.contains(v));
                (!shares, it.size())
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        acc = match items.swap_remove(next) {
            JoinItem::Scan { rel, args, .. } => {
                if args
                    .iter()
                    .any(|t| matches!(t, Term::Var(v) if bound.contains(v)))
                {
                    probe_join(acc, store, rel, args)
                } else {
                    hash_join(acc, scan_all(store, rel, args))
                }
            }
            JoinItem::Mat(rows) => hash_join(acc, rows),
        };
        if acc.rows.is_empty() {
            // Every remaining input can only keep the result empty.
            let mut vars: BTreeSet<Var> = acc.vars.iter().copied().collect();
            for it in &items {
                vars.extend(it.vars());
            }
            return Rows::empty(vars.into_iter().collect());
        }
    }
    acc
}

/// Join `acc` with a scan by probing the store once per accumulated row,
/// with the shared variables' values folded into the probe pattern.
fn probe_join(acc: Rows, store: &dyn QueryStore, rel: RelSym, args: &[Term]) -> Rows {
    let mut schema: BTreeSet<Var> = acc.vars.iter().copied().collect();
    for t in args {
        if let Term::Var(v) = t {
            schema.insert(*v);
        }
    }
    let schema: Vec<Var> = schema.into_iter().collect();
    // Per-argument source: constant, shared column of acc, or free.
    let acc_cols: Vec<Option<usize>> = args
        .iter()
        .map(|t| match t {
            Term::Var(v) => acc.col(*v),
            _ => None,
        })
        .collect();
    dx_obs::count!("query.exec.index_probes", acc.rows.len());
    let probe_one = |row: &[Value], out: &mut Vec<Vec<Value>>, scanned: &mut u64| {
        let pattern: Vec<Option<Value>> = args
            .iter()
            .zip(&acc_cols)
            .map(|(t, col)| match (t, col) {
                (Term::Const(c), _) => Some(Value::Const(*c)),
                (_, Some(c)) => Some(row[*c]),
                _ => None,
            })
            .collect();
        let prebound: Vec<(Var, Value)> =
            acc.vars.iter().copied().zip(row.iter().copied()).collect();
        store.for_each_matching(rel, &pattern, &mut |t| {
            *scanned += 1;
            if let Some(joined) = unify_tuple(args, t, &schema, &prebound) {
                out.push(joined);
            }
        });
    };
    let (mut out, scanned) = match par_chunks(acc.rows.len()) {
        Some((chunk, chunks)) => {
            let parts: Vec<(Vec<Vec<Value>>, u64)> = rayon::par_map(chunks, |ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(acc.rows.len());
                let mut out = Vec::new();
                let mut scanned = 0u64;
                for row in &acc.rows[lo..hi] {
                    probe_one(row, &mut out, &mut scanned);
                }
                (out, scanned)
            });
            let mut out = Vec::new();
            let mut scanned = 0u64;
            for (part, s) in parts {
                out.extend(part);
                scanned += s;
            }
            (out, scanned)
        }
        None => {
            let mut out = Vec::new();
            let mut scanned = 0u64;
            for row in &acc.rows {
                probe_one(row, &mut out, &mut scanned);
            }
            (out, scanned)
        }
    };
    dx_obs::count!("query.exec.rows_scanned", scanned);
    out.sort();
    out.dedup();
    dx_obs::count!("query.exec.rows_joined", out.len());
    Rows {
        vars: schema,
        rows: out,
    }
}

/// Hash join on the shared variables (cartesian product when none).
fn hash_join(left: Rows, right: Rows) -> Rows {
    let shared: Vec<Var> = left
        .vars
        .iter()
        .copied()
        .filter(|v| right.col(*v).is_some())
        .collect();
    let mut schema: BTreeSet<Var> = left.vars.iter().copied().collect();
    schema.extend(right.vars.iter().copied());
    let schema: Vec<Var> = schema.into_iter().collect();
    let l_shared: Vec<usize> = shared.iter().map(|v| left.col(*v).unwrap()).collect();
    let r_shared: Vec<usize> = shared.iter().map(|v| right.col(*v).unwrap()).collect();
    // Emit helper: schema position → (side, column).
    let sources: Vec<(bool, usize)> = schema
        .iter()
        .map(|v| match left.col(*v) {
            Some(c) => (true, c),
            None => (false, right.col(*v).expect("var from one side")),
        })
        .collect();
    let mut table: FastMap<Vec<Value>, Vec<usize>> = FastMap::default();
    for (i, r) in right.rows.iter().enumerate() {
        let key: Vec<Value> = r_shared.iter().map(|&c| r[c]).collect();
        table.entry(key).or_default().push(i);
    }
    let emit_range = |rows: &[Vec<Value>]| {
        let mut out = Vec::new();
        for l in rows {
            let key: Vec<Value> = l_shared.iter().map(|&c| l[c]).collect();
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let r = &right.rows[ri];
                    out.push(
                        sources
                            .iter()
                            .map(|&(from_left, c)| if from_left { l[c] } else { r[c] })
                            .collect::<Vec<Value>>(),
                    );
                }
            }
        }
        out
    };
    let out = match par_chunks(left.rows.len()) {
        Some((chunk, chunks)) => {
            // Probe chunks of the build-once table in parallel; in-order
            // concat keeps the emitted row order sequential-identical.
            let parts: Vec<Vec<Vec<Value>>> = rayon::par_map(chunks, |ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(left.rows.len());
                emit_range(&left.rows[lo..hi])
            });
            parts.into_iter().flatten().collect()
        }
        None => emit_range(&left.rows),
    };
    dx_obs::count!("query.exec.rows_joined", out.len());
    Rows {
        vars: schema,
        rows: out,
    }
}

/// Semi-join (`keep = true`) or anti-join (`keep = false`): hash the filter
/// side on the shared variables, reduce the preserved side in one pass.
fn exec_filter_join(left: &Plan, right: &Plan, store: &dyn QueryStore, keep: bool) -> Rows {
    let mut l = exec_node(left, store);
    let r = exec_node(right, store);
    let shared: Vec<Var> = l
        .vars
        .iter()
        .copied()
        .filter(|v| r.col(*v).is_some())
        .collect();
    if shared.is_empty() {
        // Degenerate: the right side is a boolean gate.
        let right_nonempty = !r.rows.is_empty();
        if right_nonempty != keep {
            l.rows.clear();
        }
        return l;
    }
    let l_cols: Vec<usize> = shared.iter().map(|v| l.col(*v).unwrap()).collect();
    let r_cols: Vec<usize> = shared.iter().map(|v| r.col(*v).unwrap()).collect();
    let keys: BTreeSet<Vec<Value>> = r
        .rows
        .iter()
        .map(|row| r_cols.iter().map(|&c| row[c]).collect())
        .collect();
    let decide = |row: &Vec<Value>| {
        let key: Vec<Value> = l_cols.iter().map(|&c| row[c]).collect();
        keys.contains(&key) == keep
    };
    match par_chunks(l.rows.len()) {
        Some((chunk, chunks)) => {
            // Parallel keep-mask, sequential in-order compaction: the
            // surviving rows and their order match the plain retain.
            let mask: Vec<Vec<bool>> = rayon::par_map(chunks, |ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(l.rows.len());
                l.rows[lo..hi].iter().map(decide).collect()
            });
            let mask: Vec<bool> = mask.into_iter().flatten().collect();
            let mut i = 0;
            l.rows.retain(|_| {
                let k = mask[i];
                i += 1;
                k
            });
        }
        None => l.rows.retain(decide),
    }
    l
}

/// Seeded anti-join: hash-partition the preserved side on the seed key,
/// execute the correlated branch **once per distinct key** with the seeds
/// substituted as constants ([`Plan::bind_seed`]), and reduce each
/// partition by the branch's rows on the remaining shared variables. With
/// no shared variables the branch acts as a per-key boolean gate (the
/// empty key is in the refuting set iff the branch produced rows).
fn exec_seeded_anti(
    node: &Plan,
    left: &Plan,
    right: &Plan,
    seed: &[Var],
    store: &dyn QueryStore,
) -> Rows {
    let mut l = exec_node(left, store);
    let seed_cols: Vec<usize> = seed
        .iter()
        .map(|v| l.col(*v).expect("seed variable is bound by the left side"))
        .collect();
    // The shared variables are key independent (`bind_seed` removes the
    // same seed variables from the branch schema for every key, and the
    // reserved `$seed:` columns a null key adds never occur in the left
    // schema); only the branch-side column positions can shift per key.
    let shared: Vec<Var> = {
        let rv: BTreeSet<Var> = right.vars().into_iter().collect();
        l.vars
            .iter()
            .copied()
            .filter(|v| rv.contains(v) && !seed.contains(v))
            .collect()
    };
    let l_cols: Vec<usize> = shared.iter().map(|v| l.col(*v).unwrap()).collect();
    let run_branch = |key: &[Value]| -> BTreeSet<Vec<Value>> {
        let mut branch = right.clone();
        for (v, val) in seed.iter().zip(key) {
            branch.bind_seed(*v, *val);
        }
        let rows = exec_node(&branch, store);
        let r_cols: Vec<usize> = shared
            .iter()
            .map(|v| rows.col(*v).expect("shared variable survives seeding"))
            .collect();
        rows.rows
            .iter()
            .map(|r| r_cols.iter().map(|&c| r[c]).collect())
            .collect()
    };
    let (partitions, reruns) = if rayon::current_num_threads() > 1 {
        // Parallel form: collect the distinct seed keys up front (in
        // first-occurrence order), run the correlated branch for every
        // key on the pool, then reduce. Same partitions, same rerun
        // count, same surviving rows as the lazy sequential form.
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut seen: FastSet<Vec<Value>> = FastSet::default();
        for row in &l.rows {
            let key: Vec<Value> = seed_cols.iter().map(|&c| row[c]).collect();
            if seen.insert(key.clone()) {
                keys.push(key);
            }
        }
        let branches: Vec<BTreeSet<Vec<Value>>> =
            rayon::par_map(keys.len(), |i| run_branch(&keys[i]));
        let reruns = keys.len() as u64;
        let partitions: FastMap<Vec<Value>, BTreeSet<Vec<Value>>> =
            keys.into_iter().zip(branches).collect();
        l.rows.retain(|row| {
            let key: Vec<Value> = seed_cols.iter().map(|&c| row[c]).collect();
            let probe: Vec<Value> = l_cols.iter().map(|&c| row[c]).collect();
            !partitions[&key].contains(&probe)
        });
        (partitions, reruns)
    } else {
        let mut partitions: FastMap<Vec<Value>, BTreeSet<Vec<Value>>> = FastMap::default();
        let mut reruns = 0u64;
        l.rows.retain(|row| {
            let key: Vec<Value> = seed_cols.iter().map(|&c| row[c]).collect();
            let refuting = partitions.entry(key.clone()).or_insert_with(|| {
                reruns += 1;
                run_branch(&key)
            });
            let probe: Vec<Value> = l_cols.iter().map(|&c| row[c]).collect();
            !refuting.contains(&probe)
        });
        (partitions, reruns)
    };
    dx_obs::count!("query.exec.seed_partitions", partitions.len());
    dx_obs::count!("query.exec.seed_reruns", reruns);
    crate::explain::trace::note_seed(node, partitions.len() as u64, reruns);
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_formula;
    use dx_logic::parse_formula;
    use dx_relation::{Instance, InstanceIndex, RelSym, Tuple};

    fn graph() -> Instance {
        let mut i = Instance::new();
        i.insert_names("ExE", &["a", "b"]);
        i.insert_names("ExE", &["b", "c"]);
        i.insert_names("ExE", &["d", "d"]);
        i.insert_names("ExV", &["a"]);
        i.insert_names("ExV", &["c"]);
        i
    }

    fn run(src: &str, inst: &Instance) -> Rows {
        let plan = lower_formula(&parse_formula(src).expect("parses")).expect("lowers");
        exec(&plan, &InstanceIndex::build(inst))
    }

    #[test]
    fn join_two_hops() {
        let rows = run("exists y. ExE(x, y) & ExE(y, z)", &graph());
        // a→b→c, d→d→d.
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn antijoin_sinks() {
        // Vertices of V with no outgoing edge: c.
        let rows = run("ExV(x) & !(exists y. ExE(x, y))", &graph());
        assert_eq!(rows.rows, vec![vec![Value::c("c")]]);
    }

    #[test]
    fn self_loop_via_repeated_var() {
        let rows = run("ExE(x, x)", &graph());
        assert_eq!(rows.rows, vec![vec![Value::c("d")]]);
    }

    #[test]
    fn bind_probes_constants() {
        let rows = run("ExE('a', y)", &graph());
        assert_eq!(rows.rows, vec![vec![Value::c("b")]]);
        let rows = run("ExE(x, y) & x = 'b'", &graph());
        assert_eq!(rows.rows.len(), 1);
    }

    #[test]
    fn union_and_filters() {
        let rows = run("(ExE(x, y) | ExE(y, x)) & !(x = y)", &graph());
        // (a,b),(b,a),(b,c),(c,b) — the d-loop is filtered out.
        assert_eq!(rows.rows.len(), 4);
    }

    #[test]
    fn empty_relation_short_circuits() {
        let rows = run("ExE(x, y) & ExMissing(y, z)", &graph());
        assert!(rows.rows.is_empty());
        let mut expected = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        expected.sort();
        assert_eq!(rows.vars, expected);
    }

    /// The correlated §1 shape on the ground executor: papers with exactly
    /// one author, nulls as atomic author values.
    #[test]
    fn seeded_antijoin_one_author() {
        let mut i = Instance::new();
        i.insert_names("ExSub", &["p1", "alice"]);
        i.insert_names("ExSub", &["p2", "bob"]);
        i.insert_names("ExSub", &["p2", "carol"]);
        i.insert(
            RelSym::new("ExSub"),
            Tuple::new(vec![Value::c("p3"), Value::null(1)]),
        );
        let rows = run(
            "exists a. ExSub(p, a) & (forall b. (ExSub(p, b) -> a = b))",
            &i,
        );
        // p1 (one ground author) and p3 (one null author) qualify; p2 not.
        let got: BTreeSet<Vec<Value>> = rows.rows.into_iter().collect();
        let want: BTreeSet<Vec<Value>> = [vec![Value::c("p1")], vec![Value::c("p3")]]
            .into_iter()
            .collect();
        assert_eq!(got, want);
        // A second author for p3 — a null vs ground clash — disqualifies it.
        i.insert_names("ExSub", &["p3", "dave"]);
        let rows = run(
            "exists a. ExSub(p, a) & (forall b. (ExSub(p, b) -> a = b))",
            &i,
        );
        assert_eq!(rows.rows, vec![vec![Value::c("p1")]]);
    }

    /// Regression: **nested** seeded anti-joins with null seed values. The
    /// outer node substitutes `x = ⊥1` and the inner one `b = ⊥2` into the
    /// same scan; the reserved columns must stay distinct (`$seed:x` vs
    /// `$seed:b`) — a shared name would force the two positions equal and
    /// silently empty the refuting set.
    #[test]
    fn nested_null_seeds_do_not_collide() {
        let mut i = Instance::new();
        i.insert(RelSym::new("NnR"), Tuple::new(vec![Value::null(1)]));
        i.insert(RelSym::new("NnS"), Tuple::new(vec![Value::null(2)]));
        i.insert_names("NnV", &["v1"]);
        // The refuting tuple pairs ⊥2 with ⊥1 — exactly the shape a merged
        // seed column can never match (⊥1 ≠ ⊥2 atomically).
        i.insert(
            RelSym::new("NnW"),
            Tuple::new(vec![Value::c("v1"), Value::null(2), Value::null(1)]),
        );
        let src = "NnR(x) & !(exists b. NnS(b) & !(exists d. NnV(d) & !NnW(d, b, x)))";
        let plan = lower_formula(&parse_formula(src).unwrap()).unwrap();
        let explained = plan.explain();
        assert_eq!(
            explained.matches("seeded-antijoin").count(),
            2,
            "the shape nests two seeded nodes:\n{explained}"
        );
        let rows = run(src, &i);
        // Oracle: W(v1, ⊥2, ⊥1) holds, so d = v1 fails ¬W, ∃d fails, the
        // b = ⊥2 witness satisfies the negated branch — ⊥1 is NOT an answer.
        assert!(rows.rows.is_empty(), "got {:?}", rows.rows);
    }

    /// Parallel execution is bit-identical to the single-threaded path:
    /// same rows, same order, across the chunked join executors (the
    /// instance is large enough to cross `PAR_MIN_ROWS`) and the
    /// keys-first seeded anti-join.
    #[test]
    fn parallel_exec_bit_identical_across_widths() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut i = Instance::new();
        for k in 0..400 {
            let p = format!("p{k}");
            i.insert_names("PwSub", &[&p, &format!("a{}", k % 7)]);
            if k % 3 == 0 {
                i.insert_names("PwSub", &[&p, &format!("b{}", k % 5)]);
            }
            i.insert_names("PwV", &[&p]);
        }
        let src = "PwV(p) & (exists a. PwSub(p, a) & (forall b. (PwSub(p, b) -> a = b)))";
        rayon::set_threads(1);
        let reference = run(src, &i);
        assert!(!reference.rows.is_empty());
        for width in [2usize, 4, 8] {
            rayon::set_threads(width);
            let rows = run(src, &i);
            assert_eq!(rows.vars, reference.vars, "width {width}");
            assert_eq!(rows.rows, reference.rows, "width {width}");
        }
        rayon::set_threads(0);
    }

    #[test]
    fn alias_extends_rows() {
        let rows = run("ExV(x) & y = x", &graph());
        let mut expected = vec![Var::new("x"), Var::new("y")];
        expected.sort();
        assert_eq!(rows.vars, expected);
        assert_eq!(rows.rows.len(), 2);
        for r in &rows.rows {
            assert_eq!(r[0], r[1]);
        }
    }
}
