//! Consumer-facing evaluation: compiled queries, compile-or-fallback
//! wrappers, and the chase body-evaluation plug-in.

use crate::exec::{exec, exec_nonempty};
use crate::lower::{lower_formula, LowerError};
use crate::plan::Plan;
use crate::store::QueryStore;
use dx_chase::{BodyEval, Std};
use dx_logic::{Formula, Query};
use dx_relation::{Instance, InstanceIndex, Relation, Tuple, Value, Var};
use std::collections::BTreeSet;

/// A query compiled to a plan: the head variables plus the safe-range plan
/// of the body. Reusable across instances — compile once, execute many.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    head: Vec<Var>,
    plan: Plan,
    /// Constants of the *source formula* — not recovered from the plan,
    /// which may drop them (trivial equalities fold away, empty disjuncts
    /// are pruned). They seed the candidate palette of the conditional
    /// certain/possible-answer extraction.
    consts: BTreeSet<dx_relation::ConstId>,
}

impl CompiledQuery {
    /// Compile a formula with an explicit head. Fails when the formula is
    /// outside the safe-range fragment or a head variable is not
    /// range-restricted by it (then answers depend on the quantifier
    /// domain and only the tree walker is faithful).
    pub fn compile_formula(formula: &Formula, head: &[Var]) -> Result<Self, LowerError> {
        let plan = lower_formula(formula)?;
        let produced: BTreeSet<Var> = plan.vars().into_iter().collect();
        for h in head {
            if !produced.contains(h) {
                return Err(LowerError::NotSafeRange(
                    crate::lower::LowerReason::UnrestrictedHeadVar,
                    format!("head variable {h} is not range-restricted by the body"),
                ));
            }
        }
        Ok(CompiledQuery {
            head: head.to_vec(),
            plan,
            consts: formula.constants(),
        })
    }

    /// Compile a [`Query`].
    pub fn compile(query: &Query) -> Result<Self, LowerError> {
        Self::compile_formula(&query.formula, &query.head)
    }

    /// The compiled plan (for `EXPLAIN`-style inspection).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The head variables.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// Evaluate over any indexed store, nulls as atomic values (naive
    /// semantics); answer tuples follow the head order.
    pub fn answers_store(&self, store: &dyn QueryStore) -> Relation {
        let rows = exec(&self.plan, store);
        let cols: Vec<usize> = self
            .head
            .iter()
            .map(|v| rows.col(*v).expect("head variable is produced"))
            .collect();
        Relation::from_tuples(
            self.head.len(),
            rows.rows
                .iter()
                .map(|r| Tuple::new(cols.iter().map(|&c| r[c]).collect::<Vec<_>>())),
        )
    }

    /// Evaluate over an instance (builds a snapshot index).
    pub fn answers(&self, instance: &Instance) -> Relation {
        self.answers_store(&InstanceIndex::build(instance))
    }

    /// Naive certain answers `Q_naive(T)`: evaluate, then keep only
    /// null-free tuples (the Imieliński–Lipski null-discard operator; exact
    /// for positive queries by Proposition 3).
    pub fn naive_certain_answers(&self, instance: &Instance) -> Relation {
        let all = self.answers(instance);
        Relation::from_tuples(
            self.head.len(),
            all.iter().filter(|t| t.is_ground()).cloned(),
        )
    }

    /// Does `tuple` belong to the answers over `store`? Executes the plan
    /// with the head variables pre-bound (single-row [`Plan::Bind`] inputs),
    /// so the greedy join order starts from the bound values and probes.
    pub fn holds_on_store(&self, store: &dyn QueryStore, tuple: &Tuple) -> bool {
        assert_eq!(tuple.arity(), self.head.len(), "answer-tuple arity");
        let mut inputs: Vec<Plan> = self
            .head
            .iter()
            .zip(tuple.iter())
            .map(|(v, val)| Plan::Bind {
                var: *v,
                value: val,
            })
            .collect();
        inputs.push(self.plan.clone());
        exec_nonempty(&Plan::Join { inputs }, store)
    }

    /// [`CompiledQuery::holds_on_store`] over an instance.
    pub fn holds_on(&self, instance: &Instance, tuple: &Tuple) -> bool {
        self.holds_on_store(&InstanceIndex::build(instance), tuple)
    }

    /// Exact CWA certain answers `□Q(T)` over a conditional instance via
    /// the conditional execution mode ([`crate::cexec`]): evaluate the plan
    /// with guards, then keep the ground rows whose support disjunction is
    /// valid. The plan-backed counterpart of the `dx-ctables` route.
    pub fn certain_answers_conditional(&self, cinst: &dx_ctables::CInstance) -> Relation {
        let result = crate::cexec::exec_conditional_table(&self.plan, &self.head, cinst);
        let mut extra = cinst.constants();
        extra.extend(self.consts.iter().copied());
        dx_ctables::certain_answers_from(&result, &extra, &cinst.global)
    }

    /// Exact possible answers `◇Q(T)` over a conditional instance (the dual
    /// of [`CompiledQuery::certain_answers_conditional`]). The candidate
    /// palette uses the formula's constants (the plan alone may have
    /// folded some away — validity checking tolerates a smaller palette,
    /// candidate *generation* does not).
    pub fn possible_answers_conditional(&self, cinst: &dx_ctables::CInstance) -> Relation {
        let result = crate::cexec::exec_conditional_table(&self.plan, &self.head, cinst);
        let mut extra = cinst.constants();
        extra.extend(self.consts.iter().copied());
        dx_ctables::possible_answers_from(&result, &extra, &cinst.global)
    }
}

/// Compile-or-fallback evaluation of a [`Query`]: the compiled plan when
/// the formula is safe-range, the tree-walking active-domain evaluator
/// otherwise — with identical results either way (safe-range answers are
/// domain independent; differentially tested).
///
/// This is the type the `dx-core` pipelines hold per query: build once,
/// evaluate against many instances (e.g. every candidate of a `Rep_A`
/// refutation search).
#[derive(Clone, Debug)]
pub struct QueryEval {
    query: Query,
    compiled: Option<CompiledQuery>,
    error: Option<LowerError>,
}

impl QueryEval {
    /// Wrap a query, compiling when possible.
    pub fn new(query: &Query) -> Self {
        let (compiled, error) = match CompiledQuery::compile(query) {
            Ok(c) => (Some(c), None),
            Err(e) => (None, Some(e)),
        };
        QueryEval {
            query: query.clone(),
            compiled,
            error,
        }
    }

    /// Did the query compile to a plan?
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Why the query fell back to the tree walker (`None` when compiled) —
    /// the observable rejection [`crate::PlanCatalog`] aggregates stats
    /// over.
    pub fn lower_error(&self) -> Option<&LowerError> {
        self.error.as_ref()
    }

    /// The compiled form, when the formula is safe-range (conditional-mode
    /// consumers route through it; `None` means callers must use an
    /// instance-level fallback).
    pub fn compiled(&self) -> Option<&CompiledQuery> {
        self.compiled.as_ref()
    }

    /// The underlying query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Evaluate (naive semantics).
    pub fn answers(&self, instance: &Instance) -> Relation {
        match &self.compiled {
            Some(c) => c.answers(instance),
            None => self.query.answers(instance),
        }
    }

    /// Naive certain answers (null-discarded evaluation).
    pub fn naive_certain_answers(&self, instance: &Instance) -> Relation {
        match &self.compiled {
            Some(c) => c.naive_certain_answers(instance),
            None => self.query.naive_certain_answers(instance),
        }
    }

    /// Does `tuple` belong to the answers on `instance`?
    pub fn holds_on(&self, instance: &Instance, tuple: &Tuple) -> bool {
        match &self.compiled {
            Some(c) => c.holds_on(instance, tuple),
            None => self.query.holds_on(instance, tuple),
        }
    }

    /// Does `tuple` belong to the answers over an already-indexed store?
    /// Compiled queries probe `store` directly — **no index build per
    /// call**, which is what makes the solver's incrementally maintained
    /// candidate store pay off; non-safe-range queries tree-walk
    /// `fallback` (the store's materialized instance view), bit-identical
    /// to [`QueryEval::holds_on`] either way.
    pub fn holds_on_indexed(
        &self,
        store: &dyn QueryStore,
        fallback: &Instance,
        tuple: &Tuple,
    ) -> bool {
        match &self.compiled {
            Some(c) => c.holds_on_store(store, tuple),
            None => self.query.holds_on(fallback, tuple),
        }
    }

    /// Evaluate a Boolean query.
    pub fn holds_boolean(&self, instance: &Instance) -> bool {
        self.holds_on(instance, &Tuple::new(Vec::<Value>::new()))
    }
}

/// The compiled STD-body evaluator: implements [`dx_chase::BodyEval`] by
/// drawing each body's plan from the shared [`crate::PlanCatalog`] (one
/// lowering per distinct body per process, not one per `witnesses` call)
/// and executing it index-backed, falling back to the reference tree
/// walker for non-safe-range bodies. Reproduces the reference witness
/// order exactly (sorted rows in [`Std::body_vars`] order), so canonical
/// solutions are identical across engines.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlannedBodyEval;

impl BodyEval for PlannedBodyEval {
    fn name(&self) -> &'static str {
        "planned"
    }

    fn witnesses(&self, std: &Std, source: &Instance) -> Vec<Vec<Value>> {
        let vars = std.body_vars();
        match crate::PlanCatalog::shared().formula(&std.body, &vars) {
            Ok(cq) => cq
                .answers(source)
                .iter()
                .map(|t| t.values().to_vec())
                .collect(),
            Err(_) => dx_chase::canonical::std_witnesses(std, source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::{canonical_solution, canonical_solution_via, Mapping};
    use dx_relation::RelSym;

    fn inst() -> Instance {
        let mut i = Instance::new();
        i.insert_names("EvR", &["a", "b"]);
        i.insert_names("EvR", &["a", "c"]);
        i.insert(
            RelSym::new("EvR"),
            Tuple::new(vec![Value::c("d"), Value::null(0)]),
        );
        i
    }

    #[test]
    fn compiled_matches_oracle_on_query() {
        let q = Query::parse(&["x"], "exists y. EvR(x, y)").unwrap();
        let ev = QueryEval::new(&q);
        assert!(ev.is_compiled());
        assert_eq!(ev.answers(&inst()), q.answers(&inst()));
        assert_eq!(
            ev.naive_certain_answers(&inst()),
            q.naive_certain_answers(&inst())
        );
    }

    #[test]
    fn holds_on_with_nulls_in_tuple() {
        let q = Query::parse(&["x", "y"], "EvR(x, y)").unwrap();
        let ev = QueryEval::new(&q);
        let t = Tuple::new(vec![Value::c("d"), Value::null(0)]);
        assert!(ev.holds_on(&inst(), &t));
        assert!(!ev.holds_on(&inst(), &Tuple::from_names(&["b", "a"])));
    }

    #[test]
    fn possible_answers_palette_survives_constant_folding() {
        // 'b' = 'b' folds to Unit during lowering and vanishes from the
        // plan, but the formula constant must still seed the candidate
        // palette: v(⊥1) = 'b' makes ('b') a possible answer.
        let mut i = Instance::new();
        i.insert(RelSym::new("PcR"), Tuple::new(vec![Value::null(1)]));
        let ct = dx_ctables::CInstance::from_naive(&i);
        let q = Query::parse(&["x"], "PcR(x) & 'b' = 'b'").unwrap();
        let cq = CompiledQuery::compile(&q).unwrap();
        let possible = cq.possible_answers_conditional(&ct);
        assert!(possible.contains(&Tuple::from_names(&["b"])));
        assert!(cq.certain_answers_conditional(&ct).is_empty());
    }

    /// The broadened safe-range fragment (mixed-schema disjunction filters,
    /// the implication shape) evaluates bit-identically to the tree-walking
    /// oracle, nulls included.
    #[test]
    fn broadened_fragment_matches_tree_walker() {
        let mut i = Instance::new();
        i.insert_names("BfR", &["a", "b"]);
        i.insert_names("BfR", &["b", "b"]);
        i.insert(
            RelSym::new("BfR"),
            Tuple::new(vec![Value::c("c"), Value::null(4)]),
        );
        i.insert_names("BfS", &["a"]);
        i.insert(RelSym::new("BfS"), Tuple::new(vec![Value::null(4)]));
        i.insert_names("BfT", &["b"]);
        i.insert_names("BfSub", &["p1", "alice"]);
        i.insert_names("BfSub", &["p1", "bob"]);
        i.insert_names("BfSub", &["p2", "carol"]);
        for (heads, src) in [
            (vec!["x", "y"], "BfR(x, y) & (BfS(x) | BfT(y))"),
            (vec!["x", "y"], "BfR(x, y) & (x = y | BfS(x))"),
            (vec!["x", "y"], "BfR(x, y) & (!BfS(x) | BfT(y))"),
            (
                vec![],
                "forall p a1 a2. (BfSub(p, a1) & BfSub(p, a2) -> a1 = a2)",
            ),
        ] {
            let heads: Vec<&str> = heads;
            let q = Query::parse(&heads, src).unwrap();
            let ev = QueryEval::new(&q);
            assert!(ev.is_compiled(), "{src} should now lower");
            assert_eq!(ev.answers(&i), q.answers(&i), "{src}");
            assert_eq!(
                ev.naive_certain_answers(&i),
                q.naive_certain_answers(&i),
                "{src}"
            );
        }
    }

    #[test]
    fn unsafe_query_falls_back() {
        // x = x is not range-restricted: tree walker handles it.
        let q = Query::parse(&["x"], "x = x").unwrap();
        let ev = QueryEval::new(&q);
        assert!(!ev.is_compiled());
        assert_eq!(ev.answers(&inst()), q.answers(&inst()));
    }

    #[test]
    fn head_var_must_be_restricted() {
        let f = dx_logic::parse_formula("EvR(x, x)").unwrap();
        assert!(CompiledQuery::compile_formula(&f, &[Var::new("x")]).is_ok());
        assert!(CompiledQuery::compile_formula(&f, &[Var::new("z")]).is_err());
    }

    #[test]
    fn planned_body_eval_reproduces_canonical_solution() {
        let m = Mapping::parse(
            "EvSub(x:cl, z:op) <- EvP(x, y); \
             EvRev(x:cl, r:cl) <- EvP(x, y) & !exists a. EvA(x, a)",
        )
        .unwrap();
        let mut s = Instance::new();
        s.insert_names("EvP", &["p1", "t1"]);
        s.insert_names("EvP", &["p2", "t2"]);
        s.insert_names("EvA", &["p1", "al"]);
        let naive = canonical_solution(&m, &s);
        let planned = canonical_solution_via(&PlannedBodyEval, &m, &s);
        assert_eq!(naive.instance, planned.instance);
        assert_eq!(naive.null_origin, planned.null_origin);
        assert_eq!(naive.witnesses, planned.witnesses);
    }
}
