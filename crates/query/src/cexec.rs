//! Conditional execution: the same plans over Imieliński–Lipski
//! conditional tables.
//!
//! Rows carry a [`Condition`] recording exactly when they are present; the
//! representation invariant mirrors [`dx_ctables::RaExpr::eval_conditional`]:
//! for every valuation `v` satisfying the instance's global condition,
//! applying `v` to the conditional result yields the ground execution of
//! the plan over `v(T)`. Join/unification steps between a null and another
//! value do **not** prune — they emit the pair guarded by the equality
//! condition (keeping the ground value as the row's representative, which
//! is sound because any satisfying valuation makes the two equal). Rows
//! whose condition folds to `False` are dropped.
//!
//! This is the execution mode behind the `dx-core::ctable_bridge` CWA
//! certain-answer pipeline — cross-validated against the `RaExpr`
//! conditional evaluator and brute-force `Rep` enumeration in
//! `tests/query_differential.rs`.
//!
//! Work metrics (`query.cexec.*`, see `dx-obs`): `rows_scanned` counts
//! stored conditional tuples examined by scans, `rows_joined` counts
//! conditional join output rows, `seed_partitions`/`seed_reruns` mirror
//! the ground executor's seeded anti-join counters, and `rows_emitted`
//! counts root-level result rows.

use crate::plan::{Plan, PlanPred, Ref};
use dx_ctables::{CInstance, CTable, CTuple, Condition};
use dx_logic::Term;
use dx_relation::{Tuple, Value, Var};
use std::collections::BTreeSet;

/// A conditional binding table.
#[derive(Clone, Debug, Default)]
pub struct CRows {
    /// Sorted output variables.
    pub vars: Vec<Var>,
    /// Binding rows with their presence conditions.
    pub rows: Vec<(Vec<Value>, Condition)>,
}

impl CRows {
    fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    fn push(&mut self, row: Vec<Value>, cond: Condition) {
        if cond != Condition::False {
            self.rows.push((row, cond));
        }
    }
}

/// Execute a plan over a conditional instance.
pub fn exec_conditional(plan: &Plan, cinst: &CInstance) -> CRows {
    let _span = dx_obs::span!("query.cexec");
    let rows = cexec_node(plan, cinst);
    dx_obs::count!("query.cexec.rows_emitted", rows.rows.len());
    dx_obs::trace_instant!("query.cexec.root_done", "rows" = rows.rows.len());
    rows
}

fn cexec_node(plan: &Plan, cinst: &CInstance) -> CRows {
    let rows = cexec_node_inner(plan, cinst);
    crate::explain::trace::note_rows(plan, rows.rows.len());
    rows
}

fn cexec_node_inner(plan: &Plan, cinst: &CInstance) -> CRows {
    match plan {
        Plan::Unit => CRows {
            vars: Vec::new(),
            rows: vec![(Vec::new(), Condition::True)],
        },
        Plan::Empty { vars } => {
            let mut vs = vars.clone();
            vs.sort();
            CRows {
                vars: vs,
                rows: Vec::new(),
            }
        }
        Plan::Bind { var, value } => CRows {
            vars: vec![*var],
            rows: vec![(vec![*value], Condition::True)],
        },
        Plan::Scan { rel, args } => {
            let schema: Vec<Var> = plan.vars();
            let mut out = CRows {
                vars: schema.clone(),
                rows: Vec::new(),
            };
            if let Some(table) = cinst.table(*rel) {
                let mut scanned = 0usize;
                for ct in table.rows() {
                    scanned += 1;
                    if let Some((row, cond)) = unify_conditional(args, &ct.tuple, &schema) {
                        out.push(row, Condition::and([ct.cond.clone(), cond]));
                    }
                }
                dx_obs::count!("query.cexec.rows_scanned", scanned);
            }
            out
        }
        Plan::Join { inputs } => {
            let mut parts: Vec<CRows> = inputs.iter().map(|p| cexec_node(p, cinst)).collect();
            // Cheapest-first fold keeps intermediates small.
            parts.sort_by_key(|r| r.rows.len());
            let mut acc = match parts.first() {
                None => return cexec_node(&Plan::Unit, cinst),
                Some(_) => parts.remove(0),
            };
            for part in parts {
                acc = cjoin(&acc, &part);
            }
            acc
        }
        Plan::SemiJoin { left, right } => filter_join_conditional(left, right, cinst, true),
        Plan::AntiJoin { left, right } => filter_join_conditional(left, right, cinst, false),
        Plan::SeededAntiJoin { left, right, seed } => {
            seeded_anti_conditional(plan, left, right, seed, cinst)
        }
        Plan::Select { input, pred } => {
            let rows = cexec_node(input, cinst);
            let mut out = CRows {
                vars: rows.vars.clone(),
                rows: Vec::new(),
            };
            for (row, cond) in rows.rows {
                let pc = pred_condition(pred, &rows.vars, &row);
                out.push(row, Condition::and([cond, pc]));
            }
            out
        }
        Plan::Project { input, vars } => {
            let rows = cexec_node(input, cinst);
            let mut out_vars = vars.clone();
            out_vars.sort();
            let cols: Vec<usize> = out_vars
                .iter()
                .map(|v| rows.col(*v).expect("projected variable is produced"))
                .collect();
            CRows {
                vars: out_vars,
                rows: rows
                    .rows
                    .into_iter()
                    .map(|(row, cond)| (cols.iter().map(|&c| row[c]).collect(), cond))
                    .collect(),
            }
        }
        Plan::Union { inputs } => {
            let mut out: Option<CRows> = None;
            for p in inputs {
                let rows = cexec_node(p, cinst);
                match &mut out {
                    None => out = Some(rows),
                    Some(acc) => {
                        debug_assert_eq!(acc.vars, rows.vars, "union schema mismatch");
                        acc.rows.extend(rows.rows);
                    }
                }
            }
            out.unwrap_or_default()
        }
        Plan::Alias { input, src, dst } => {
            let rows = cexec_node(input, cinst);
            let src_col = rows.col(*src).expect("alias source is produced");
            let mut vars = rows.vars.clone();
            vars.push(*dst);
            vars.sort();
            let order: Vec<usize> = vars
                .iter()
                .map(|v| {
                    if v == dst {
                        usize::MAX
                    } else {
                        rows.col(*v).expect("existing column")
                    }
                })
                .collect();
            CRows {
                vars,
                rows: rows
                    .rows
                    .into_iter()
                    .map(|(row, cond)| {
                        (
                            order
                                .iter()
                                .map(|&c| {
                                    if c == usize::MAX {
                                        row[src_col]
                                    } else {
                                        row[c]
                                    }
                                })
                                .collect(),
                            cond,
                        )
                    })
                    .collect(),
            }
        }
    }
}

/// Execute a plan and package the result as a [`CTable`] whose columns
/// follow `outcols` (variables may repeat, mirroring positional RA
/// projection).
pub fn exec_conditional_table(plan: &Plan, outcols: &[Var], cinst: &CInstance) -> CTable {
    let rows = exec_conditional(plan, cinst);
    let cols: Vec<usize> = outcols
        .iter()
        .map(|v| rows.col(*v).expect("output variable is produced"))
        .collect();
    let mut out = CTable::new(outcols.len());
    for (row, cond) in rows.rows {
        out.push(CTuple::when(
            Tuple::new(cols.iter().map(|&c| row[c]).collect::<Vec<_>>()),
            cond,
        ));
    }
    out
}

/// Unify a stored tuple against an atom template, conditionally: mismatches
/// between ground values prune, anything involving a null becomes an
/// equality condition. The bound representative prefers ground values.
fn unify_conditional(
    args: &[Term],
    tuple: &Tuple,
    schema: &[Var],
) -> Option<(Vec<Value>, Condition)> {
    let mut bound: Vec<(Var, Value)> = Vec::new();
    let mut conds: Vec<Condition> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        let v = tuple.get(i);
        match arg {
            Term::Const(c) => {
                let cv = Value::Const(*c);
                if v.is_const() {
                    if v != cv {
                        return None;
                    }
                } else {
                    conds.push(Condition::eq(v, cv));
                }
            }
            Term::Var(x) => match bound.iter_mut().find(|(b, _)| *b == *x) {
                Some((_, bv)) => {
                    if bv.is_const() && v.is_const() {
                        if *bv != v {
                            return None;
                        }
                    } else if *bv != v {
                        conds.push(Condition::eq(*bv, v));
                        if v.is_const() {
                            *bv = v;
                        }
                    }
                }
                None => bound.push((*x, v)),
            },
            Term::App(_, _) => unreachable!("plans are function-free"),
        }
    }
    let row = schema
        .iter()
        .map(|s| {
            bound
                .iter()
                .find(|(b, _)| b == s)
                .map(|(_, v)| *v)
                .expect("schema variable bound")
        })
        .collect();
    Some((row, Condition::and(conds)))
}

/// Conditional natural join: pairs whose shared positions are ground and
/// equal combine with the conjoined condition; pairs where a shared
/// position involves a null combine guarded by the equality; ground-vs-
/// ground mismatches prune.
///
/// Execution is hash-partitioned on the join key: right rows whose shared
/// positions are **all ground** go into a hash table and are found by one
/// probe per ground-keyed left row, while rows carrying a null in a key
/// position — which must be paired against everything, since any pairing
/// is only *conditionally* equal — stay in a fallback list. A left row
/// with a null in its key likewise scans the whole right side. Candidate
/// lists are merged in right-row order, so emitted rows appear exactly as
/// the nested loop produced them (downstream condition extraction is
/// order-sensitive only in its intermediate representation, but keeping
/// the order makes the fast path bit-identical, not just set-identical).
fn cjoin(left: &CRows, right: &CRows) -> CRows {
    let shared: Vec<Var> = left
        .vars
        .iter()
        .copied()
        .filter(|v| right.col(*v).is_some())
        .collect();
    let mut schema: BTreeSet<Var> = left.vars.iter().copied().collect();
    schema.extend(right.vars.iter().copied());
    let schema: Vec<Var> = schema.into_iter().collect();
    let l_shared: Vec<usize> = shared.iter().map(|v| left.col(*v).unwrap()).collect();
    let r_shared: Vec<usize> = shared.iter().map(|v| right.col(*v).unwrap()).collect();
    let mut out = CRows {
        vars: schema.clone(),
        rows: Vec::new(),
    };

    // Partition the right side: ground join keys are hash-probeable, rows
    // with a null in a key position must see every left row.
    let mut ground_keyed: dx_relation::FastMap<Vec<Value>, Vec<usize>> =
        dx_relation::FastMap::default();
    let mut null_keyed: Vec<usize> = Vec::new();
    for (ri, (rrow, _)) in right.rows.iter().enumerate() {
        let key: Vec<Value> = r_shared.iter().map(|&c| rrow[c]).collect();
        if key.iter().all(|v| v.is_const()) {
            ground_keyed.entry(key).or_default().push(ri);
        } else {
            null_keyed.push(ri);
        }
    }

    // One pairing of a left row with a right row — exactly the old nested
    // loop's inner body.
    let mut emit = |lrow: &Vec<Value>, lcond: &Condition, ri: usize| {
        let (rrow, rcond) = &right.rows[ri];
        let mut conds = vec![lcond.clone(), rcond.clone()];
        // Shared positions: ground/ground mismatches prune; anything
        // with a null is guarded.
        let mut merged: Vec<(Var, Value)> = Vec::new();
        for (k, v) in shared.iter().enumerate() {
            let (a, b) = (lrow[l_shared[k]], rrow[r_shared[k]]);
            if a.is_const() && b.is_const() {
                if a != b {
                    return;
                }
                merged.push((*v, a));
            } else {
                if a != b {
                    conds.push(Condition::eq(a, b));
                }
                merged.push((*v, if b.is_const() { b } else { a }));
            }
        }
        let row: Vec<Value> = schema
            .iter()
            .map(|s| {
                if let Some((_, v)) = merged.iter().find(|(m, _)| m == s) {
                    *v
                } else if let Some(c) = left.col(*s) {
                    lrow[c]
                } else {
                    rrow[right.col(*s).expect("var from one side")]
                }
            })
            .collect();
        out.push(row, Condition::and(conds));
    };

    for (lrow, lcond) in &left.rows {
        let key: Vec<Value> = l_shared.iter().map(|&c| lrow[c]).collect();
        if key.iter().all(|v| v.is_const()) {
            // Hash fast path: exact-key ground partners plus every
            // null-keyed row, merged back into right-row order.
            let ground = ground_keyed.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            let (mut gi, mut ni) = (0usize, 0usize);
            while gi < ground.len() || ni < null_keyed.len() {
                let next = match (ground.get(gi), null_keyed.get(ni)) {
                    (Some(&g), Some(&n)) if g < n => {
                        gi += 1;
                        g
                    }
                    (Some(_), Some(&n)) => {
                        ni += 1;
                        n
                    }
                    (Some(&g), None) => {
                        gi += 1;
                        g
                    }
                    (None, Some(&n)) => {
                        ni += 1;
                        n
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                emit(lrow, lcond, next);
            }
        } else {
            // A null in the left key: every right row is a conditional
            // partner.
            for ri in 0..right.rows.len() {
                emit(lrow, lcond, ri);
            }
        }
    }
    dx_obs::count!("query.cexec.rows_joined", out.rows.len());
    out
}

/// Conditional semi-join (`keep = true`) / anti-join (`keep = false`).
fn filter_join_conditional(left: &Plan, right: &Plan, cinst: &CInstance, keep: bool) -> CRows {
    let l = cexec_node(left, cinst);
    let r = cexec_node(right, cinst);
    let shared: Vec<Var> = l
        .vars
        .iter()
        .copied()
        .filter(|v| r.col(*v).is_some())
        .collect();
    let l_cols: Vec<usize> = shared.iter().map(|v| l.col(*v).unwrap()).collect();
    let r_cols: Vec<usize> = shared.iter().map(|v| r.col(*v).unwrap()).collect();
    let mut out = CRows {
        vars: l.vars.clone(),
        rows: Vec::new(),
    };
    for (lrow, lcond) in &l.rows {
        // The condition under which SOME right row matches this left row.
        let support = Condition::or(r.rows.iter().map(|(rrow, rcond)| {
            Condition::and(
                std::iter::once(rcond.clone()).chain(
                    shared
                        .iter()
                        .enumerate()
                        .map(|(k, _)| Condition::eq(lrow[l_cols[k]], rrow[r_cols[k]])),
                ),
            )
        }));
        let cond = if keep {
            Condition::and([lcond.clone(), support])
        } else {
            Condition::and([lcond.clone(), support.negate()])
        };
        out.push(lrow.clone(), cond);
    }
    out
}

/// Conditional seeded anti-join. The left rows are hash-partitioned on the
/// seed key (a null in the key is an atomic partition value: identical
/// nulls share the branch execution, and the substituted plan's guards
/// reference that null, so any valuation resolves them consistently); the
/// correlated branch runs once per distinct key with the seeds substituted
/// ([`Plan::bind_seed`] — predicates take the value directly, scans of a
/// null seed gain an equality-guarded fresh column). Each left row then
/// receives the standard Imieliński–Lipski blocker condition: the negated
/// disjunction, over the branch's rows, of "row present ∧ shared variables
/// equal".
fn seeded_anti_conditional(
    node: &Plan,
    left: &Plan,
    right: &Plan,
    seed: &[Var],
    cinst: &CInstance,
) -> CRows {
    let l = cexec_node(left, cinst);
    let seed_cols: Vec<usize> = seed
        .iter()
        .map(|v| l.col(*v).expect("seed variable is bound by the left side"))
        .collect();
    // The shared variables are key independent: `bind_seed` removes the
    // same seed variables from the branch schema for every key, and the
    // reserved `$seed:` columns a null key adds never occur in `l.vars`.
    // Only the branch-side column positions can shift per key.
    let shared: Vec<Var> = {
        let rv: BTreeSet<Var> = right.vars().into_iter().collect();
        l.vars
            .iter()
            .copied()
            .filter(|v| rv.contains(v) && !seed.contains(v))
            .collect()
    };
    let l_cols: Vec<usize> = shared.iter().map(|v| l.col(*v).unwrap()).collect();
    let run_branch = |key: &[Value]| -> (CRows, Vec<usize>) {
        let mut branch = right.clone();
        for (v, val) in seed.iter().zip(key) {
            branch.bind_seed(*v, *val);
        }
        let rows = cexec_node(&branch, cinst);
        let r_cols: Vec<usize> = shared
            .iter()
            .map(|v| rows.col(*v).expect("shared variable survives seeding"))
            .collect();
        (rows, r_cols)
    };
    let mut branches: dx_relation::FastMap<Vec<Value>, (CRows, Vec<usize>)> =
        dx_relation::FastMap::default();
    let mut reruns = 0u64;
    if rayon::current_num_threads() > 1 {
        // Parallel form: distinct keys up front (first-occurrence order),
        // every correlated branch on the pool, then the per-row blocker
        // conditions sequentially — identical output and rerun count to
        // the lazy form below.
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut seen: dx_relation::FastSet<Vec<Value>> = dx_relation::FastSet::default();
        for (lrow, _) in &l.rows {
            let key: Vec<Value> = seed_cols.iter().map(|&c| lrow[c]).collect();
            if seen.insert(key.clone()) {
                keys.push(key);
            }
        }
        let results: Vec<(CRows, Vec<usize>)> =
            rayon::par_map(keys.len(), |i| run_branch(&keys[i]));
        reruns = keys.len() as u64;
        branches = keys.into_iter().zip(results).collect();
    }
    let mut out = CRows {
        vars: l.vars.clone(),
        rows: Vec::new(),
    };
    for (lrow, lcond) in &l.rows {
        let key: Vec<Value> = seed_cols.iter().map(|&c| lrow[c]).collect();
        let (r, r_cols) = branches.entry(key.clone()).or_insert_with(|| {
            reruns += 1;
            run_branch(&key)
        });
        let support = Condition::or(r.rows.iter().map(|(rrow, rcond)| {
            Condition::and(
                std::iter::once(rcond.clone()).chain(
                    shared
                        .iter()
                        .enumerate()
                        .map(|(k, _)| Condition::eq(lrow[l_cols[k]], rrow[r_cols[k]])),
                ),
            )
        }));
        out.push(
            lrow.clone(),
            Condition::and([lcond.clone(), support.negate()]),
        );
    }
    dx_obs::count!("query.cexec.seed_partitions", branches.len());
    dx_obs::count!("query.cexec.seed_reruns", reruns);
    crate::explain::trace::note_seed(node, branches.len() as u64, reruns);
    out
}

fn pred_condition(p: &PlanPred, vars: &[Var], row: &[Value]) -> Condition {
    let resolve = |r: &Ref| -> Value {
        match r {
            Ref::Val(v) => *v,
            Ref::Var(v) => {
                let i = vars.iter().position(|w| w == v).expect("bound pred var");
                row[i]
            }
        }
    };
    match p {
        PlanPred::True => Condition::True,
        PlanPred::Eq(a, b) => Condition::eq(resolve(a), resolve(b)),
        PlanPred::And(ps) => Condition::and(ps.iter().map(|p| pred_condition(p, vars, row))),
        PlanPred::Or(ps) => Condition::or(ps.iter().map(|p| pred_condition(p, vars, row))),
        PlanPred::Not(p) => pred_condition(p, vars, row).negate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_formula;
    use dx_logic::parse_formula;
    use dx_relation::{Instance, RelSym};

    /// v(exec_conditional(T)) must equal the ground execution over v(T),
    /// for every palette valuation — the representation theorem on the plan
    /// executor.
    #[test]
    fn conditional_commutes_with_valuations() {
        let r = RelSym::new("CxR");
        let s = RelSym::new("CxS");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        inst.insert(r, Tuple::new(vec![Value::null(1), Value::null(2)]));
        inst.insert(s, Tuple::new(vec![Value::c("a")]));
        let ct = CInstance::from_naive(&inst);
        let f = parse_formula("exists y. CxR(x, y) & !CxS(x)").unwrap();
        let plan = lower_formula(&f).unwrap();
        let outcols = [dx_relation::Var::new("x")];
        let cond_result = exec_conditional_table(&plan, &outcols, &ct);
        for (ground, v) in ct.rep_members(&std::collections::BTreeSet::new()) {
            let idx = dx_relation::InstanceIndex::build(&ground);
            let direct = crate::exec::exec(&plan, &idx);
            let direct_set: BTreeSet<Vec<Value>> = direct.rows.into_iter().collect();
            let via: BTreeSet<Vec<Value>> = cond_result
                .apply(&v)
                .into_iter()
                .map(|t| t.values().to_vec())
                .collect();
            assert_eq!(via, direct_set, "valuation {v:?}");
        }
    }

    /// The hash fast path of [`cjoin`] (ground join keys probed, null keys
    /// nested-loop) is semantics preserving: on a join whose key columns
    /// mix ground values and nulls on both sides, applying any palette
    /// valuation to the conditional result equals the ground execution
    /// over the valued instance.
    #[test]
    fn cjoin_hash_path_commutes_with_valuations() {
        let r = RelSym::new("CjR");
        let s = RelSym::new("CjS");
        let mut inst = Instance::new();
        for (a, b) in [("a", "k"), ("b", "l"), ("c", "k")] {
            inst.insert(r, Tuple::from_names(&[a, b]));
        }
        inst.insert(r, Tuple::new(vec![Value::c("d"), Value::null(1)]));
        inst.insert(s, Tuple::from_names(&["k", "out1"]));
        inst.insert(s, Tuple::from_names(&["l", "out2"]));
        inst.insert(s, Tuple::new(vec![Value::null(1), Value::c("out3")]));
        inst.insert(s, Tuple::new(vec![Value::null(2), Value::c("out4")]));
        let ct = CInstance::from_naive(&inst);
        let f = parse_formula("CjR(x, y) & CjS(y, z)").unwrap();
        let plan = lower_formula(&f).unwrap();
        let outcols = [dx_relation::Var::new("x"), dx_relation::Var::new("z")];
        let cond_result = exec_conditional_table(&plan, &outcols, &ct);
        let mut checked = 0usize;
        for (ground, v) in ct.rep_members(&std::collections::BTreeSet::new()) {
            let idx = dx_relation::InstanceIndex::build(&ground);
            let direct: BTreeSet<Vec<Value>> = {
                let rows = crate::exec::exec(&plan, &idx);
                let xc = rows.col(outcols[0]).unwrap();
                let zc = rows.col(outcols[1]).unwrap();
                rows.rows.iter().map(|r| vec![r[xc], r[zc]]).collect()
            };
            let via: BTreeSet<Vec<Value>> = cond_result
                .apply(&v)
                .into_iter()
                .map(|t| t.values().to_vec())
                .collect();
            assert_eq!(via, direct, "valuation {v:?}");
            checked += 1;
        }
        assert!(checked > 1, "several rep members exercised");
    }

    /// The seeded anti-join commutes with valuations: on the correlated §1
    /// one-author query over a table whose papers and authors both carry
    /// nulls, applying any palette valuation to the conditional result
    /// equals the ground execution over the valued instance.
    #[test]
    fn seeded_antijoin_commutes_with_valuations() {
        let s = RelSym::new("CsSub");
        let mut inst = Instance::new();
        inst.insert(s, Tuple::from_names(&["p1", "alice"]));
        inst.insert(s, Tuple::new(vec![Value::c("p1"), Value::null(1)]));
        inst.insert(s, Tuple::new(vec![Value::null(2), Value::c("bob")]));
        let ct = CInstance::from_naive(&inst);
        let f =
            parse_formula("exists a. CsSub(p, a) & (forall b. (CsSub(p, b) -> a = b))").unwrap();
        let plan = lower_formula(&f).unwrap();
        let outcols = [dx_relation::Var::new("p")];
        let cond_result = exec_conditional_table(&plan, &outcols, &ct);
        let mut checked = 0usize;
        for (ground, v) in ct.rep_members(&std::collections::BTreeSet::new()) {
            let idx = dx_relation::InstanceIndex::build(&ground);
            let direct: BTreeSet<Vec<Value>> =
                crate::exec::exec(&plan, &idx).rows.into_iter().collect();
            let via: BTreeSet<Vec<Value>> = cond_result
                .apply(&v)
                .into_iter()
                .map(|t| t.values().to_vec())
                .collect();
            assert_eq!(via, direct, "valuation {v:?}");
            checked += 1;
        }
        assert!(checked > 1, "several rep members exercised");
    }

    #[test]
    fn null_unification_guards_instead_of_pruning() {
        let r = RelSym::new("CxT");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::new(vec![Value::null(7)]));
        let ct = CInstance::from_naive(&inst);
        let f = parse_formula("CxT('a')").unwrap();
        let plan = lower_formula(&f).unwrap();
        let rows = exec_conditional(&plan, &ct);
        assert_eq!(rows.rows.len(), 1);
        assert_eq!(rows.rows[0].1, Condition::eq(Value::null(7), Value::c("a")));
    }
}
