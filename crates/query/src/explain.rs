//! EXPLAIN with run annotations: execute a [`Plan`] while a per-node
//! collector is active, then render the tree (one node per line, stable
//! [`Plan::node_label`] form) annotated with the executed-row / call /
//! seed-partition counts each node actually incurred.
//!
//! Node identity is the node's address inside the borrowed plan tree —
//! stable for the duration of one [`explain_run`]. The correlated branch
//! of a seeded anti-join executes *clones* ([`Plan::bind_seed`] rewrites
//! a fresh copy per distinct seed key), so branch-internal work is
//! aggregated at the seeded node itself (`partitions` / `reruns`) rather
//! than attributed to the pristine branch subtree, whose own counters
//! stay zero.

use crate::cexec::{exec_conditional, CRows};
use crate::exec::{exec, Rows};
use crate::plan::Plan;
use crate::store::QueryStore;
use dx_ctables::CInstance;
use dx_obs::{Explain, ExplainNode};
use dx_relation::FastMap;

/// Work observed at one plan node during a traced run.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct NodeStats {
    /// Times the node was executed.
    calls: u64,
    /// Total rows the node produced across those executions.
    rows: u64,
    /// Seeded anti-join only: distinct seed keys partitioned.
    partitions: u64,
    /// Seeded anti-join only: correlated branch executions.
    reruns: u64,
}

/// The thread-local collector the executor reports into (see
/// [`trace::note_rows`]). Active only inside [`explain_run`].
pub(crate) mod trace {
    use super::NodeStats;
    use crate::plan::Plan;
    use dx_relation::FastMap;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Number of live collectors across all threads — the executor's fast
    /// path is one relaxed load of this when no EXPLAIN capture runs.
    static ACTIVE: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static COLLECT: RefCell<Option<FastMap<usize, NodeStats>>> =
            const { RefCell::new(None) };
    }

    fn key(plan: &Plan) -> usize {
        plan as *const Plan as usize
    }

    /// Record one execution of `plan` producing `rows` rows.
    #[inline]
    pub(crate) fn note_rows(plan: &Plan, rows: usize) {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return;
        }
        COLLECT.with(|c| {
            if let Some(map) = c.borrow_mut().as_mut() {
                let stats = map.entry(key(plan)).or_default();
                stats.calls += 1;
                stats.rows += rows as u64;
            }
        });
    }

    /// Record a seeded anti-join's partition/re-run counts at `plan`.
    #[inline]
    pub(crate) fn note_seed(plan: &Plan, partitions: u64, reruns: u64) {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return;
        }
        COLLECT.with(|c| {
            if let Some(map) = c.borrow_mut().as_mut() {
                let stats = map.entry(key(plan)).or_default();
                stats.partitions += partitions;
                stats.reruns += reruns;
            }
        });
    }

    /// RAII activation of this thread's collector.
    pub(super) struct CollectorGuard;

    impl CollectorGuard {
        pub(super) fn start() -> Self {
            COLLECT.with(|c| *c.borrow_mut() = Some(FastMap::default()));
            ACTIVE.fetch_add(1, Ordering::Relaxed);
            CollectorGuard
        }

        pub(super) fn finish(self) -> FastMap<usize, NodeStats> {
            COLLECT.with(|c| c.borrow_mut().take()).unwrap_or_default()
        }
    }

    impl Drop for CollectorGuard {
        fn drop(&mut self) {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            COLLECT.with(|c| *c.borrow_mut() = None);
        }
    }
}

/// Execute `plan` against `store` with per-node capture on, returning the
/// result rows together with the annotated [`Explain`] report. Always
/// captures, independent of the `DX_OBS` toggle — an EXPLAIN request *is*
/// the opt-in.
pub fn explain_run(plan: &Plan, store: &dyn QueryStore) -> (Rows, Explain) {
    let guard = trace::CollectorGuard::start();
    let rows = exec(plan, store);
    let stats = guard.finish();
    (rows, annotate(plan, &stats))
}

/// The conditional-mode counterpart of [`explain_run`]: execute `plan`
/// over a [`CInstance`] with per-node capture on, returning the guarded
/// result rows together with the annotated report. Row counts are
/// *conditional* rows (each present only under its condition), so a
/// node's `rows` annotation bounds — rather than equals — the rows any
/// one possible world sees.
pub fn explain_run_conditional(plan: &Plan, cinst: &CInstance) -> (CRows, Explain) {
    let guard = trace::CollectorGuard::start();
    let rows = exec_conditional(plan, cinst);
    let stats = guard.finish();
    (rows, annotate(plan, &stats))
}

fn annotate(plan: &Plan, stats: &FastMap<usize, NodeStats>) -> Explain {
    Explain {
        root: annotate_node(plan, stats),
    }
}

fn annotate_node(plan: &Plan, stats: &FastMap<usize, NodeStats>) -> ExplainNode {
    let s = stats
        .get(&(plan as *const Plan as usize))
        .copied()
        .unwrap_or_default();
    let mut node = ExplainNode::new(plan.node_label())
        .annotate("rows", s.rows)
        .annotate("calls", s.calls);
    if matches!(plan, Plan::SeededAntiJoin { .. }) {
        node = node
            .annotate("partitions", s.partitions)
            .annotate("reruns", s.reruns);
    }
    node.children = plan
        .children()
        .into_iter()
        .map(|c| annotate_node(c, stats))
        .collect();
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_formula;
    use dx_logic::parse_formula;
    use dx_relation::{Instance, InstanceIndex, RelSym, Tuple, Value};

    #[test]
    fn explain_run_annotates_rows_per_node() {
        let mut i = Instance::new();
        i.insert_names("XpE", &["a", "b"]);
        i.insert_names("XpE", &["b", "c"]);
        let plan = lower_formula(&parse_formula("exists y. XpE(x, y) & XpE(y, z)").unwrap())
            .expect("lowers");
        let (rows, report) = explain_run(&plan, &InstanceIndex::build(&i));
        assert_eq!(rows.rows.len(), 1, "a→b→c");
        let text = report.render();
        assert!(text.contains("rows=1"), "root row count:\n{text}");
        assert!(text.contains("calls="), "call counts present:\n{text}");
        // Every line of the rendering carries an annotation block.
        for line in text.lines() {
            assert!(line.contains('['), "unannotated line: {line}");
        }
    }

    #[test]
    fn seeded_node_reports_partitions_and_reruns() {
        let mut i = Instance::new();
        i.insert_names("XsSub", &["p1", "alice"]);
        i.insert_names("XsSub", &["p2", "bob"]);
        i.insert_names("XsSub", &["p2", "carol"]);
        let plan = lower_formula(
            &parse_formula("exists a. XsSub(p, a) & (forall b. (XsSub(p, b) -> a = b))").unwrap(),
        )
        .expect("lowers");
        let (rows, report) = explain_run(&plan, &InstanceIndex::build(&i));
        assert_eq!(rows.rows, vec![vec![Value::c("p1")]]);
        let text = report.render();
        assert!(
            text.contains("partitions=3") && text.contains("reruns=3"),
            "three distinct authors seed the correlated branch:\n{text}"
        );
    }

    #[test]
    fn conditional_explain_annotates_nodes() {
        use dx_ctables::CInstance;
        let mut i = Instance::new();
        i.insert_names("XcE", &["a", "b"]);
        i.insert(
            RelSym::new("XcE"),
            Tuple::new(vec![Value::c("b"), Value::null(1)]),
        );
        let cinst = CInstance::from_naive(&i);
        let plan = lower_formula(&parse_formula("exists y. XcE(x, y) & XcE(y, z)").unwrap())
            .expect("lowers");
        let (rows, report) = explain_run_conditional(&plan, &cinst);
        assert!(!rows.rows.is_empty(), "conditional rows produced");
        let text = report.render();
        assert!(text.contains("rows="), "row counts present:\n{text}");
        assert!(text.contains("calls="), "call counts present:\n{text}");
        // The root annotation matches the conditional row count.
        assert!(
            text.lines()
                .next()
                .unwrap()
                .contains(&format!("rows={}", rows.rows.len())),
            "{text}"
        );
    }

    #[test]
    fn conditional_seeded_node_reports_partitions() {
        use dx_ctables::CInstance;
        let mut i = Instance::new();
        i.insert_names("XcSub", &["p1", "alice"]);
        i.insert_names("XcSub", &["p2", "bob"]);
        i.insert_names("XcSub", &["p2", "carol"]);
        let cinst = CInstance::from_naive(&i);
        let plan = lower_formula(
            &parse_formula("exists a. XcSub(p, a) & (forall b. (XcSub(p, b) -> a = b))").unwrap(),
        )
        .expect("lowers");
        let (_, report) = explain_run_conditional(&plan, &cinst);
        let text = report.render();
        assert!(
            text.contains("partitions=3") && text.contains("reruns=3"),
            "three distinct authors seed the correlated branch:\n{text}"
        );
    }

    #[test]
    fn capture_is_inert_outside_explain_run() {
        let mut i = Instance::new();
        i.insert(RelSym::new("XpT"), Tuple::from_names(&["v"]));
        let plan = lower_formula(&parse_formula("XpT(x)").unwrap()).unwrap();
        // A plain exec with no collector active must not capture anything;
        // a following explain_run starts from a clean slate.
        let _ = exec(&plan, &InstanceIndex::build(&i));
        let (_, report) = explain_run(&plan, &InstanceIndex::build(&i));
        let line = report.render();
        assert!(
            line.contains("rows=1") && line.contains("calls=1"),
            "{line}"
        );
    }
}
