//! RAII spans: per-phase wall-time aggregation with nesting.

use crate::registry::{registry, SpanSnapshot};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of log₂ duration buckets in a span histogram: bucket `i`
/// counts spans with `elapsed ≤ 1µs · 2^i`; the last bucket is
/// open-ended (≥ ~2s).
pub const HIST_BUCKETS: usize = 12;

#[derive(Debug, Default)]
struct SpanCells {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Aggregated timing for one span name (shared handle; cloning shares
/// the cells). Recorded durations feed a count/total/max summary plus a
/// coarse log₂-of-microseconds histogram — enough to tell "many fast"
/// from "few slow" without per-event storage.
#[derive(Clone, Debug, Default)]
pub struct SpanStat(Arc<SpanCells>);

impl SpanStat {
    /// Fold one elapsed duration into the aggregate.
    pub fn record(&self, elapsed: std::time::Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let c = &self.0;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.total_ns.fetch_add(ns, Ordering::Relaxed);
        c.max_ns.fetch_max(ns, Ordering::Relaxed);
        // Bucket i covers elapsed ≤ 1µs·2^i: i = ceil(log2(ceil(ns/1000))).
        let us_ceil = ns.div_ceil(1000).max(1);
        let idx = (64 - (us_ceil - 1).leading_zeros()) as usize;
        c.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Read the aggregate.
    pub fn snapshot(&self) -> SpanSnapshot {
        let c = &self.0;
        SpanSnapshot {
            count: c.count.load(Ordering::Relaxed),
            total_ns: c.total_ns.load(Ordering::Relaxed),
            max_ns: c.max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Per-call-site cache used by [`crate::span!`]: resolves the registry
/// [`SpanStat`] once, then every span completion is a few atomic adds.
pub struct SpanSite {
    name: &'static str,
    cell: OnceLock<SpanStat>,
}

impl SpanSite {
    /// Construct (const, for statics inside the macro expansion).
    pub const fn new(name: &'static str) -> Self {
        SpanSite {
            name,
            cell: OnceLock::new(),
        }
    }

    fn stat(&self) -> &SpanStat {
        self.cell.get_or_init(|| registry().span_stat(self.name))
    }
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Current nesting depth of live spans on this thread (0 outside any
/// span). Diagnostic — the aggregation itself keys on names, with
/// hierarchy conveyed by the dotted naming convention.
pub fn span_depth() -> u32 {
    DEPTH.with(Cell::get)
}

/// The RAII guard returned by [`crate::span!`]. Records the inclusive
/// elapsed time into the site's [`SpanStat`] on drop (when `DX_OBS` is
/// on) and emits begin/end events into the [`crate::trace`] ring
/// buffer (when `DX_TRACE` is on); a guard opened with both gates off
/// holds nothing and drops for free.
///
/// The drop runs during unwinding too, so a panic inside a span still
/// balances [`span_depth`] and closes the trace event.
#[must_use = "a span records on drop — bind it to a local (`let _span = ...`)"]
pub struct SpanGuard {
    live: Option<(&'static SpanSite, Instant)>,
    traced: Option<&'static SpanSite>,
}

impl SpanGuard {
    /// Open a span against a call-site cache (the [`crate::span!`]
    /// expansion). One relaxed load, no clock read, when both gates are
    /// disabled.
    #[inline]
    pub fn enter(site: &'static SpanSite) -> Self {
        let flags = crate::flags();
        if flags == 0 {
            return SpanGuard {
                live: None,
                traced: None,
            };
        }
        let traced = if flags & crate::FLAG_TRACE != 0 {
            crate::trace::emit_begin(site.name);
            Some(site)
        } else {
            None
        };
        let live = if flags & crate::FLAG_OBS != 0 {
            DEPTH.with(|d| d.set(d.get() + 1));
            Some((site, Instant::now()))
        } else {
            None
        };
        SpanGuard { live, traced }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((site, start)) = self.live.take() {
            site.stat().record(start.elapsed());
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
        if let Some(site) = self.traced.take() {
            crate::trace::emit_end(site.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let s = SpanStat::default();
        s.record(std::time::Duration::from_nanos(800)); // ≤ 1µs → bucket 0
        s.record(std::time::Duration::from_micros(2)); // ≤ 2µs → bucket 1
        s.record(std::time::Duration::from_micros(3)); // ≤ 4µs → bucket 2
        s.record(std::time::Duration::from_secs(10)); // open-ended tail
        let snap = s.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(snap.max_ns, 10_000_000_000);
    }
}
