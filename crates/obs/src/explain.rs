//! EXPLAIN-style reports: a plain annotated tree that engine crates
//! build from their own plan types (dx-obs knows nothing about plans —
//! dependency order runs the other way).

/// One node of an [`Explain`] report: a rendered label (e.g.
/// `"scan R(x, y) -> [x, y]"`), its work annotations (counter name →
/// value, in insertion order), and child nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplainNode {
    /// The node's one-line rendering, without indentation.
    pub label: String,
    /// Work annotations captured during a run (`("rows", 42)`, …).
    pub annotations: Vec<(String, u64)>,
    /// Child nodes, in plan order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// A leaf with no annotations yet.
    pub fn new(label: impl Into<String>) -> Self {
        ExplainNode {
            label: label.into(),
            annotations: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Append an annotation (builder style).
    pub fn annotate(mut self, key: impl Into<String>, value: u64) -> Self {
        self.annotations.push((key.into(), value));
        self
    }
}

/// An annotated plan-tree report. Engine crates construct one from a
/// plan plus counters captured during a run (see `dx_query::explain`);
/// [`Explain::render`] produces the stable indented text form,
/// [`Explain::to_json`] a machine-readable tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explain {
    /// The root node.
    pub root: ExplainNode,
}

impl Explain {
    /// Render as indented text, one node per line, annotations in
    /// square brackets:
    ///
    /// ```text
    /// project [x] -> [x]  [rows=3]
    ///   join -> [x, y]  [rows=5]
    ///     scan R(x, y) -> [x, y]  [rows=4]
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, &mut out);
        out
    }

    /// Serialize the tree as nested JSON objects
    /// (`{"label": …, "annotations": {…}, "children": […]}`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        json_node(&self.root, &mut out);
        out
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

fn render_node(node: &ExplainNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&node.label);
    if !node.annotations.is_empty() {
        out.push_str("  [");
        for (i, (k, v)) in node.annotations.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{k}={v}"));
        }
        out.push(']');
    }
    out.push('\n');
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

fn json_node(node: &ExplainNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"label\": \"{}\", \"annotations\": {{",
        crate::json_escape(&node.label)
    ));
    for (i, (k, v)) in node.annotations.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", crate::json_escape(k), v));
    }
    out.push_str("}, \"children\": [");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_node(child, out);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Explain {
        let scan = ExplainNode::new("scan R(x, y) -> [x, y]").annotate("rows", 4);
        let mut join = ExplainNode::new("join -> [x, y]").annotate("rows", 5);
        join.children.push(scan);
        let mut root = ExplainNode::new("project [x] -> [x]").annotate("rows", 3);
        root.children.push(join);
        Explain { root }
    }

    #[test]
    fn render_indents_and_annotates() {
        let text = sample().render();
        assert_eq!(
            text,
            "project [x] -> [x]  [rows=3]\n  join -> [x, y]  [rows=5]\n    scan R(x, y) -> [x, y]  [rows=4]\n"
        );
    }

    #[test]
    fn json_tree_shape() {
        let json = sample().to_json();
        assert!(json.contains("\"label\": \"project [x] -> [x]\""), "{json}");
        assert!(json.contains("\"rows\": 3"), "{json}");
        assert!(json.contains("\"children\": ["), "{json}");
    }
}
