//! `DX_TRACE` timeline tracing: a bounded in-memory event ring buffer
//! fed by the [`crate::span!`] machinery (begin/end pairs) and by
//! explicit [`crate::trace_instant!`] milestones, exportable as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) or as
//! a plain-text per-thread phase timeline.
//!
//! ## Gate
//!
//! Tracing has its own toggle — the `DX_TRACE` environment variable or
//! [`crate::set_trace_enabled`] — independent of the `DX_OBS` aggregate
//! gate. Both gates share one atomic flag word, so an instrumented site
//! with *both* off still costs exactly one relaxed load (see
//! `crate::flags`). Aggregation without timelines (`DX_OBS=1` alone)
//! stays allocation-free; timelines without aggregation (`DX_TRACE=1`
//! alone) skip the clock-read/histogram path entirely.
//!
//! ## Event model
//!
//! Three phases, mirroring the Chrome `trace_event` duration model:
//!
//! * **Begin**/**End** — emitted by [`crate::SpanGuard`] on enter/drop
//!   for every `span!` site, carrying the span's static name;
//! * **Instant** — point milestones ([`crate::trace_instant!`]) with a
//!   small list of `(static key, u64)` arguments, e.g. solver DFS depth
//!   marks or chase-round boundaries.
//!
//! Timestamps are microseconds from a process-wide monotonic base;
//! thread ids are small dense integers assigned on first emission.
//!
//! ## Bounding
//!
//! The buffer is a ring of at most [`set_capacity`]-many events (default
//! [`DEFAULT_CAPACITY`]); when full, the *oldest* events are dropped
//! and counted in [`dropped`], so a long run keeps its most recent
//! window rather than aborting or growing without bound. The buffer
//! lock is only ever touched with the gate on — and is taken with
//! poison-recovery, so a panic unwinding through a span cannot wedge
//! later tracing (see the `catch_unwind` regression test).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Which kind of timeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened (`ph: "B"` in Chrome trace format).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point milestone (`ph: "i"`, thread-scoped).
    Instant,
}

/// One timeline event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Begin / End / Instant.
    pub phase: TracePhase,
    /// The span or milestone name (static — no per-event allocation
    /// for the name itself).
    pub name: &'static str,
    /// Microseconds since the process-wide monotonic base.
    pub ts_us: u64,
    /// Dense per-thread id (assigned on the thread's first event).
    pub tid: u64,
    /// Small static-key argument list (empty for span begin/end).
    pub args: Vec<(&'static str, u64)>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }
    }
}

fn ring() -> MutexGuard<'static, Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    // Poison-recovery: a panic unwinding while the lock is held (the
    // SpanGuard drop emits the End event during unwind) must not wedge
    // every later trace emission.
    RING.get_or_init(|| Mutex::new(Ring::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic trace epoch.
pub fn now_us() -> u64 {
    u64::try_from(base().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// This thread's dense trace id (assigned on first call).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn push(phase: TracePhase, name: &'static str, args: Vec<(&'static str, u64)>) {
    let ev = TraceEvent {
        phase,
        name,
        ts_us: now_us(),
        tid: thread_id(),
        args,
    };
    let mut r = ring();
    if r.events.len() >= r.capacity {
        r.events.pop_front();
        r.dropped += 1;
    }
    r.events.push_back(ev);
}

/// Record a span-begin event (called by [`crate::SpanGuard::enter`]
/// after the gate check — callers outside the span machinery should
/// prefer `span!`).
#[inline]
pub fn emit_begin(name: &'static str) {
    push(TracePhase::Begin, name, Vec::new());
}

/// Record a span-end event (called by the [`crate::SpanGuard`] drop).
#[inline]
pub fn emit_end(name: &'static str) {
    push(TracePhase::End, name, Vec::new());
}

/// Record an instant milestone with static-key args. Callers should go
/// through [`crate::trace_instant!`], which performs the gate check.
#[inline]
pub fn instant(name: &'static str, args: &[(&'static str, u64)]) {
    push(TracePhase::Instant, name, args.to_vec());
}

/// Resize the ring (trimming oldest events if shrinking below the
/// current length).
pub fn set_capacity(capacity: usize) {
    let mut r = ring();
    r.capacity = capacity.max(1);
    while r.events.len() > r.capacity {
        r.events.pop_front();
        r.dropped += 1;
    }
}

/// Number of buffered events.
pub fn len() -> usize {
    ring().events.len()
}

/// Events evicted because the ring was full (cumulative until
/// [`clear`]/[`take_events`]).
pub fn dropped() -> u64 {
    ring().dropped
}

/// Drop all buffered events and reset the dropped counter.
pub fn clear() {
    let mut r = ring();
    r.events.clear();
    r.dropped = 0;
}

/// Drain the buffer, returning the events in emission order and
/// resetting the dropped counter.
pub fn take_events() -> Vec<TraceEvent> {
    let mut r = ring();
    r.dropped = 0;
    r.events.drain(..).collect()
}

/// Serialize events as a Chrome `trace_event` JSON document — an object
/// with a `traceEvents` array — loadable in `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev). Begin/End events use the
/// duration phases `B`/`E`; instants use the thread-scoped `i` phase.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match ev.phase {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
            crate::json_escape(ev.name),
            ph,
            ev.ts_us,
            ev.tid
        ));
        if ev.phase == TracePhase::Instant {
            out.push_str(", \"s\": \"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(", \"args\": {");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", crate::json_escape(k), v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Render events as a plain-text per-thread timeline: one line per
/// event, indented by that thread's current span nesting depth, with
/// `>`/`<` markers for begin/end and `*` for instants.
pub fn text_timeline(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
    let mut begin_ts: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut out = String::new();
    for ev in events {
        let d = depth.entry(ev.tid).or_insert(0);
        match ev.phase {
            TracePhase::Begin => {
                out.push_str(&format!(
                    "{:>10}µs t{} {}> {}\n",
                    ev.ts_us,
                    ev.tid,
                    "  ".repeat(*d),
                    ev.name
                ));
                begin_ts.entry(ev.tid).or_default().push(ev.ts_us);
                *d += 1;
            }
            TracePhase::End => {
                *d = d.saturating_sub(1);
                let took = begin_ts
                    .get_mut(&ev.tid)
                    .and_then(Vec::pop)
                    .map(|b| ev.ts_us.saturating_sub(b));
                let took = match took {
                    Some(us) => format!(" ({us} µs)"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{:>10}µs t{} {}< {}{}\n",
                    ev.ts_us,
                    ev.tid,
                    "  ".repeat(*d),
                    ev.name,
                    took
                ));
            }
            TracePhase::Instant => {
                let mut line = format!(
                    "{:>10}µs t{} {}* {}",
                    ev.ts_us,
                    ev.tid,
                    "  ".repeat(*d),
                    ev.name
                );
                for (k, v) in &ev.args {
                    line.push_str(&format!(" {k}={v}"));
                }
                line.push('\n');
                out.push_str(&line);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exporters_render_events() {
        let evs = vec![
            TraceEvent {
                phase: TracePhase::Begin,
                name: "t.a",
                ts_us: 1,
                tid: 1,
                args: vec![],
            },
            TraceEvent {
                phase: TracePhase::Instant,
                name: "t.mark",
                ts_us: 2,
                tid: 1,
                args: vec![("depth", 3)],
            },
            TraceEvent {
                phase: TracePhase::End,
                name: "t.a",
                ts_us: 5,
                tid: 1,
                args: vec![],
            },
        ];
        let json = chrome_trace_json(&evs);
        assert!(json.contains("\"ph\": \"B\""), "{json}");
        assert!(json.contains("\"ph\": \"E\""), "{json}");
        assert!(
            json.contains("\"ph\": \"i\", \"ts\": 2, \"pid\": 1, \"tid\": 1, \"s\": \"t\""),
            "{json}"
        );
        assert!(json.contains("\"args\": {\"depth\": 3}"), "{json}");
        let text = text_timeline(&evs);
        assert!(text.contains("> t.a"), "{text}");
        assert!(text.contains("* t.mark depth=3"), "{text}");
        assert!(text.contains("< t.a (4 µs)"), "{text}");
    }
}
