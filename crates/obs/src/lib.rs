//! # dx-obs — unified tracing/metrics substrate
//!
//! A hand-rolled, dependency-free instrumentation layer (the build
//! environment is air-gapped, so the `tracing` ecosystem is off the
//! table). Five pieces:
//!
//! * a process-wide [`MetricsRegistry`] of named monotonic counters,
//!   last-value gauges and duration histograms behind cheap atomic
//!   sinks, with JSON snapshot/diff export ([`snapshot`],
//!   [`MetricsSnapshot::diff_since`]);
//! * lightweight RAII spans ([`span!`]) that aggregate per-phase wall
//!   time (count / total / max / log₂ histogram) and nest — timings are
//!   **inclusive**, hierarchy is conveyed by dotted names
//!   (`engine.chase` ⊃ `engine.chase.step` ⊃ `query.exec`);
//! * timeline tracing ([`trace`]): the same `span!` sites feed a
//!   bounded in-memory event ring buffer when the separate `DX_TRACE`
//!   gate is on, plus [`trace_instant!`] point milestones — exportable
//!   as Chrome `trace_event` JSON (Perfetto) or a plain-text timeline;
//! * memory accounting ([`mem`]): the standard gauge vocabulary for
//!   instance / delta-index / plan-catalog footprints;
//! * a generic [`Explain`] report tree that downstream crates annotate
//!   with per-node work counts (dx-query renders compiled `Plan`s into
//!   it — see `dx_query::explain`).
//!
//! ## Zero cost when disabled
//!
//! Aggregation is gated by the `DX_OBS` environment variable (unset,
//! empty, or `0` ⇒ disabled) or an explicit [`set_enabled`] call;
//! timelines by `DX_TRACE` / [`set_trace_enabled`]. Both gates share
//! one atomic flag word, so the [`count!`], [`gauge!`], [`span!`] and
//! [`trace_instant!`] macros compile to a single relaxed atomic load on
//! the fully-disabled path — no clock reads, no registry access, no
//! allocation. [`snapshot`] returns an empty snapshot while disabled,
//! so consumers that serialize metrics write nothing.
//!
//! Counter *handles* ([`Counter`]) are deliberately **not** gated: a
//! direct `handle.add(1)` always records. That is what lets always-on
//! bookkeeping (e.g. `dx-query`'s `CatalogStats`) live on the same
//! substrate — the registry export is gated, the handles are live.
//!
//! ## Naming convention
//!
//! `crate.component.metric`, lowercase, dot-separated:
//! `engine.chase.tuples_inserted`, `relation.delta.applies`,
//! `query.exec.seed_reruns`, `solver.dfs.leaves`. Adding a counter is
//! one line at the site: `dx_obs::count!("crate.component.metric");`.

#![warn(missing_docs)]

mod explain;
pub mod mem;
mod registry;
mod span;
pub mod trace;

pub use explain::{Explain, ExplainNode};
pub use registry::{
    registry, snapshot, Counter, CounterSite, Gauge, GaugeSite, MetricsRegistry, MetricsSnapshot,
    SpanSnapshot,
};
pub use span::{span_depth, SpanGuard, SpanSite, SpanStat};
pub use trace::{TraceEvent, TracePhase};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Bit in [`flags`] for the `DX_OBS` aggregate gate.
pub(crate) const FLAG_OBS: u8 = 1;
/// Bit in [`flags`] for the `DX_TRACE` timeline gate.
pub(crate) const FLAG_TRACE: u8 = 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();

fn env_on(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let mut f = 0;
        if env_on("DX_OBS") {
            f |= FLAG_OBS;
        }
        if env_on("DX_TRACE") {
            f |= FLAG_TRACE;
        }
        FLAGS.store(f, Ordering::Relaxed);
    });
}

/// Both gate bits in one relaxed load — the shared fast path for sites
/// that serve aggregation *and* tracing (`span!`). With both gates off
/// an instrumented site costs exactly this one load.
#[inline]
pub(crate) fn flags() -> u8 {
    init_from_env();
    FLAGS.load(Ordering::Relaxed)
}

/// Is aggregate instrumentation (`DX_OBS`) live? One `Once` check plus
/// one relaxed load — this is the *entire* cost of a [`count!`]/
/// [`span!`] site when disabled.
#[inline]
pub fn enabled() -> bool {
    flags() & FLAG_OBS != 0
}

/// Is timeline tracing (`DX_TRACE`) live? Same single-relaxed-load cost
/// as [`enabled`] — both gates share one flag word.
#[inline]
pub fn trace_enabled() -> bool {
    flags() & FLAG_TRACE != 0
}

/// Force aggregate instrumentation on/off, overriding the `DX_OBS`
/// environment toggle (the bench harness's smoke mode enables
/// explicitly so the work-identity gates always run).
pub fn set_enabled(on: bool) {
    init_from_env();
    if on {
        FLAGS.fetch_or(FLAG_OBS, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_OBS, Ordering::Relaxed);
    }
}

/// Force timeline tracing on/off, overriding the `DX_TRACE` environment
/// toggle.
pub fn set_trace_enabled(on: bool) {
    init_from_env();
    if on {
        FLAGS.fetch_or(FLAG_TRACE, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_TRACE, Ordering::Relaxed);
    }
}

/// Bump a named monotonic counter. Usage:
///
/// ```
/// dx_obs::count!("doc.example.widgets");      // += 1
/// dx_obs::count!("doc.example.bytes", 128);   // += n
/// ```
///
/// The name must be a string literal (it keys the process-wide
/// registry). Each call site caches its [`Counter`] handle in a static
/// [`CounterSite`], so the enabled path is one atomic add after the
/// first hit; the disabled path is a relaxed bool load.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static SITE: $crate::CounterSite = $crate::CounterSite::new($name);
            SITE.add($n as u64);
        }
    };
}

/// Open an RAII span aggregating wall time under a dotted name:
///
/// ```
/// {
///     let _span = dx_obs::span!("doc.example.phase");
///     // ... timed region ...
/// } // recorded on drop
/// ```
///
/// Spans nest freely (a thread-local depth is maintained — see
/// [`span_depth`]); each records its **inclusive** elapsed time into the
/// registry's duration histogram for that name. With the `DX_TRACE`
/// gate on, the same guard also emits begin/end events into the
/// [`trace`] ring buffer. Both gates disabled ⇒ one relaxed load, no
/// clock read, nothing recorded.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SITE: $crate::SpanSite = $crate::SpanSite::new($name);
        $crate::SpanGuard::enter(&SITE)
    }};
}

/// Set a named last-value gauge (see [`Gauge`]). Usage:
///
/// ```
/// dx_obs::gauge!("doc.example.live_widgets", 42u64);
/// ```
///
/// Gated like [`count!`]: a single relaxed load when `DX_OBS` is off.
/// Gauges report the **latest** reading in snapshots and diffs — they
/// are for sizes, not work totals.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: $crate::GaugeSite = $crate::GaugeSite::new($name);
            SITE.set($v as u64);
        }
    };
}

/// Emit an instant milestone into the [`trace`] ring buffer with an
/// optional static-key argument list:
///
/// ```
/// dx_obs::trace_instant!("doc.example.milestone");
/// dx_obs::trace_instant!("doc.example.depth_mark", "depth" = 3u32, "fanout" = 8u32);
/// ```
///
/// Gated on `DX_TRACE` alone — a single relaxed load when tracing is
/// off, regardless of the `DX_OBS` setting.
#[macro_export]
macro_rules! trace_instant {
    ($name:literal) => {
        if $crate::trace_enabled() {
            $crate::trace::instant($name, &[]);
        }
    };
    ($name:literal, $($k:literal = $v:expr),+ $(,)?) => {
        if $crate::trace_enabled() {
            $crate::trace::instant($name, &[$(($k, $v as u64)),+]);
        }
    };
}

/// Escape a string for embedding in a JSON document (used by the
/// snapshot and explain serializers; exposed for the bench harness's
/// hand-rolled row writer).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests toggle the global flag; serialize them.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_mode_is_a_no_op() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false);
        set_trace_enabled(false);
        trace::clear();
        count!("obs.test.disabled_counter", 5);
        gauge!("obs.test.disabled_gauge", 9);
        trace_instant!("obs.test.disabled_instant", "k" = 1u64);
        {
            let _s = span!("obs.test.disabled_span");
        }
        let snap = snapshot();
        assert!(snap.is_empty(), "disabled snapshot must be empty: {snap:?}");
        assert_eq!(snap.counter("obs.test.disabled_counter"), 0);
        assert_eq!(snap.gauge("obs.test.disabled_gauge"), 0);
        assert_eq!(
            snap.to_json(),
            "{\"counters\": {}, \"gauges\": {}, \"spans\": {}}"
        );
        assert_eq!(
            trace::len(),
            0,
            "disabled trace sites must not buffer events"
        );
    }

    #[test]
    fn trace_gate_buffers_span_and_instant_events() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false); // timelines alone — no aggregation
        set_trace_enabled(true);
        trace::clear();
        {
            let _s = span!("obs.test.traced_phase");
            assert_eq!(span_depth(), 0, "DX_OBS off ⇒ no aggregate depth");
            trace_instant!("obs.test.traced_mark", "depth" = 2u32);
        }
        set_trace_enabled(false);
        let evs = trace::take_events();
        let phases: Vec<(TracePhase, &str)> = evs
            .iter()
            .filter(|e| e.name.starts_with("obs.test.traced"))
            .map(|e| (e.phase, e.name))
            .collect();
        assert_eq!(
            phases,
            vec![
                (TracePhase::Begin, "obs.test.traced_phase"),
                (TracePhase::Instant, "obs.test.traced_mark"),
                (TracePhase::End, "obs.test.traced_phase"),
            ]
        );
        let mark = evs
            .iter()
            .find(|e| e.name == "obs.test.traced_mark")
            .unwrap();
        assert_eq!(mark.args, vec![("depth", 2u64)]);
        assert!(
            snapshot().is_empty(),
            "DX_TRACE alone must not populate the aggregate registry"
        );
        let json = trace::chrome_trace_json(&evs);
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
    }

    #[test]
    fn trace_ring_is_bounded_and_counts_drops() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false);
        set_trace_enabled(true);
        trace::clear();
        trace::set_capacity(4);
        for _ in 0..10 {
            trace_instant!("obs.test.cap");
        }
        assert_eq!(trace::len(), 4, "ring holds at most its capacity");
        assert_eq!(trace::dropped(), 6, "evictions are counted");
        let evs = trace::take_events();
        assert_eq!(evs.len(), 4);
        assert_eq!(trace::dropped(), 0, "take_events resets the counter");
        trace::set_capacity(trace::DEFAULT_CAPACITY);
        set_trace_enabled(false);
    }

    #[test]
    fn span_guard_panic_leaves_depth_balanced_and_trace_usable() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        set_trace_enabled(true);
        trace::clear();
        let unwound = std::panic::catch_unwind(|| {
            let _outer = span!("obs.test.panic_outer");
            let _inner = span!("obs.test.panic_inner");
            panic!("unwind through two live spans");
        });
        assert!(unwound.is_err());
        assert_eq!(
            span_depth(),
            0,
            "unwinding drops must rebalance the span depth"
        );
        // The buffer stays usable: both spans closed during unwind, and
        // new events still land.
        trace_instant!("obs.test.panic_after");
        set_trace_enabled(false);
        set_enabled(false);
        let evs = trace::take_events();
        let ends = evs
            .iter()
            .filter(|e| e.phase == TracePhase::End && e.name.starts_with("obs.test.panic_"))
            .count();
        assert_eq!(ends, 2, "both spans emitted End during unwind: {evs:?}");
        assert!(
            evs.iter().any(|e| e.name == "obs.test.panic_after"),
            "trace buffer must not be poisoned by the panic"
        );
    }

    /// Concurrent span guards from a fleet of worker threads keep the
    /// shared ring consistent: every thread's events form a properly
    /// nested LIFO Begin/End sequence under its own dense tid, instants
    /// land at the expected per-thread depth, and each thread's aggregate
    /// span depth rebalances to zero — regardless of how the threads'
    /// emissions interleave in the buffer.
    #[test]
    fn concurrent_span_guards_keep_pairing_and_depth() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        set_trace_enabled(true);
        trace::clear();
        const WORKERS: usize = 8;
        const ITERS: usize = 40;
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    for _ in 0..ITERS {
                        let _outer = span!("obs.test.cc_outer");
                        trace_instant!("obs.test.cc_mark", "w" = 1u64);
                        {
                            let _inner = span!("obs.test.cc_inner");
                        }
                    }
                    assert_eq!(span_depth(), 0, "worker depth rebalanced");
                });
            }
        });
        set_trace_enabled(false);
        set_enabled(false);
        let events: Vec<TraceEvent> = trace::take_events()
            .into_iter()
            .filter(|e| e.name.starts_with("obs.test.cc_"))
            .collect();
        assert_eq!(
            events.len(),
            WORKERS * ITERS * 5,
            "2 begins + 2 ends + 1 instant per iteration, none lost"
        );
        let mut stacks: std::collections::BTreeMap<u64, Vec<&'static str>> = Default::default();
        for ev in &events {
            let stack = stacks.entry(ev.tid).or_default();
            match ev.phase {
                TracePhase::Begin => stack.push(ev.name),
                TracePhase::End => {
                    assert_eq!(stack.pop(), Some(ev.name), "per-tid LIFO pairing");
                }
                TracePhase::Instant => {
                    assert_eq!(stack.as_slice(), ["obs.test.cc_outer"], "instant depth");
                }
            }
        }
        assert_eq!(stacks.len(), WORKERS, "one dense tid per worker");
        for (tid, stack) in &stacks {
            assert!(stack.is_empty(), "tid {tid} ends at depth 0");
        }
    }

    #[test]
    fn diff_since_keeps_later_only_sites() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        // These sites did not exist when `before` was taken — a fresh
        // site registered mid-window must survive the diff.
        count!("obs.test.later_only_counter", 4);
        {
            let _s = span!("obs.test.later_only_span");
        }
        let diff = snapshot().diff_since(&before);
        assert_eq!(diff.counter("obs.test.later_only_counter"), 4);
        let span = diff
            .spans
            .get("obs.test.later_only_span")
            .expect("later-only span survives diff_since");
        assert_eq!(span.count, 1);
        set_enabled(false);
    }

    #[test]
    fn gauges_report_last_value_not_delta() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        gauge!("obs.test.gauge_lv", 100);
        let before = snapshot();
        assert_eq!(before.gauge("obs.test.gauge_lv"), 100);
        gauge!("obs.test.gauge_lv", 40); // shrinks — gauges may go down
        let after = snapshot();
        let diff = after.diff_since(&before);
        assert_eq!(
            diff.gauge("obs.test.gauge_lv"),
            40,
            "diff carries the later reading, not a subtraction"
        );
        let json = diff.to_json();
        assert!(
            json.contains("\"gauges\": {") && json.contains("\"obs.test.gauge_lv\": 40"),
            "{json}"
        );
        // mem::publish goes through the same registry path.
        mem::publish(mem::names::INSTANCE_TUPLES, 7);
        assert_eq!(snapshot().gauge(mem::names::INSTANCE_TUPLES), 7);
        set_enabled(false);
    }

    #[test]
    fn enabled_counters_and_spans_record() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        count!("obs.test.widgets");
        count!("obs.test.widgets", 2);
        {
            let _s = span!("obs.test.phase");
            assert_eq!(span_depth(), 1);
            let _inner = span!("obs.test.phase.inner");
            assert_eq!(span_depth(), 2);
        }
        assert_eq!(span_depth(), 0);
        let diff = snapshot().diff_since(&before);
        assert_eq!(diff.counter("obs.test.widgets"), 3);
        let phase = diff.spans.get("obs.test.phase").expect("span recorded");
        assert_eq!(phase.count, 1);
        let inner = diff
            .spans
            .get("obs.test.phase.inner")
            .expect("nested span recorded");
        assert_eq!(inner.count, 1);
        assert!(phase.total_ns >= inner.total_ns, "outer time is inclusive");
        set_enabled(false);
    }

    #[test]
    fn snapshot_diff_and_json_roundtrip_shape() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        count!("obs.test.json", 7);
        let diff = snapshot().diff_since(&before);
        let json = diff.to_json();
        assert!(json.contains("\"obs.test.json\": 7"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
        set_enabled(false);
    }

    #[test]
    fn detached_counters_always_record() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false);
        let c = Counter::detached();
        c.add(2);
        c.incr();
        assert_eq!(
            c.get(),
            3,
            "handles are live even when the macro gate is off"
        );
        let snap = snapshot();
        assert!(
            snap.is_empty(),
            "detached counters never reach the registry"
        );
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
