//! # dx-obs — unified tracing/metrics substrate
//!
//! A hand-rolled, dependency-free instrumentation layer (the build
//! environment is air-gapped, so the `tracing` ecosystem is off the
//! table). Three pieces:
//!
//! * a process-wide [`MetricsRegistry`] of named monotonic counters and
//!   duration histograms behind cheap atomic sinks, with JSON
//!   snapshot/diff export ([`snapshot`], [`MetricsSnapshot::diff_since`]);
//! * lightweight RAII spans ([`span!`]) that aggregate per-phase wall
//!   time (count / total / max / log₂ histogram) and nest — timings are
//!   **inclusive**, hierarchy is conveyed by dotted names
//!   (`engine.chase` ⊃ `engine.chase.step` ⊃ `query.exec`);
//! * a generic [`Explain`] report tree that downstream crates annotate
//!   with per-node work counts (dx-query renders compiled `Plan`s into
//!   it — see `dx_query::explain`).
//!
//! ## Zero cost when disabled
//!
//! Instrumentation is gated by the `DX_OBS` environment variable (unset,
//! empty, or `0` ⇒ disabled) or an explicit [`set_enabled`] call. The
//! [`count!`] and [`span!`] macros compile to a single relaxed atomic
//! load on the disabled path — no clock reads, no registry access, no
//! allocation. [`snapshot`] returns an empty snapshot while disabled, so
//! consumers that serialize metrics write nothing.
//!
//! Counter *handles* ([`Counter`]) are deliberately **not** gated: a
//! direct `handle.add(1)` always records. That is what lets always-on
//! bookkeeping (e.g. `dx-query`'s `CatalogStats`) live on the same
//! substrate — the registry export is gated, the handles are live.
//!
//! ## Naming convention
//!
//! `crate.component.metric`, lowercase, dot-separated:
//! `engine.chase.tuples_inserted`, `relation.delta.applies`,
//! `query.exec.seed_reruns`, `solver.dfs.leaves`. Adding a counter is
//! one line at the site: `dx_obs::count!("crate.component.metric");`.

#![warn(missing_docs)]

mod explain;
mod registry;
mod span;

pub use explain::{Explain, ExplainNode};
pub use registry::{
    registry, snapshot, Counter, CounterSite, MetricsRegistry, MetricsSnapshot, SpanSnapshot,
};
pub use span::{span_depth, SpanGuard, SpanSite, SpanStat};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let on = match std::env::var("DX_OBS") {
            Ok(v) => !(v.is_empty() || v == "0"),
            Err(_) => false,
        };
        ENABLED.store(on, Ordering::Relaxed);
    });
}

/// Is instrumentation live? One `Once` check plus one relaxed load —
/// this is the *entire* cost of a [`count!`]/[`span!`] site when
/// disabled.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Force instrumentation on/off, overriding the `DX_OBS` environment
/// toggle (the bench harness's smoke mode enables explicitly so the
/// work-identity gates always run).
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Bump a named monotonic counter. Usage:
///
/// ```
/// dx_obs::count!("doc.example.widgets");      // += 1
/// dx_obs::count!("doc.example.bytes", 128);   // += n
/// ```
///
/// The name must be a string literal (it keys the process-wide
/// registry). Each call site caches its [`Counter`] handle in a static
/// [`CounterSite`], so the enabled path is one atomic add after the
/// first hit; the disabled path is a relaxed bool load.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static SITE: $crate::CounterSite = $crate::CounterSite::new($name);
            SITE.add($n as u64);
        }
    };
}

/// Open an RAII span aggregating wall time under a dotted name:
///
/// ```
/// {
///     let _span = dx_obs::span!("doc.example.phase");
///     // ... timed region ...
/// } // recorded on drop
/// ```
///
/// Spans nest freely (a thread-local depth is maintained — see
/// [`span_depth`]); each records its **inclusive** elapsed time into the
/// registry's duration histogram for that name. Disabled ⇒ no clock
/// read, nothing recorded.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SITE: $crate::SpanSite = $crate::SpanSite::new($name);
        $crate::SpanGuard::enter(&SITE)
    }};
}

/// Escape a string for embedding in a JSON document (used by the
/// snapshot and explain serializers; exposed for the bench harness's
/// hand-rolled row writer).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests toggle the global flag; serialize them.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_mode_is_a_no_op() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false);
        count!("obs.test.disabled_counter", 5);
        {
            let _s = span!("obs.test.disabled_span");
        }
        let snap = snapshot();
        assert!(snap.is_empty(), "disabled snapshot must be empty: {snap:?}");
        assert_eq!(snap.counter("obs.test.disabled_counter"), 0);
        assert_eq!(snap.to_json(), "{\"counters\": {}, \"spans\": {}}");
    }

    #[test]
    fn enabled_counters_and_spans_record() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        count!("obs.test.widgets");
        count!("obs.test.widgets", 2);
        {
            let _s = span!("obs.test.phase");
            assert_eq!(span_depth(), 1);
            let _inner = span!("obs.test.phase.inner");
            assert_eq!(span_depth(), 2);
        }
        assert_eq!(span_depth(), 0);
        let diff = snapshot().diff_since(&before);
        assert_eq!(diff.counter("obs.test.widgets"), 3);
        let phase = diff.spans.get("obs.test.phase").expect("span recorded");
        assert_eq!(phase.count, 1);
        let inner = diff
            .spans
            .get("obs.test.phase.inner")
            .expect("nested span recorded");
        assert_eq!(inner.count, 1);
        assert!(phase.total_ns >= inner.total_ns, "outer time is inclusive");
        set_enabled(false);
    }

    #[test]
    fn snapshot_diff_and_json_roundtrip_shape() {
        let _g = GUARD.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        count!("obs.test.json", 7);
        let diff = snapshot().diff_since(&before);
        let json = diff.to_json();
        assert!(json.contains("\"obs.test.json\": 7"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
        set_enabled(false);
    }

    #[test]
    fn detached_counters_always_record() {
        let _g = GUARD.lock().unwrap();
        set_enabled(false);
        let c = Counter::detached();
        c.add(2);
        c.incr();
        assert_eq!(
            c.get(),
            3,
            "handles are live even when the macro gate is off"
        );
        let snap = snapshot();
        assert!(
            snap.is_empty(),
            "detached counters never reach the registry"
        );
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
