//! The process-wide metrics registry: named monotonic counters, gauges
//! and duration histograms, snapshot/diff/JSON export.

use crate::span::{SpanStat, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter handle. Cloning shares the underlying cell.
///
/// Handles are **always live** — `add` records unconditionally. The
/// `DX_OBS` gate lives in the [`crate::count!`] macro (which skips the
/// registry entirely when disabled) and in [`snapshot`] (which exports
/// nothing when disabled). Always-on bookkeeping like `dx-query`'s
/// catalog statistics holds handles directly.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere — a plain shared atomic for
    /// per-instance statistics (e.g. a private `PlanCatalog`).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a last-value cell for quantities that go up *and*
/// down (live tuples, index slots, catalog entries). Cloning shares the
/// underlying cell.
///
/// Like [`Counter`] handles, gauges are always live — `set` records
/// unconditionally; the `DX_OBS` gate lives in the [`crate::gauge!`]
/// macro and in [`snapshot`]. Unlike counters, a gauge diff reports the
/// **later reading**, not a subtraction — see
/// [`MetricsSnapshot::diff_since`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not registered anywhere — a plain shared atomic.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrite the reading.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current reading.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-call-site cache used by [`crate::gauge!`]: resolves the registry
/// gauge once, then every hit is a single atomic store.
pub struct GaugeSite {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl GaugeSite {
    /// Construct (const, for statics inside the macro expansion).
    pub const fn new(name: &'static str) -> Self {
        GaugeSite {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Set the registered gauge, registering on first use.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.get_or_init(|| registry().gauge(self.name)).set(v);
    }
}

/// Per-call-site cache used by [`crate::count!`]: resolves the registry
/// counter once, then every hit is a single atomic add.
pub struct CounterSite {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl CounterSite {
    /// Construct (const, for statics inside the macro expansion).
    pub const fn new(name: &'static str) -> Self {
        CounterSite {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n` to the registered counter, registering on first use.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell
            .get_or_init(|| registry().counter(self.name))
            .add(n);
    }
}

/// The process-wide registry. Obtain via [`registry`]; counters and span
/// stats are created lazily on first use and live for the process.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    spans: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl MetricsRegistry {
    /// The named counter, created on first use. The name should follow
    /// the `crate.component.metric` convention.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges.lock().unwrap().entry(name).or_default().clone()
    }

    /// The named duration histogram, created on first use.
    pub fn span_stat(&self, name: &'static str) -> SpanStat {
        self.spans.lock().unwrap().entry(name).or_default().clone()
    }

    /// Read every registered metric, **ignoring** the `DX_OBS` gate.
    /// Most consumers want [`snapshot`] instead.
    pub fn snapshot_raw(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            spans: self
                .spans
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Read every registered metric — empty while instrumentation is
/// disabled (so "disabled" runs serialize nothing).
pub fn snapshot() -> MetricsSnapshot {
    if !crate::enabled() {
        return MetricsSnapshot::default();
    }
    registry().snapshot_raw()
}

/// Aggregate of one span name: call count, total/max inclusive wall
/// time, and a coarse log₂ histogram of per-call durations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of inclusive elapsed nanoseconds.
    pub total_ns: u64,
    /// Maximum single-span elapsed nanoseconds.
    pub max_ns: u64,
    /// Log₂ duration buckets: bucket `i` counts spans with
    /// `elapsed ≤ 1µs · 2^i` (last bucket is open-ended).
    pub buckets: [u64; HIST_BUCKETS],
}

/// A point-in-time reading of the registry: counter values plus span
/// aggregates, ordered by name. Supports set-subtraction
/// ([`MetricsSnapshot::diff_since`]) and JSON export.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last reading.
    pub gauges: BTreeMap<String, u64>,
    /// Span name → duration aggregate.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl MetricsSnapshot {
    /// No metrics at all?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's reading (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The metrics accumulated *since* `earlier`: counters and span
    /// count/total subtract (saturating); `max_ns` keeps the later
    /// reading (a maximum cannot be un-observed). Zero-valued counters
    /// are kept so "touched but idle" is distinguishable from "absent".
    /// Gauges are **last-value**, not monotonic — the diff carries the
    /// later reading unchanged (a window over a gauge answers "how big
    /// was it at the end", not "how much did it grow").
    pub fn diff_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            spans: self
                .spans
                .iter()
                .map(|(k, v)| {
                    let e = earlier.spans.get(k).cloned().unwrap_or_default();
                    let mut buckets = v.buckets;
                    for (b, eb) in buckets.iter_mut().zip(e.buckets.iter()) {
                        *b = b.saturating_sub(*eb);
                    }
                    (
                        k.clone(),
                        SpanSnapshot {
                            count: v.count.saturating_sub(e.count),
                            total_ns: v.total_ns.saturating_sub(e.total_ns),
                            max_ns: v.max_ns,
                            buckets,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Serialize as a three-key JSON object:
    /// `{"counters": {name: value, ...}, "gauges": {name: value, ...},
    /// "spans": {name: {...}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", crate::json_escape(k), v));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", crate::json_escape(k), v));
        }
        out.push_str("}, \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let buckets: Vec<String> = s.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"buckets\": [{}]}}",
                crate::json_escape(k),
                s.count,
                s.total_ns,
                s.max_ns,
                buckets.join(", ")
            ));
        }
        out.push_str("}}");
        out
    }
}
