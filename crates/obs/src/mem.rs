//! Memory-accounting gauges: the shared vocabulary for space metrics.
//!
//! Counters answer "how much work happened"; gauges answer "how big is
//! it right now". This module fixes the gauge *names* for the three
//! structures whose footprint dominates a data-exchange run — the
//! materialized instance, the solver/chase [`DeltaIndex`], and the
//! compiled-plan catalog — and provides the publishing helpers the
//! bench harness (and any long-running consumer) calls to stamp current
//! readings into the registry. The *values* come from cheap accessor
//! methods on the owning crates (`dx_relation::Instance::tuple_count`,
//! `DeltaIndex::mem_stats`, `PlanCatalog::stats`), keeping the
//! dependency direction intact: data structures know their sizes,
//! dx-obs knows how to export them.
//!
//! Publishing is gated on the `DX_OBS` toggle like [`crate::count!`];
//! with the gate off, [`publish`] is a single relaxed load.
//!
//! [`DeltaIndex`]: ../../dx_relation/delta/struct.DeltaIndex.html

use crate::registry::registry;

/// Standard gauge names (`mem.<structure>.<quantity>`).
pub mod names {
    /// Tuples materialized in the instance under measurement.
    pub const INSTANCE_TUPLES: &str = "mem.instance.tuples";
    /// Distinct labelled nulls in that instance.
    pub const INSTANCE_NULLS: &str = "mem.instance.nulls";
    /// Live (occupied) slots across a `DeltaIndex`'s relations.
    pub const DELTA_LIVE_SLOTS: &str = "mem.delta.live_slots";
    /// Posting-list entries across a `DeltaIndex`'s per-column maps.
    pub const DELTA_POSTING_ENTRIES: &str = "mem.delta.posting_entries";
    /// Sum of tuple refcounts held by a `DeltaIndex`.
    pub const DELTA_REFCOUNT_TOTAL: &str = "mem.delta.refcount_total";
    /// Compiled plans cached in the shared `PlanCatalog`.
    pub const CATALOG_ENTRIES: &str = "mem.catalog.entries";
    /// Estimated bytes held by the shared `PlanCatalog`.
    pub const CATALOG_EST_BYTES: &str = "mem.catalog.est_bytes";
}

/// Set one registry gauge (no-op while `DX_OBS` is off).
#[inline]
pub fn publish(name: &'static str, value: u64) {
    if crate::enabled() {
        registry().gauge(name).set(value);
    }
}

/// Set several registry gauges (no-op while `DX_OBS` is off).
pub fn publish_all(readings: &[(&'static str, u64)]) {
    if !crate::enabled() {
        return;
    }
    for &(name, value) in readings {
        registry().gauge(name).set(value);
    }
}
