//! First-order formulas over a relational vocabulary.

use crate::term::Term;
use dx_relation::{ConstId, FuncSym, RelSym, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order formula.
///
/// The core connectives are kept minimal; implication, bi-implication,
/// inequality and unique existence are provided as smart constructors that
/// desugar into the core. Atoms may contain Skolem terms ([`Term::App`]),
/// which is how SkSTD bodies express `y = f(z̄)` (§5).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The true constant.
    True,
    /// The false constant.
    False,
    /// A relational atom `R(t₁, …, tₖ)`.
    Atom(RelSym, Vec<Term>),
    /// An equality atom `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = `True`).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = `False`).
    Or(Vec<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    // ---------------------------------------------------------------- sugar

    /// The atom `R(args)`.
    pub fn atom(rel: &str, args: Vec<Term>) -> Formula {
        Formula::Atom(RelSym::new(rel), args)
    }

    /// The equality `a = b`.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// The inequality `a ≠ b` (sugar for `¬(a = b)`).
    pub fn neq(a: Term, b: Term) -> Formula {
        Formula::Not(Box::new(Formula::Eq(a, b)))
    }

    /// Negation (with double-negation elimination).
    #[allow(clippy::should_implement_trait)] // `not` is the paper-facing name; `ops::Not` would take `self`
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction, flattening nested `And`s and simplifying units.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Disjunction, flattening nested `Or`s and simplifying units.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// Implication `a → b` (sugar for `¬a ∨ b`).
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or([Formula::not(a), b])
    }

    /// Bi-implication `a ↔ b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::and([
            Formula::implies(a.clone(), b.clone()),
            Formula::implies(b, a),
        ])
    }

    /// Existential quantification; merges directly-nested blocks and drops
    /// empty blocks.
    pub fn exists(vars: impl Into<Vec<Var>>, f: Formula) -> Formula {
        let mut vars = vars.into();
        if vars.is_empty() {
            return f;
        }
        match f {
            Formula::Exists(inner_vars, inner) => {
                vars.extend(inner_vars);
                Formula::Exists(vars, inner)
            }
            other => Formula::Exists(vars, Box::new(other)),
        }
    }

    /// Universal quantification; merges directly-nested blocks and drops
    /// empty blocks.
    pub fn forall(vars: impl Into<Vec<Var>>, f: Formula) -> Formula {
        let mut vars = vars.into();
        if vars.is_empty() {
            return f;
        }
        match f {
            Formula::Forall(inner_vars, inner) => {
                vars.extend(inner_vars);
                Formula::Forall(vars, inner)
            }
            other => Formula::Forall(vars, Box::new(other)),
        }
    }

    /// Unique existence `∃! y. f(y)`, desugared as
    /// `∃y (f(y) ∧ ∀y′ (f[y↦y′] → y′ = y))` — used by the tiling sentence
    /// `β31` of Theorem 3.
    pub fn exists_unique(y: Var, f: Formula) -> Formula {
        let y2 = Var::new(&format!("{}__u", y.name()));
        let mut map = BTreeMap::new();
        map.insert(y, Term::Var(y2));
        let f2 = f.subst(&map);
        Formula::exists(
            vec![y],
            Formula::and([
                f.clone(),
                Formula::forall(
                    vec![y2],
                    Formula::implies(f2, Formula::Eq(Term::Var(y2), Term::Var(y))),
                ),
            ]),
        )
    }

    // ------------------------------------------------------------- analysis

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(_, args) => {
                for t in args {
                    for v in t.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for v in a.vars().into_iter().chain(b.vars()) {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                let newly: Vec<Var> = vars.iter().filter(|v| bound.insert(**v)).copied().collect();
                f.collect_free(bound, out);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// All constants mentioned (the `C_φ` of Lemma 2 / Prop 5).
    pub fn constants(&self) -> BTreeSet<ConstId> {
        let mut out = BTreeSet::new();
        self.walk_terms(&mut |t| {
            out.extend(t.consts());
        });
        out
    }

    /// All function symbols (with arities) mentioned.
    pub fn funcs(&self) -> BTreeSet<(FuncSym, usize)> {
        let mut out = BTreeSet::new();
        self.walk_terms(&mut |t| {
            out.extend(t.funcs());
        });
        out
    }

    /// All relation symbols mentioned, with arities.
    pub fn relations(&self) -> BTreeSet<(RelSym, usize)> {
        let mut out = BTreeSet::new();
        self.walk(&mut |f| {
            if let Formula::Atom(r, args) = f {
                out.insert((*r, args.len()));
            }
        });
        out
    }

    /// Quantifier rank (max nesting depth of quantifier *blocks* counted per
    /// variable, matching the Ehrenfeucht–Fraïssé argument of Lemma 2).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_rank()).max().unwrap_or(0)
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => vars.len() + f.quantifier_rank(),
        }
    }

    /// Visit every subformula (pre-order).
    pub fn walk(&self, visit: &mut impl FnMut(&Formula)) {
        visit(self);
        match self {
            Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => {}
            Formula::Not(f) => f.walk(visit),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.walk(visit);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.walk(visit),
        }
    }

    /// Visit every term (in atoms and equalities).
    pub fn walk_terms(&self, visit: &mut impl FnMut(&Term)) {
        self.walk(&mut |f| match f {
            Formula::Atom(_, args) => {
                for t in args {
                    visit(t);
                }
            }
            Formula::Eq(a, b) => {
                visit(a);
                visit(b);
            }
            _ => {}
        });
    }

    // --------------------------------------------------------- substitution

    /// Simultaneous substitution of free variables by terms.
    ///
    /// The substitution is *not* capture-avoiding in general: callers must
    /// rename bound variables apart first (all rewriting in this workspace —
    /// e.g. the Lemma 5 composition algorithm — renames before substituting).
    /// In debug builds we assert no capture can occur.
    pub fn subst(&self, map: &BTreeMap<Var, Term>) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(r, args) => {
                Formula::Atom(*r, args.iter().map(|t| t.subst(map)).collect())
            }
            Formula::Eq(a, b) => Formula::Eq(a.subst(map), b.subst(map)),
            Formula::Not(f) => Formula::Not(Box::new(f.subst(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                debug_assert!(
                    map.iter().all(|(v, t)| {
                        !vars.contains(v) && t.vars().iter().all(|tv| !vars.contains(tv))
                    }),
                    "substitution would capture a bound variable; rename apart first"
                );
                let inner = f.subst(map);
                match self {
                    Formula::Exists(_, _) => Formula::Exists(vars.clone(), Box::new(inner)),
                    _ => Formula::Forall(vars.clone(), Box::new(inner)),
                }
            }
        }
    }

    /// Rename *all* variables (free and bound) according to `map`.
    pub fn rename_vars(&self, map: &BTreeMap<Var, Var>) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(r, args) => {
                Formula::Atom(*r, args.iter().map(|t| t.rename(map)).collect())
            }
            Formula::Eq(a, b) => Formula::Eq(a.rename(map), b.rename(map)),
            Formula::Not(f) => Formula::Not(Box::new(f.rename_vars(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.rename_vars(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.rename_vars(map)).collect()),
            Formula::Exists(vars, f) => Formula::Exists(
                vars.iter().map(|v| *map.get(v).unwrap_or(v)).collect(),
                Box::new(f.rename_vars(map)),
            ),
            Formula::Forall(vars, f) => Formula::Forall(
                vars.iter().map(|v| *map.get(v).unwrap_or(v)).collect(),
                Box::new(f.rename_vars(map)),
            ),
        }
    }

    /// All variables (free and bound) occurring in the formula.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.walk(&mut |f| match f {
            Formula::Atom(_, args) => {
                for t in args {
                    out.extend(t.vars());
                }
            }
            Formula::Eq(a, b) => {
                out.extend(a.vars());
                out.extend(b.vars());
            }
            Formula::Exists(vars, _) | Formula::Forall(vars, _) => {
                out.extend(vars.iter().copied());
            }
            _ => {}
        });
        out
    }

    /// Replace every relational atom by `rewrite(rel, args)` when it returns
    /// `Some` (atoms yielding `None` are kept). This is the `β_R`
    /// substitution step of the Lemma 5 composition algorithm.
    pub fn rewrite_atoms(
        &self,
        rewrite: &mut impl FnMut(RelSym, &[Term]) -> Option<Formula>,
    ) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => self.clone(),
            Formula::Atom(r, args) => rewrite(*r, args).unwrap_or_else(|| self.clone()),
            Formula::Not(f) => Formula::Not(Box::new(f.rewrite_atoms(rewrite))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.rewrite_atoms(rewrite)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.rewrite_atoms(rewrite)).collect()),
            Formula::Exists(vars, f) => {
                Formula::Exists(vars.clone(), Box::new(f.rewrite_atoms(rewrite)))
            }
            Formula::Forall(vars, f) => {
                Formula::Forall(vars.clone(), Box::new(f.rewrite_atoms(rewrite)))
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(r, args) => {
                write!(f, "{r}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "!({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            // The whole quantified formula is parenthesized: the parser
            // gives quantifiers maximal scope, so the closing paren is what
            // delimits the body on re-parse.
            Formula::Exists(vars, inner) => {
                write!(f, "(exists ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ". {inner})")
            }
            Formula::Forall(vars, inner) => {
                write!(f, "(forall ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ". {inner})")
            }
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn and_or_simplification() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::and([Formula::True, Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::or([Formula::False, Formula::True]), Formula::True);
        let a = Formula::atom("R", vec![Term::var("x")]);
        assert_eq!(Formula::and([a.clone()]), a);
    }

    #[test]
    fn and_flattens() {
        let a = Formula::atom("R", vec![Term::var("x")]);
        let b = Formula::atom("S", vec![Term::var("y")]);
        let c = Formula::atom("T", vec![Term::var("z")]);
        let f = Formula::and([a.clone(), Formula::and([b.clone(), c.clone()])]);
        assert_eq!(f, Formula::And(vec![a, b, c]));
    }

    #[test]
    fn double_negation_eliminated() {
        let a = Formula::atom("R", vec![Term::var("x")]);
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
    }

    #[test]
    fn free_vars_respect_binding() {
        // exists y. R(x, y) — free: {x}
        let f = Formula::exists(
            vec![v("y")],
            Formula::atom("R", vec![Term::var("x"), Term::var("y")]),
        );
        let fv = f.free_vars();
        assert!(fv.contains(&v("x")));
        assert!(!fv.contains(&v("y")));
    }

    #[test]
    fn shadowing_respected() {
        // R(y) & exists y. S(y): y is free (from the first conjunct).
        let f = Formula::and([
            Formula::atom("R", vec![Term::var("y")]),
            Formula::exists(vec![v("y")], Formula::atom("S", vec![Term::var("y")])),
        ]);
        assert!(f.free_vars().contains(&v("y")));
    }

    #[test]
    fn quantifier_rank_counts_variables() {
        // exists x y. forall z. R(x,y,z) has rank 3.
        let f = Formula::exists(
            vec![v("x"), v("y")],
            Formula::forall(
                vec![v("z")],
                Formula::atom("R", vec![Term::var("x"), Term::var("y"), Term::var("z")]),
            ),
        );
        assert_eq!(f.quantifier_rank(), 3);
    }

    #[test]
    fn exists_merges_blocks() {
        let f = Formula::exists(
            vec![v("x")],
            Formula::exists(vec![v("y")], Formula::atom("R", vec![Term::var("x")])),
        );
        match f {
            Formula::Exists(vars, _) => assert_eq!(vars.len(), 2),
            _ => panic!("expected merged Exists block"),
        }
    }

    #[test]
    fn subst_free_only() {
        let mut map = BTreeMap::new();
        map.insert(v("x"), Term::cst("a"));
        let f = Formula::and([
            Formula::atom("R", vec![Term::var("x")]),
            Formula::exists(
                vec![v("z")],
                Formula::atom("S", vec![Term::var("x"), Term::var("z")]),
            ),
        ]);
        let g = f.subst(&map);
        assert!(!g.free_vars().contains(&v("x")));
        assert_eq!(g.constants().len(), 1);
    }

    #[test]
    fn exists_unique_desugars() {
        let f = Formula::exists_unique(v("y"), Formula::atom("P", vec![Term::var("y")]));
        // ∃y (P(y) ∧ ∀y! (P(y!) → y! = y))
        assert_eq!(f.quantifier_rank(), 2);
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn rewrite_atoms_substitutes() {
        // Replace R(t) by S(t) & S(t) everywhere.
        let f = Formula::exists(
            vec![v("x")],
            Formula::and([
                Formula::atom("R", vec![Term::var("x")]),
                Formula::atom("Keep", vec![Term::var("x")]),
            ]),
        );
        let g = f.rewrite_atoms(&mut |r, args| {
            (r == RelSym::new("R")).then(|| {
                Formula::and([
                    Formula::Atom(RelSym::new("S"), args.to_vec()),
                    Formula::Atom(RelSym::new("S"), args.to_vec()),
                ])
            })
        });
        let rels: BTreeSet<_> = g.relations().into_iter().map(|(r, _)| r.name()).collect();
        assert!(rels.contains("S") && rels.contains("Keep") && !rels.contains("R"));
    }

    #[test]
    fn relations_and_constants_collected() {
        let f = Formula::and([
            Formula::atom("R", vec![Term::cst("a"), Term::var("x")]),
            Formula::eq(Term::var("x"), Term::cst("b")),
        ]);
        assert_eq!(f.relations().len(), 1);
        assert_eq!(f.constants().len(), 2);
    }
}
