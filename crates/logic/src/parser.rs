//! A small recursive-descent parser for formulas and annotated rules.
//!
//! ## Syntax
//!
//! *Terms*: bare identifiers are **variables** (`x`, `paper`), quoted strings
//! and numbers are **constants** (`'alice'`, `42`), `f(t, …)` is a Skolem
//! **function application**.
//!
//! *Formulas* (binding strength, loosest first): `->` (right-assoc), `|`/`or`,
//! `&`/`and`/`,`, `!`/`not`, then atoms. Quantifiers `exists x y. φ` and
//! `forall x. φ` extend as far to the right as possible; parenthesize to
//! limit scope. Equality `t1 = t2`, inequality `t1 != t2`, constants `true`
//! and `false`.
//!
//! *Rules* (annotated STDs, as in the paper's §1 examples):
//!
//! ```text
//! Submissions(x:cl, z:op) <- Papers(x, y)
//! Reviews(x:cl, z:op)     <- Papers(x, y) & !exists r. Assignments(x, r)
//! ```
//!
//! Head atoms are comma-separated; each head position may carry an
//! annotation `:cl` / `:op` (`^cl` / `^op` also accepted; default `op`, the
//! open-world default of \[FKMP\]). The body separator is `<-` or `:-`.
//! [`parse_rules`] reads a `;`-separated list of rules.

use crate::formula::Formula;
use crate::term::Term;
use dx_relation::{Ann, RelSym, Var};
use std::fmt;

/// A parse error with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input where the error occurred.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A head atom of a parsed rule: relation, argument terms, per-position
/// annotations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedAtom {
    /// The target relation symbol.
    pub rel: RelSym,
    /// Argument terms (variables, constants, or Skolem applications).
    pub args: Vec<Term>,
    /// Per-position `op`/`cl` annotations.
    pub anns: Vec<Ann>,
}

/// A parsed rule `head₁, …, headₖ <- body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedRule {
    /// The (annotated) head atoms.
    pub head: Vec<ParsedAtom>,
    /// The body formula over the source vocabulary.
    pub body: Formula,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Number(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Amp,
    Pipe,
    Bang,
    Eq,
    Neq,
    Arrow,   // ->
    BodySep, // <- or :-
    Colon,   // : or ^
    Semi,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                // line comment
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Ok(out);
            }
            let start = self.pos;
            let b = self.bytes[self.pos];
            let tok = match b {
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Tok::Dot
                }
                b'&' => {
                    self.pos += 1;
                    Tok::Amp
                }
                b'|' => {
                    self.pos += 1;
                    Tok::Pipe
                }
                b';' => {
                    self.pos += 1;
                    Tok::Semi
                }
                b'^' => {
                    self.pos += 1;
                    Tok::Colon
                }
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Neq
                    } else {
                        self.pos += 1;
                        Tok::Bang
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Eq
                }
                b'-' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        Tok::Arrow
                    } else if self
                        .bytes
                        .get(self.pos + 1)
                        .is_some_and(|c| c.is_ascii_digit())
                    {
                        self.pos += 1;
                        let s = self.read_digits();
                        Tok::Number(format!("-{s}"))
                    } else {
                        return Err(self.error("unexpected '-'"));
                    }
                }
                b'<' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        Tok::BodySep
                    } else {
                        return Err(self.error("unexpected '<'"));
                    }
                }
                b':' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        Tok::BodySep
                    } else {
                        self.pos += 1;
                        Tok::Colon
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let s = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.error("unterminated quoted constant"));
                    }
                    let content = self.src[s..self.pos].to_string();
                    self.pos += 1; // closing quote
                    Tok::Quoted(content)
                }
                c if c.is_ascii_digit() => {
                    let s = self.read_digits();
                    Tok::Number(s)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let s = self.pos;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    Tok::Ident(self.src[s..self.pos].to_string())
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)));
                }
            };
            out.push((tok, start));
        }
    }

    fn read_digits(&mut self) -> String {
        let s = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.src[s..self.pos].to_string()
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
    end: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let toks = Lexer::new(src).tokens()?;
        let end = src.len();
        Ok(Parser { toks, i: 0, end })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|&(_, p)| p).unwrap_or(self.end)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos: self.pos(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    // ------------------------------------------------------------- formulas

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.implication()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.eat(&Tok::Pipe) || self.at_ident("or") && self.bump().is_some() {
            parts.push(self.conjunction()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Formula::or(parts))
        }
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        loop {
            if self.eat(&Tok::Amp) || self.eat(&Tok::Comma) {
                parts.push(self.unary()?);
            } else if self.at_ident("and") {
                self.bump();
                parts.push(self.unary()?);
            } else {
                break;
            }
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Formula::and(parts))
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat(&Tok::Bang) {
            return Ok(Formula::not(self.unary()?));
        }
        if self.at_ident("not") {
            self.bump();
            return Ok(Formula::not(self.unary()?));
        }
        if self.at_ident("exists") || self.at_ident("forall") {
            let is_exists = self.at_ident("exists");
            self.bump();
            let mut vars = Vec::new();
            while let Some(Tok::Ident(name)) = self.peek() {
                // Stop if this ident starts the body (no '.' yet but body
                // could start with a keyword like 'true').
                if name == "true" || name == "false" || name == "exists" || name == "forall" {
                    break;
                }
                // `exists x. φ` — a '.' terminates the var list; an ident
                // followed by '(' would be an atom, so the var list must end.
                if matches!(self.peek2(), Some(Tok::LParen)) {
                    break;
                }
                vars.push(Var::new(name));
                self.bump();
            }
            if vars.is_empty() {
                return Err(self.error("quantifier needs at least one variable"));
            }
            self.expect(&Tok::Dot, "'.' after quantified variables")?;
            let body = self.formula()?;
            return Ok(if is_exists {
                Formula::exists(vars, body)
            } else {
                Formula::forall(vars, body)
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(f)
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(s)) if s == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(_)) if matches!(self.peek2(), Some(Tok::LParen)) => {
                // Either a relational atom or a function term in an equality.
                let name = match self.bump() {
                    Some(Tok::Ident(s)) => s,
                    _ => unreachable!(),
                };
                self.bump(); // '('
                let args = self.term_list()?;
                self.expect(&Tok::RParen, "')'")?;
                // Lookahead: equality makes it a function term.
                if self.peek() == Some(&Tok::Eq) || self.peek() == Some(&Tok::Neq) {
                    let lhs = Term::app(&name, args);
                    self.finish_equality(lhs)
                } else {
                    Ok(Formula::atom(&name, args))
                }
            }
            Some(Tok::Ident(_)) | Some(Tok::Quoted(_)) | Some(Tok::Number(_)) => {
                let lhs = self.term()?;
                self.finish_equality(lhs)
            }
            other => Err(self.error(format!("expected formula, found {other:?}"))),
        }
    }

    fn finish_equality(&mut self, lhs: Term) -> Result<Formula, ParseError> {
        if self.eat(&Tok::Eq) {
            let rhs = self.term()?;
            Ok(Formula::Eq(lhs, rhs))
        } else if self.eat(&Tok::Neq) {
            let rhs = self.term()?;
            Ok(Formula::neq(lhs, rhs))
        } else {
            Err(self.error("expected '=' or '!=' after term"))
        }
    }

    // ---------------------------------------------------------------- terms

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Quoted(s)) => Ok(Term::cst(&s)),
            Some(Tok::Number(s)) => Ok(Term::cst(&s)),
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let args = self.term_list()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Term::app(&name, args))
                } else {
                    Ok(Term::var(&name))
                }
            }
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ---------------------------------------------------------------- rules

    fn head_atom(&mut self) -> Result<ParsedAtom, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.error(format!("expected head atom, found {other:?}"))),
        };
        self.expect(&Tok::LParen, "'(' after head relation")?;
        let mut args = Vec::new();
        let mut anns = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.term()?);
                if self.eat(&Tok::Colon) {
                    match self.bump() {
                        Some(Tok::Ident(a)) if a == "cl" => anns.push(Ann::Closed),
                        Some(Tok::Ident(a)) if a == "op" => anns.push(Ann::Open),
                        other => {
                            return Err(
                                self.error(format!("expected 'cl' or 'op', found {other:?}"))
                            )
                        }
                    }
                    if self.peek() == Some(&Tok::Colon) {
                        return Err(self.error(
                            "duplicate annotation: each head position takes a single ':cl' or ':op'",
                        ));
                    }
                } else {
                    anns.push(Ann::Open);
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(ParsedAtom {
            rel: RelSym::new(&name),
            args,
            anns,
        })
    }

    fn rule(&mut self) -> Result<ParsedRule, ParseError> {
        let mut head = vec![self.head_atom()?];
        while self.eat(&Tok::Comma) {
            head.push(self.head_atom()?);
        }
        self.expect(&Tok::BodySep, "'<-' or ':-'")?;
        let body = self.formula()?;
        Ok(ParsedRule { head, body })
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }
}

/// Parse a single formula.
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(src)?;
    let f = p.formula()?;
    if !p.at_end() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

/// Parse a single rule `head <- body`.
pub fn parse_rule(src: &str) -> Result<ParsedRule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule()?;
    if !p.at_end() {
        return Err(p.error("trailing input after rule"));
    }
    Ok(r)
}

/// Parse a ground instance from a fact list, e.g.
/// `E(a, b). E(b, c). V(a).` — in fact position, bare identifiers are
/// **constants** (facts have no variables). Facts are terminated by `.` or
/// `;`; `#` comments are skipped.
pub fn parse_facts(src: &str) -> Result<dx_relation::Instance, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = dx_relation::Instance::new();
    while !p.at_end() {
        let name = match p.bump() {
            Some(Tok::Ident(s)) => s,
            other => {
                return Err(p.error(format!("expected a fact, found {other:?}")));
            }
        };
        p.expect(&Tok::LParen, "'(' after relation name")?;
        let mut vals: Vec<dx_relation::Value> = Vec::new();
        if p.peek() != Some(&Tok::RParen) {
            loop {
                match p.bump() {
                    Some(Tok::Ident(s)) | Some(Tok::Quoted(s)) | Some(Tok::Number(s)) => {
                        vals.push(dx_relation::Value::c(&s));
                    }
                    other => return Err(p.error(format!("expected a constant, found {other:?}"))),
                }
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        p.expect(&Tok::RParen, "')'")?;
        out.insert(
            dx_relation::RelSym::new(&name),
            dx_relation::Tuple::new(vals),
        );
        // Fact separator: '.' or ';' (optional before EOF).
        if !(p.eat(&Tok::Dot) || p.eat(&Tok::Semi) || p.at_end()) {
            return Err(p.error("expected '.' or ';' between facts"));
        }
    }
    Ok(out)
}

/// Parse a `;`-separated list of rules (trailing `;` allowed, `#` comments
/// skipped).
pub fn parse_rules(src: &str) -> Result<Vec<ParsedRule>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.rule()?);
        if !p.eat(&Tok::Semi) {
            break;
        }
    }
    if !p.at_end() {
        return Err(p.error("trailing input after rules"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_equalities() {
        let f = parse_formula("R(x, 'a', 42)").unwrap();
        assert_eq!(
            f,
            Formula::atom("R", vec![Term::var("x"), Term::cst("a"), Term::cst("42")])
        );
        let g = parse_formula("x = 'b'").unwrap();
        assert_eq!(g, Formula::eq(Term::var("x"), Term::cst("b")));
        let h = parse_formula("x != y").unwrap();
        assert_eq!(h, Formula::neq(Term::var("x"), Term::var("y")));
    }

    #[test]
    fn precedence_and_connectives() {
        // a | b & c  ==  a | (b & c)
        let f = parse_formula("A(x) | B(x) & C(x)").unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            other => panic!("expected Or, got {other}"),
        }
        // implication is right-associative and loosest
        let g = parse_formula("A(x) -> B(x) -> C(x)").unwrap();
        // ¬A ∨ (¬B ∨ C)
        assert!(matches!(g, Formula::Or(_)));
    }

    #[test]
    fn quantifiers_maximal_scope() {
        let f = parse_formula("exists x y. R(x, y) & S(y)").unwrap();
        match &f {
            Formula::Exists(vars, inner) => {
                assert_eq!(vars.len(), 2);
                assert!(matches!(**inner, Formula::And(_)));
            }
            other => panic!("expected Exists, got {other}"),
        }
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn negation_and_keywords() {
        let f = parse_formula("!exists r. Assignments(x, r)").unwrap();
        assert!(matches!(f, Formula::Not(_)));
        let g = parse_formula("not (A(x) and B(x))").unwrap();
        assert!(matches!(g, Formula::Not(_)));
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
    }

    #[test]
    fn function_terms_in_equalities() {
        let f = parse_formula("y = f(x, 'a')").unwrap();
        assert_eq!(
            f,
            Formula::eq(
                Term::var("y"),
                Term::app("f", vec![Term::var("x"), Term::cst("a")])
            )
        );
        // Function term on the left requires lookahead past ')'.
        let g = parse_formula("f(x) = y").unwrap();
        assert_eq!(
            g,
            Formula::eq(Term::app("f", vec![Term::var("x")]), Term::var("y"))
        );
    }

    #[test]
    fn parses_the_papers_intro_rules() {
        let rules = parse_rules(
            "Submissions(x:cl, z:op) <- Papers(x, y);\n\
             Reviews(x:cl, z:cl)     <- Assignments(x, y);\n\
             Reviews(x:cl, z:op)     <- Papers(x, y) & !exists r. Assignments(x, r);",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].head[0].rel, RelSym::new("Submissions"));
        assert_eq!(rules[0].head[0].anns, vec![Ann::Closed, Ann::Open]);
        assert_eq!(rules[1].head[0].anns, vec![Ann::Closed, Ann::Closed]);
        assert!(matches!(rules[2].body, Formula::And(_)));
    }

    #[test]
    fn multi_atom_heads() {
        // Theorem 2's reduction rule: C(x:op,y:op,z:op), B(x:cl), G(y:cl), H(z:cl) :- N(w)
        let r = parse_rule("C(x:op, y:op, z:op), B(x:cl), G(y:cl), H(z:cl) :- N(w)").unwrap();
        assert_eq!(r.head.len(), 4);
        assert_eq!(r.head[0].anns, vec![Ann::Open, Ann::Open, Ann::Open]);
        assert_eq!(r.head[1].anns, vec![Ann::Closed]);
    }

    #[test]
    fn skolem_heads() {
        // SkSTD example (8) of the paper.
        let r = parse_rule("T(f(em):cl, em:cl, g(em, proj):op) <- S(em, proj)").unwrap();
        assert_eq!(r.head[0].args.len(), 3);
        assert!(matches!(r.head[0].args[0], Term::App(_, _)));
        assert_eq!(r.head[0].anns, vec![Ann::Closed, Ann::Closed, Ann::Open]);
    }

    #[test]
    fn caret_annotation_and_default() {
        let r = parse_rule("R(x^cl, z) <- E(x, y)").unwrap();
        assert_eq!(r.head[0].anns, vec![Ann::Closed, Ann::Open]);
    }

    #[test]
    fn comments_and_whitespace() {
        let rules =
            parse_rules("# copy rule\nRp(x:cl) <- R(x); # another\nSp(x:op) <- S(x);").unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn parse_facts_ground_instances() {
        let i = parse_facts("E(a, b). E(b, c). V(a). Grade(bob, 42);").unwrap();
        assert_eq!(i.tuple_count(), 4);
        assert!(i.contains(
            dx_relation::RelSym::new("E"),
            &dx_relation::Tuple::from_names(&["a", "b"])
        ));
        assert!(i.contains(
            dx_relation::RelSym::new("Grade"),
            &dx_relation::Tuple::from_names(&["bob", "42"])
        ));
        assert!(i.is_ground());
        // Nullary facts and empty input work.
        assert_eq!(parse_facts("").unwrap().tuple_count(), 0);
        let n = parse_facts("Flag().").unwrap();
        assert_eq!(
            n.relation(dx_relation::RelSym::new("Flag")).unwrap().len(),
            1
        );
        // Errors: missing separator, variables make no sense here.
        assert!(parse_facts("E(a, b) E(c, d)").is_err());
        assert!(parse_facts("E(a,").is_err());
    }

    #[test]
    fn error_positions() {
        let e = parse_formula("R(x").unwrap_err();
        assert!(e.msg.contains("')'"), "got: {e}");
        assert!(parse_formula("R(x) R(y)").is_err());
        assert!(parse_rule("R(x) <- ").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let cases = [
            "exists x y. (R(x, y) & !(S(y)))",
            "forall x. ((A(x) | B(x)) -> exists z. C(x, z))",
            "R('a', x) & x != 'b'",
            "y = f(x) & g(y, y) = 'c'",
        ];
        for src in cases {
            let f1 = parse_formula(src).unwrap();
            let printed = f1.to_string();
            let f2 = parse_formula(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(f1, f2, "round-trip mismatch for {src}");
        }
    }
}
