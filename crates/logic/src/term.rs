//! First-order terms: variables, constants, and Skolem-function applications.

use dx_relation::{ConstId, FuncSym, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order term.
///
/// Plain STDs only use variables and constants; Skolemized STDs (§5 of the
/// paper) additionally use applications `f(t̄)` of function symbols. Nested
/// applications are supported (the composition algorithm of Lemma 5 can
/// produce them when `ū_j` already contains function terms).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(ConstId),
    /// A function application `f(t₁, …, tₖ)` (Skolem term).
    App(FuncSym, Vec<Term>),
}

impl Term {
    /// Shortcut: the variable named `name`.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Shortcut: the constant named `name`.
    pub fn cst(name: &str) -> Term {
        Term::Const(ConstId::new(name))
    }

    /// Shortcut: the numeric constant `n`.
    pub fn num(n: i64) -> Term {
        Term::Const(ConstId::num(n))
    }

    /// Shortcut: the application `f(args)`.
    pub fn app(f: &str, args: Vec<Term>) -> Term {
        Term::App(FuncSym::new(f), args)
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// All variables occurring in the term (including under applications).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::Const(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// All constants occurring in the term.
    pub fn consts(&self) -> BTreeSet<ConstId> {
        let mut out = BTreeSet::new();
        self.collect_consts(&mut out);
        out
    }

    fn collect_consts(&self, out: &mut BTreeSet<ConstId>) {
        match self {
            Term::Var(_) => {}
            Term::Const(c) => {
                out.insert(*c);
            }
            Term::App(_, args) => {
                for a in args {
                    a.collect_consts(out);
                }
            }
        }
    }

    /// All function symbols (with arities) occurring in the term.
    pub fn funcs(&self) -> BTreeSet<(FuncSym, usize)> {
        let mut out = BTreeSet::new();
        self.collect_funcs(&mut out);
        out
    }

    fn collect_funcs(&self, out: &mut BTreeSet<(FuncSym, usize)>) {
        if let Term::App(f, args) = self {
            out.insert((*f, args.len()));
            for a in args {
                a.collect_funcs(out);
            }
        }
    }

    /// Does the term mention any function symbol?
    pub fn has_funcs(&self) -> bool {
        matches!(self, Term::App(_, _))
            || match self {
                Term::App(_, args) => args.iter().any(|a| a.has_funcs()),
                _ => false,
            }
    }

    /// Substitute variables by terms, simultaneously.
    pub fn subst(&self, map: &std::collections::BTreeMap<Var, Term>) -> Term {
        match self {
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) => self.clone(),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.subst(map)).collect()),
        }
    }

    /// Rename variables according to `map` (variables not in the map are
    /// kept).
    pub fn rename(&self, map: &std::collections::BTreeMap<Var, Var>) -> Term {
        match self {
            Term::Var(v) => Term::Var(*map.get(v).unwrap_or(v)),
            Term::Const(_) => self.clone(),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.rename(map)).collect()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => {
                // Quote constants so the printer output re-parses as a constant.
                write!(f, "'{c}'")
            }
            Term::App(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn var_collection_under_apps() {
        let t = Term::app(
            "f",
            vec![Term::var("x"), Term::app("g", vec![Term::var("y")])],
        );
        let vars = t.vars();
        assert!(vars.contains(&Var::new("x")) && vars.contains(&Var::new("y")));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn func_collection_with_arities() {
        let t = Term::app("f", vec![Term::var("x"), Term::app("g", vec![])]);
        let fs = t.funcs();
        assert!(fs.contains(&(FuncSym::new("f"), 2)));
        assert!(fs.contains(&(FuncSym::new("g"), 0)));
    }

    #[test]
    fn substitution() {
        let mut map = BTreeMap::new();
        map.insert(Var::new("x"), Term::cst("a"));
        let t = Term::app("f", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(
            t.subst(&map),
            Term::app("f", vec![Term::cst("a"), Term::var("y")])
        );
    }

    #[test]
    fn rename() {
        let mut map = BTreeMap::new();
        map.insert(Var::new("x"), Var::new("x2"));
        let t = Term::app("f", vec![Term::var("x")]);
        assert_eq!(t.rename(&map), Term::app("f", vec![Term::var("x2")]));
    }

    #[test]
    fn display_quotes_constants() {
        assert_eq!(Term::cst("a").to_string(), "'a'");
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(
            Term::app("f", vec![Term::var("x"), Term::num(3)]).to_string(),
            "f(x, '3')"
        );
    }
}
