//! Queries: formulas with a designated tuple of output variables.

use crate::classify::{classify, QueryClass};
use crate::eval::Evaluator;
use crate::formula::Formula;
use dx_relation::{Instance, Relation, Tuple, Value, Var};
use std::fmt;

/// A relational query `Q(x̄) = φ(x̄)`.
///
/// `head` lists the output variables in order; a query with an empty head is
/// Boolean. All free variables of the formula must appear in the head.
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    /// Output variables, in answer-tuple order.
    pub head: Vec<Var>,
    /// The defining formula.
    pub formula: Formula,
}

impl Query {
    /// Build a query; panics if the formula has free variables outside the
    /// head (such a query has no well-defined answer relation).
    pub fn new(head: impl Into<Vec<Var>>, formula: Formula) -> Self {
        let head = head.into();
        let fv = formula.free_vars();
        assert!(
            fv.iter().all(|v| head.contains(v)),
            "free variables {:?} not covered by head {:?}",
            fv,
            head
        );
        Query { head, formula }
    }

    /// Build a Boolean query (sentence).
    pub fn boolean(formula: Formula) -> Self {
        Query::new(Vec::<Var>::new(), formula)
    }

    /// Parse the formula from source and use `heads` as the output variables.
    pub fn parse(heads: &[&str], src: &str) -> Result<Self, crate::parser::ParseError> {
        let formula = crate::parser::parse_formula(src)?;
        Ok(Query::new(
            heads.iter().map(|h| Var::new(h)).collect::<Vec<_>>(),
            formula,
        ))
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Most specific syntactic class of the defining formula.
    pub fn class(&self) -> QueryClass {
        classify(&self.formula)
    }

    /// Evaluate over `instance` with nulls as atomic values (naive
    /// semantics). Quantifiers range over the active domain plus the
    /// formula's constants.
    pub fn answers(&self, instance: &Instance) -> Relation {
        let ev = Evaluator::for_formula(instance, &self.formula);
        ev.answers(&self.formula, &self.head)
    }

    /// Naive evaluation `Q_naive(T)`: evaluate treating nulls as values, keep
    /// only null-free answers (Imieliński–Lipski). For positive queries this
    /// computes the certain answers `□Q(T)` of the incomplete database `T`,
    /// and — by Proposition 3 — `certain_Σα(Q, S)` when `T = CSol(S)`.
    pub fn naive_certain_answers(&self, instance: &Instance) -> Relation {
        let all = self.answers(instance);
        Relation::from_tuples(self.arity(), all.iter().filter(|t| t.is_ground()).cloned())
    }

    /// Does `tuple` belong to `Q(instance)` under naive evaluation?
    pub fn holds_on(&self, instance: &Instance, tuple: &Tuple) -> bool {
        assert_eq!(tuple.arity(), self.arity(), "answer-tuple arity mismatch");
        let ev = Evaluator::for_formula(instance, &self.formula);
        let mut asg = crate::eval::Assignment::new();
        for (v, val) in self.head.iter().zip(tuple.iter()) {
            asg.bind(*v, val);
        }
        ev.eval(&self.formula, &mut asg)
    }

    /// Evaluate a Boolean query.
    pub fn holds_boolean(&self, instance: &Instance) -> bool {
        assert!(self.is_boolean(), "boolean query expected");
        self.holds_on(instance, &Tuple::new(Vec::<Value>::new()))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") := {}", self.formula)
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn instance() -> Instance {
        let mut i = Instance::new();
        i.insert_names("R", &["a", "b"]);
        i.insert_names("R", &["a", "c"]);
        i.insert(
            dx_relation::RelSym::new("R"),
            Tuple::new(vec![Value::c("d"), Value::null(0)]),
        );
        i
    }

    #[test]
    fn answers_and_naive_certain() {
        let q = Query::new(
            vec![Var::new("x"), Var::new("y")],
            Formula::atom("R", vec![Term::var("x"), Term::var("y")]),
        );
        let i = instance();
        assert_eq!(q.answers(&i).len(), 3);
        // Naive certain answers drop the tuple with the null.
        assert_eq!(q.naive_certain_answers(&i).len(), 2);
    }

    #[test]
    fn boolean_queries() {
        let q = Query::boolean(Formula::exists(
            vec![Var::new("x")],
            Formula::atom("R", vec![Term::var("x"), Term::cst("b")]),
        ));
        assert!(q.is_boolean());
        assert!(q.holds_boolean(&instance()));
        let q2 = Query::boolean(Formula::exists(
            vec![Var::new("x")],
            Formula::atom("R", vec![Term::var("x"), Term::cst("nope")]),
        ));
        assert!(!q2.holds_boolean(&instance()));
    }

    #[test]
    fn holds_on_single_tuple() {
        let q = Query::new(
            vec![Var::new("x")],
            Formula::exists(
                vec![Var::new("y")],
                Formula::atom("R", vec![Term::var("x"), Term::var("y")]),
            ),
        );
        let i = instance();
        assert!(q.holds_on(&i, &Tuple::from_names(&["a"])));
        assert!(!q.holds_on(&i, &Tuple::from_names(&["b"])));
    }

    #[test]
    #[should_panic(expected = "free variables")]
    fn uncovered_free_var_panics() {
        Query::new(
            vec![Var::new("x")],
            Formula::atom("R", vec![Term::var("x"), Term::var("y")]),
        );
    }

    #[test]
    fn classification_passthrough() {
        let q = Query::new(
            vec![Var::new("x")],
            Formula::exists(
                vec![Var::new("y")],
                Formula::atom("R", vec![Term::var("x"), Term::var("y")]),
            ),
        );
        assert_eq!(q.class(), QueryClass::Conjunctive);
    }
}
