//! Stratified Datalog — a PTIME query language that properly contains
//! positive FO.
//!
//! The paper's §6 notes that the first trichotomy theorem (Theorem 3) "is
//! true for any query language of PTIME data complexity that contains FO".
//! This module supplies such a language beyond FO itself: **Datalog with
//! stratified negation and (in)equality constraints**, evaluated by the
//! standard semi-naive fixpoint per stratum. Its data complexity is PTIME;
//! recursion (e.g. transitive closure) is not FO-expressible, so the
//! certain-answer engines of `dx-core` genuinely exercise the extension.
//!
//! Evaluation treats nulls as atomic values — exactly the paper's naive
//! semantics (§2). For **negation-free, inequality-free** programs the query
//! is preserved under homomorphisms of instances, so naive evaluation of the
//! program on the canonical solution computes certain answers for every
//! annotation (the monotone generalization of Proposition 3); the program
//! classification methods ([`DatalogProgram::is_hom_preserved`],
//! [`DatalogProgram::is_monotone`]) let callers pick the right regime.
//!
//! Syntax (reusing the workspace rule parser): rules separated by `;`,
//! bodies are conjunctions of possibly-negated atoms and (in)equalities:
//!
//! ```text
//! Path(x, y)  <- DlEdge(x, y);
//! Path(x, z)  <- Path(x, y) & DlEdge(y, z);
//! Isolated(x) <- DlNode(x) & !exists y. DlEdge(x, y)   # NOT Datalog: rejected
//! ```
//!
//! Negation applies to whole atoms only (`!DlEdge(x, y)`); quantifiers,
//! disjunction and function terms in rules are rejected with a
//! [`DatalogError`].

use crate::formula::Formula;
use crate::parser::{self, ParseError};
use crate::term::Term;
use dx_relation::{ConstId, Instance, RelSym, Relation, Tuple, Value, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An argument of a Datalog atom: a variable or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DlArg {
    /// A Datalog variable.
    Var(Var),
    /// An interned constant.
    Const(ConstId),
}

impl DlArg {
    fn as_var(&self) -> Option<Var> {
        match self {
            DlArg::Var(v) => Some(*v),
            DlArg::Const(_) => None,
        }
    }
}

impl fmt::Display for DlArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlArg::Var(v) => write!(f, "{v}"),
            DlArg::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A Datalog atom `R(a₁, …, aₙ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlAtom {
    /// The relation symbol.
    pub rel: RelSym,
    /// Arguments (variables or constants).
    pub args: Vec<DlArg>,
}

impl DlAtom {
    /// Build an atom from a relation name and arguments.
    pub fn new(rel: impl Into<RelSym>, args: impl Into<Vec<DlArg>>) -> Self {
        DlAtom {
            rel: rel.into(),
            args: args.into(),
        }
    }

    fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|a| a.as_var())
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// An (in)equality constraint between two arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlComparison {
    /// Left argument.
    pub left: DlArg,
    /// Right argument.
    pub right: DlArg,
    /// `true` for `=`, `false` for `≠`.
    pub equal: bool,
}

/// A Datalog rule `head :- pos₁, …, ¬neg₁, …, comparisons`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlRule {
    /// The head atom (its relation is an IDB predicate).
    pub head: DlAtom,
    /// Positive body atoms.
    pub pos: Vec<DlAtom>,
    /// Negated body atoms (must be over a strictly lower stratum).
    pub neg: Vec<DlAtom>,
    /// Equality / inequality constraints.
    pub comparisons: Vec<DlComparison>,
}

impl DlRule {
    /// Safety check: every variable of the head, of a negated atom, and of a
    /// comparison must occur in some positive body atom.
    fn check_safety(&self) -> Result<(), DatalogError> {
        let bound: BTreeSet<Var> = self.pos.iter().flat_map(|a| a.vars()).collect();
        let mut demand: Vec<(Var, &'static str)> = Vec::new();
        demand.extend(self.head.vars().map(|v| (v, "head")));
        for a in &self.neg {
            demand.extend(a.vars().map(|v| (v, "negated atom")));
        }
        for c in &self.comparisons {
            for a in [&c.left, &c.right] {
                if let Some(v) = a.as_var() {
                    demand.push((v, "comparison"));
                }
            }
        }
        for (v, site) in demand {
            if !bound.contains(&v) {
                return Err(DatalogError::Unsafe {
                    rule: self.to_string(),
                    var: v,
                    site,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for DlRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- ", self.head)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            Ok(())
        };
        for a in &self.pos {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for a in &self.neg {
            sep(f)?;
            write!(f, "!{a}")?;
        }
        for c in &self.comparisons {
            sep(f)?;
            write!(
                f,
                "{} {} {}",
                c.left,
                if c.equal { "=" } else { "!=" },
                c.right
            )?;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// Errors building or parsing a Datalog program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// The rule syntax parsed but is not Datalog (quantifier, disjunction,
    /// function term, nested negation, …).
    NotDatalog {
        /// Which construct was rejected.
        what: String,
    },
    /// A parse error from the shared rule parser.
    Parse(ParseError),
    /// An unsafe rule: a variable outside every positive atom.
    Unsafe {
        /// Rendering of the offending rule.
        rule: String,
        /// The unbound variable.
        var: Var,
        /// Where it was demanded.
        site: &'static str,
    },
    /// Negation through recursion: no stratification exists.
    NotStratifiable {
        /// A predicate on a negative cycle.
        witness: RelSym,
    },
    /// Two rules (or a rule and the EDB) disagree on a predicate's arity.
    ArityMismatch {
        /// The predicate.
        rel: RelSym,
        /// First arity seen.
        expected: usize,
        /// Conflicting arity.
        got: usize,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::NotDatalog { what } => write!(f, "not a Datalog construct: {what}"),
            DatalogError::Parse(e) => write!(f, "{e}"),
            DatalogError::Unsafe { rule, var, site } => {
                write!(f, "unsafe rule `{rule}`: variable {var} in {site} is not bound by a positive atom")
            }
            DatalogError::NotStratifiable { witness } => {
                write!(
                    f,
                    "program is not stratifiable: {witness} depends negatively on itself"
                )
            }
            DatalogError::ArityMismatch { rel, expected, got } => {
                write!(f, "arity mismatch for {rel}: {expected} vs {got}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<ParseError> for DatalogError {
    fn from(e: ParseError) -> Self {
        DatalogError::Parse(e)
    }
}

/// A stratified Datalog program.
#[derive(Clone, Debug)]
pub struct DatalogProgram {
    /// The rules, in source order.
    pub rules: Vec<DlRule>,
    /// IDB predicates (those defined by rule heads) with their arities.
    idb: BTreeMap<RelSym, usize>,
    /// The stratum number of each IDB predicate (0-based).
    strata: BTreeMap<RelSym, usize>,
    /// Number of strata.
    stratum_count: usize,
}

impl DatalogProgram {
    /// Build (and validate) a program from rules: checks arities, safety,
    /// and stratifiability.
    pub fn new(rules: Vec<DlRule>) -> Result<Self, DatalogError> {
        // Arity table across heads and bodies.
        let mut arity: BTreeMap<RelSym, usize> = BTreeMap::new();
        let mut check = |rel: RelSym, n: usize| -> Result<(), DatalogError> {
            match arity.get(&rel) {
                Some(&m) if m != n => Err(DatalogError::ArityMismatch {
                    rel,
                    expected: m,
                    got: n,
                }),
                _ => {
                    arity.insert(rel, n);
                    Ok(())
                }
            }
        };
        for r in &rules {
            check(r.head.rel, r.head.args.len())?;
            for a in r.pos.iter().chain(&r.neg) {
                check(a.rel, a.args.len())?;
            }
            r.check_safety()?;
        }
        let idb: BTreeMap<RelSym, usize> = rules
            .iter()
            .map(|r| (r.head.rel, r.head.args.len()))
            .collect();

        // Stratification by fixpoint iteration: stratum(p) ≥ stratum(q) for
        // positive q in a p-rule; stratum(p) ≥ stratum(q)+1 for negated q.
        // Only IDB predicates matter (EDB is stratum 0 and never negated
        // "through" anything).
        let mut strata: BTreeMap<RelSym, usize> = idb.keys().map(|&r| (r, 0)).collect();
        let bound = idb.len().max(1);
        let mut changed = true;
        let mut rounds = 0usize;
        while changed {
            changed = false;
            rounds += 1;
            for r in &rules {
                let head_rel = r.head.rel;
                let mut need = strata[&head_rel];
                for a in &r.pos {
                    if let Some(&s) = strata.get(&a.rel) {
                        need = need.max(s);
                    }
                }
                for a in &r.neg {
                    if let Some(&s) = strata.get(&a.rel) {
                        need = need.max(s + 1);
                    }
                }
                if need > strata[&head_rel] {
                    if need > bound {
                        return Err(DatalogError::NotStratifiable { witness: head_rel });
                    }
                    strata.insert(head_rel, need);
                    changed = true;
                }
            }
            if rounds > bound * bound + 2 {
                // Defensive: the per-update bound above already catches
                // negative cycles; this cannot fire.
                let witness = *idb.keys().next().expect("non-empty idb");
                return Err(DatalogError::NotStratifiable { witness });
            }
        }
        let stratum_count = strata.values().copied().max().map_or(0, |m| m + 1);
        Ok(DatalogProgram {
            rules,
            idb,
            strata,
            stratum_count,
        })
    }

    /// Parse a program in the workspace rule syntax (rules separated by
    /// `;`). Head annotations are not part of Datalog and are rejected, as
    /// are quantifiers, disjunction and function terms.
    pub fn parse(src: &str) -> Result<Self, DatalogError> {
        let parsed = parser::parse_rules(src)?;
        let mut rules = Vec::new();
        for pr in parsed {
            if pr.head.len() != 1 {
                return Err(DatalogError::NotDatalog {
                    what: format!(
                        "{}-atom rule head (Datalog heads are single atoms)",
                        pr.head.len()
                    ),
                });
            }
            let head_atom = &pr.head[0];
            let head = DlAtom {
                rel: head_atom.rel,
                args: head_atom
                    .args
                    .iter()
                    .map(term_to_arg)
                    .collect::<Result<_, _>>()?,
            };
            let mut rule = DlRule {
                head,
                pos: Vec::new(),
                neg: Vec::new(),
                comparisons: Vec::new(),
            };
            flatten_body(&pr.body, &mut rule)?;
            rules.push(rule);
        }
        Self::new(rules)
    }

    /// The IDB predicates (defined by heads), with arities.
    pub fn idb(&self) -> impl Iterator<Item = (RelSym, usize)> + '_ {
        self.idb.iter().map(|(&r, &a)| (r, a))
    }

    /// The EDB predicates (mentioned in bodies, never in heads), with
    /// arities.
    pub fn edb(&self) -> BTreeMap<RelSym, usize> {
        let mut out = BTreeMap::new();
        for r in &self.rules {
            for a in r.pos.iter().chain(&r.neg) {
                if !self.idb.contains_key(&a.rel) {
                    out.insert(a.rel, a.args.len());
                }
            }
        }
        out
    }

    /// Stratum of an IDB predicate.
    pub fn stratum_of(&self, rel: RelSym) -> Option<usize> {
        self.strata.get(&rel).copied()
    }

    /// Number of strata (0 for the empty program).
    pub fn stratum_count(&self) -> usize {
        self.stratum_count
    }

    /// All constants mentioned in rules (heads, bodies, comparisons).
    pub fn constants(&self) -> BTreeSet<ConstId> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            let atoms = std::iter::once(&r.head).chain(&r.pos).chain(&r.neg);
            for a in atoms {
                for arg in &a.args {
                    if let DlArg::Const(c) = arg {
                        out.insert(*c);
                    }
                }
            }
            for c in &r.comparisons {
                for arg in [&c.left, &c.right] {
                    if let DlArg::Const(cc) = arg {
                        out.insert(*cc);
                    }
                }
            }
        }
        out
    }

    /// Does any rule use negation?
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| !r.neg.is_empty())
    }

    /// Does any rule use an inequality constraint?
    pub fn has_neq(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.comparisons.iter().any(|c| !c.equal))
    }

    /// Is every query defined by this program preserved under homomorphisms
    /// of instances (negation-free and inequality-free)? If so, naive
    /// evaluation on the canonical solution computes certain answers for
    /// every annotation (the monotone Proposition 3).
    pub fn is_hom_preserved(&self) -> bool {
        !self.has_negation() && !self.has_neq()
    }

    /// Is the program monotone (negation-free — inequalities are fine:
    /// adding tuples never removes derivations)?
    pub fn is_monotone(&self) -> bool {
        !self.has_negation()
    }

    /// Evaluate the program on an EDB instance by the semi-naive fixpoint,
    /// stratum by stratum. Returns the full instance: the EDB plus all
    /// derived IDB relations (IDB relations are always present, possibly
    /// empty). Nulls are treated as atomic values (naive semantics).
    pub fn eval(&self, edb: &Instance) -> Instance {
        let mut db = edb.clone();
        for (&rel, &arity) in &self.idb {
            db.declare(rel, arity);
        }
        for stratum in 0..self.stratum_count {
            let stratum_rules: Vec<&DlRule> = self
                .rules
                .iter()
                .filter(|r| self.strata[&r.head.rel] == stratum)
                .collect();
            let recursive: BTreeSet<RelSym> = stratum_rules.iter().map(|r| r.head.rel).collect();
            // Round 0: full evaluation of every rule.
            let mut delta: BTreeMap<RelSym, Relation> = BTreeMap::new();
            for rule in &stratum_rules {
                for t in eval_rule(rule, &db, None, &recursive) {
                    if db.insert(rule.head.rel, t.clone()) {
                        delta
                            .entry(rule.head.rel)
                            .or_insert_with(|| Relation::new(t.arity()))
                            .insert(t);
                    }
                }
            }
            // Semi-naive rounds: at least one recursive positive atom must
            // match the previous round's delta.
            while !delta.is_empty() {
                let mut next: BTreeMap<RelSym, Relation> = BTreeMap::new();
                for rule in &stratum_rules {
                    for (i, atom) in rule.pos.iter().enumerate() {
                        let Some(d) = delta.get(&atom.rel) else {
                            continue;
                        };
                        for t in eval_rule(rule, &db, Some((i, d)), &recursive) {
                            if db.insert(rule.head.rel, t.clone()) {
                                next.entry(rule.head.rel)
                                    .or_insert_with(|| Relation::new(t.arity()))
                                    .insert(t);
                            }
                        }
                    }
                }
                delta = next;
            }
        }
        db
    }
}

/// Evaluate one rule against `db`. If `delta_at = Some((i, d))`, positive
/// atom `i` is matched against `d` instead of the full relation (the
/// semi-naive restriction). Returns the derived head tuples.
fn eval_rule(
    rule: &DlRule,
    db: &Instance,
    delta_at: Option<(usize, &Relation)>,
    _recursive: &BTreeSet<RelSym>,
) -> Vec<Tuple> {
    // Join order: the delta atom first (most selective), then remaining
    // positive atoms greedily by number of already-bound arguments.
    let mut order: Vec<usize> = (0..rule.pos.len()).collect();
    if let Some((i, _)) = delta_at {
        order.retain(|&j| j != i);
        order.insert(0, i);
    }
    let mut out = Vec::new();
    let mut env: BTreeMap<Var, Value> = BTreeMap::new();
    join_atoms(rule, db, delta_at, &order, 0, &mut env, &mut out);
    out
}

fn join_atoms(
    rule: &DlRule,
    db: &Instance,
    delta_at: Option<(usize, &Relation)>,
    order: &[usize],
    depth: usize,
    env: &mut BTreeMap<Var, Value>,
    out: &mut Vec<Tuple>,
) {
    if depth == order.len() {
        // All positive atoms matched: check comparisons, then negation,
        // then emit.
        for c in &rule.comparisons {
            let l = arg_value(&c.left, env);
            let r = arg_value(&c.right, env);
            if (l == r) != c.equal {
                return;
            }
        }
        for a in &rule.neg {
            let t = Tuple::new(
                a.args
                    .iter()
                    .map(|arg| arg_value(arg, env))
                    .collect::<Vec<_>>(),
            );
            if db.contains(a.rel, &t) {
                return;
            }
        }
        out.push(Tuple::new(
            rule.head
                .args
                .iter()
                .map(|arg| arg_value(arg, env))
                .collect::<Vec<_>>(),
        ));
        return;
    }
    let idx = order[depth];
    let atom = &rule.pos[idx];
    let scan_delta;
    let scan_full;
    let tuples: &mut dyn Iterator<Item = &Tuple> = match delta_at {
        Some((i, d)) if i == idx => {
            scan_delta = d.iter();
            &mut { scan_delta }
        }
        _ => {
            scan_full = db.tuples(atom.rel);
            &mut { scan_full }
        }
    };
    'tuples: for t in tuples {
        if t.arity() != atom.args.len() {
            continue;
        }
        let mut bound: Vec<Var> = Vec::new();
        for (arg, val) in atom.args.iter().zip(t.iter()) {
            match arg {
                DlArg::Const(c) => {
                    if Value::Const(*c) != val {
                        for v in bound.drain(..) {
                            env.remove(&v);
                        }
                        continue 'tuples;
                    }
                }
                DlArg::Var(v) => match env.get(v) {
                    Some(&existing) if existing != val => {
                        for v in bound.drain(..) {
                            env.remove(&v);
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        env.insert(*v, val);
                        bound.push(*v);
                    }
                },
            }
        }
        join_atoms(rule, db, delta_at, order, depth + 1, env, out);
        for v in bound {
            env.remove(&v);
        }
    }
}

fn arg_value(arg: &DlArg, env: &BTreeMap<Var, Value>) -> Value {
    match arg {
        DlArg::Const(c) => Value::Const(*c),
        DlArg::Var(v) => *env.get(v).expect("safety guarantees bound variable"),
    }
}

fn term_to_arg(t: &Term) -> Result<DlArg, DatalogError> {
    match t {
        Term::Var(v) => Ok(DlArg::Var(*v)),
        Term::Const(c) => Ok(DlArg::Const(*c)),
        Term::App(f, _) => Err(DatalogError::NotDatalog {
            what: format!("function term {f}(…)"),
        }),
    }
}

/// Flatten a parsed body formula into Datalog literals; rejects anything
/// beyond conjunctions of (possibly negated) atoms and (in)equalities.
fn flatten_body(f: &Formula, rule: &mut DlRule) -> Result<(), DatalogError> {
    match f {
        Formula::True => Ok(()),
        Formula::And(fs) => {
            for g in fs {
                flatten_body(g, rule)?;
            }
            Ok(())
        }
        Formula::Atom(rel, args) => {
            rule.pos.push(DlAtom {
                rel: *rel,
                args: args.iter().map(term_to_arg).collect::<Result<_, _>>()?,
            });
            Ok(())
        }
        Formula::Eq(l, r) => {
            rule.comparisons.push(DlComparison {
                left: term_to_arg(l)?,
                right: term_to_arg(r)?,
                equal: true,
            });
            Ok(())
        }
        Formula::Not(inner) => match &**inner {
            Formula::Atom(rel, args) => {
                rule.neg.push(DlAtom {
                    rel: *rel,
                    args: args.iter().map(term_to_arg).collect::<Result<_, _>>()?,
                });
                Ok(())
            }
            Formula::Eq(l, r) => {
                rule.comparisons.push(DlComparison {
                    left: term_to_arg(l)?,
                    right: term_to_arg(r)?,
                    equal: false,
                });
                Ok(())
            }
            other => Err(DatalogError::NotDatalog {
                what: format!("negation of a non-atom: !({other})"),
            }),
        },
        other => Err(DatalogError::NotDatalog {
            what: format!("{other}"),
        }),
    }
}

/// A Datalog **query**: a program plus a designated output (IDB) predicate.
#[derive(Clone, Debug)]
pub struct DatalogQuery {
    /// The program.
    pub program: DatalogProgram,
    /// The output predicate.
    pub output: RelSym,
    arity: usize,
}

impl DatalogQuery {
    /// Bundle a program with its output predicate; the predicate must be
    /// IDB.
    pub fn new(program: DatalogProgram, output: impl Into<RelSym>) -> Result<Self, DatalogError> {
        let output = output.into();
        let Some(&arity) = program.idb.get(&output) else {
            return Err(DatalogError::NotDatalog {
                what: format!("output predicate {output} is not defined by any rule"),
            });
        };
        Ok(DatalogQuery {
            program,
            output,
            arity,
        })
    }

    /// Parse a program and designate the output predicate in one step.
    pub fn parse(output: &str, src: &str) -> Result<Self, DatalogError> {
        Self::new(DatalogProgram::parse(src)?, output)
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Evaluate on an instance (nulls as atomic values) and return the
    /// output relation.
    pub fn answers(&self, instance: &Instance) -> Relation {
        let db = self.program.eval(instance);
        db.relation(self.output)
            .cloned()
            .unwrap_or_else(|| Relation::new(self.arity))
    }

    /// Naive certain answers: evaluate, then drop tuples containing nulls
    /// (Imieliński–Lipski). Exact certain answers on naive tables when
    /// [`DatalogProgram::is_hom_preserved`] holds.
    pub fn naive_certain_answers(&self, instance: &Instance) -> Relation {
        let mut out = Relation::new(self.arity);
        for t in self.answers(instance).iter() {
            if t.is_ground() {
                out.insert(t.clone());
            }
        }
        out
    }

    /// Does the tuple belong to the answers on this instance?
    pub fn holds_on(&self, instance: &Instance, t: &Tuple) -> bool {
        self.answers(instance).contains(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_instance(edges: &[(&str, &str)]) -> Instance {
        let mut s = Instance::new();
        for (a, b) in edges {
            s.insert_names("DlEdge", &[a, b]);
        }
        s
    }

    const TC: &str = "DlPath(x, y) <- DlEdge(x, y); DlPath(x, z) <- DlPath(x, y) & DlEdge(y, z)";

    #[test]
    fn transitive_closure_chain() {
        let q = DatalogQuery::parse("DlPath", TC).unwrap();
        let s = edge_instance(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let ans = q.answers(&s);
        assert_eq!(ans.len(), 6, "3 edges + 2 two-hop + 1 three-hop");
        assert!(ans.contains(&Tuple::from_names(&["a", "d"])));
        assert!(!ans.contains(&Tuple::from_names(&["d", "a"])));
    }

    #[test]
    fn transitive_closure_cycle() {
        let q = DatalogQuery::parse("DlPath", TC).unwrap();
        let s = edge_instance(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let ans = q.answers(&s);
        assert_eq!(ans.len(), 9, "complete closure on a 3-cycle");
    }

    #[test]
    fn nulls_are_atomic_values() {
        let q = DatalogQuery::parse("DlPath", TC).unwrap();
        let mut s = Instance::new();
        let e = RelSym::new("DlEdge");
        s.insert(e, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        s.insert(e, Tuple::new(vec![Value::null(1), Value::c("b")]));
        let ans = q.answers(&s);
        // Path goes through the null: (a,⊥), (⊥,b), (a,b).
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&Tuple::from_names(&["a", "b"])));
        // Certain answers drop the null-containing pairs.
        let certain = q.naive_certain_answers(&s);
        assert_eq!(certain.len(), 1);
    }

    #[test]
    fn stratified_negation_unreachable() {
        let prog = "DlReach(x) <- DlStart(x); \
                    DlReach(y) <- DlReach(x) & DlEdge(x, y); \
                    DlDead(x) <- DlNode(x) & !DlReach(x)";
        let q = DatalogQuery::parse("DlDead", prog).unwrap();
        assert_eq!(q.program.stratum_count(), 2);
        assert_eq!(q.program.stratum_of(RelSym::new("DlReach")), Some(0));
        assert_eq!(q.program.stratum_of(RelSym::new("DlDead")), Some(1));
        let mut s = edge_instance(&[("a", "b"), ("c", "c")]);
        for n in ["a", "b", "c"] {
            s.insert_names("DlNode", &[n]);
        }
        s.insert_names("DlStart", &["a"]);
        let ans = q.answers(&s);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Tuple::from_names(&["c"])));
        assert!(q.program.has_negation());
        assert!(!q.program.is_hom_preserved());
        assert!(!q.program.is_monotone());
    }

    #[test]
    fn negation_through_recursion_rejected() {
        // The win-move game: win(x) <- move(x,y) & !win(y) — not stratifiable.
        let err = DatalogProgram::parse("DlWin(x) <- DlMove(x, y) & !DlWin(y)").unwrap_err();
        assert!(
            matches!(err, DatalogError::NotStratifiable { witness } if witness == RelSym::new("DlWin"))
        );
    }

    #[test]
    fn mutual_recursion_is_one_stratum() {
        let prog = DatalogProgram::parse(
            "DlEven(x) <- DlZero(x); \
             DlEven(y) <- DlOdd(x) & DlSucc(x, y); \
             DlOdd(y) <- DlEven(x) & DlSucc(x, y)",
        )
        .unwrap();
        assert_eq!(prog.stratum_count(), 1);
        let mut s = Instance::new();
        s.insert_names("DlZero", &["0"]);
        for (a, b) in [("0", "1"), ("1", "2"), ("2", "3"), ("3", "4")] {
            s.insert_names("DlSucc", &[a, b]);
        }
        let db = prog.eval(&s);
        let even: Vec<_> = db.tuples(RelSym::new("DlEven")).cloned().collect();
        assert_eq!(even.len(), 3, "0, 2, 4");
        let odd: Vec<_> = db.tuples(RelSym::new("DlOdd")).cloned().collect();
        assert_eq!(odd.len(), 2, "1, 3");
    }

    #[test]
    fn unsafe_rules_rejected() {
        // Head variable not bound.
        let e = DatalogProgram::parse("DlP(x, y) <- DlQ(x)").unwrap_err();
        assert!(matches!(e, DatalogError::Unsafe { site: "head", .. }));
        // Negated-atom variable not bound.
        let e = DatalogProgram::parse("DlP(x) <- DlQ(x) & !DlR(y)").unwrap_err();
        assert!(matches!(
            e,
            DatalogError::Unsafe {
                site: "negated atom",
                ..
            }
        ));
        // Comparison variable not bound.
        let e = DatalogProgram::parse("DlP(x) <- DlQ(x) & y != x").unwrap_err();
        assert!(matches!(
            e,
            DatalogError::Unsafe {
                site: "comparison",
                ..
            }
        ));
    }

    #[test]
    fn non_datalog_constructs_rejected() {
        for src in [
            "DlP(x) <- DlQ(x) | DlR(x)",
            "DlP(x) <- DlQ(x) & exists y. DlR(x, y)",
            "DlP(x) <- !(DlQ(x) & DlR(x))",
            "DlP(f(x)) <- DlQ(x)",
        ] {
            let e = DatalogProgram::parse(src).unwrap_err();
            assert!(
                matches!(e, DatalogError::NotDatalog { .. }),
                "{src} should be rejected, got {e:?}"
            );
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e =
            DatalogProgram::parse("DlP(x) <- DlQ(x); DlP(x, y) <- DlQ(x) & DlQ(y)").unwrap_err();
        assert!(matches!(e, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn constants_and_comparisons() {
        let prog = "DlBig(x) <- DlVal(x) & x != 'small'; DlSelf(x) <- DlPair(x, y) & x = y";
        let p = DatalogProgram::parse(prog).unwrap();
        assert!(p.has_neq());
        assert!(p.is_monotone(), "inequalities keep monotonicity");
        assert!(!p.is_hom_preserved(), "inequalities break hom-preservation");
        let mut s = Instance::new();
        s.insert_names("DlVal", &["small"]);
        s.insert_names("DlVal", &["large"]);
        s.insert_names("DlPair", &["a", "a"]);
        s.insert_names("DlPair", &["a", "b"]);
        let db = p.eval(&s);
        assert_eq!(db.tuples(RelSym::new("DlBig")).count(), 1);
        assert_eq!(db.tuples(RelSym::new("DlSelf")).count(), 1);
    }

    #[test]
    fn output_must_be_idb() {
        let e = DatalogQuery::parse("DlEdge", TC).unwrap_err();
        assert!(matches!(e, DatalogError::NotDatalog { .. }));
    }

    #[test]
    fn idb_edb_partition() {
        let p = DatalogProgram::parse(TC).unwrap();
        let idb: Vec<_> = p.idb().collect();
        assert_eq!(idb, vec![(RelSym::new("DlPath"), 2)]);
        let edb = p.edb();
        assert_eq!(edb.get(&RelSym::new("DlEdge")), Some(&2));
    }

    #[test]
    fn empty_program_and_empty_edb() {
        let p = DatalogProgram::new(vec![]).unwrap();
        assert_eq!(p.stratum_count(), 0);
        let db = p.eval(&Instance::new());
        assert!(db.is_empty());
        // TC on an empty EDB: output declared but empty.
        let q = DatalogQuery::parse("DlPath", TC).unwrap();
        assert_eq!(q.answers(&Instance::new()).len(), 0);
    }

    /// Semi-naive evaluation agrees with a from-scratch naive fixpoint
    /// (re-evaluating all rules until nothing changes) on random graphs.
    #[test]
    fn semi_naive_matches_naive_fixpoint() {
        let q = DatalogQuery::parse("DlPath", TC).unwrap();
        // A deterministic pseudo-random graph family.
        for n in [3usize, 5, 7] {
            let mut s = Instance::new();
            for i in 0..n {
                for j in 0..n {
                    if (i * 7 + j * 13) % 5 == 0 && i != j {
                        s.insert_nums("DlEdge", &[i as i64, j as i64]);
                    }
                }
            }
            let semi = q.answers(&s);
            // Naive fixpoint for reference.
            let mut db = s.clone();
            db.declare(RelSym::new("DlPath"), 2);
            loop {
                let mut changed = false;
                for rule in &q.program.rules {
                    for t in super::eval_rule(rule, &db, None, &BTreeSet::new()) {
                        changed |= db.insert(rule.head.rel, t);
                    }
                }
                if !changed {
                    break;
                }
            }
            let naive = db.relation(RelSym::new("DlPath")).unwrap();
            assert_eq!(&semi, naive, "n = {n}");
        }
    }
}
