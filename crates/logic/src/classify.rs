//! Syntactic query classification.
//!
//! The paper's complexity results are parameterized by query class:
//! conjunctive / positive queries (Proposition 3), monotone queries
//! (Proposition 4), `∀*∃*` queries (Proposition 5), and full FO (Theorems 3
//! and 4). Classification here is *syntactic*: a logically-positive formula
//! written with double negation will classify as full FO. All constructors
//! in this workspace build formulas in the shape the classifier expects.

use crate::formula::Formula;
use crate::term::Term;
use dx_relation::{AnnInstance, RelSym, Var};
use std::collections::BTreeSet;

/// Syntactic class of a query/formula, from most to least specific.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QueryClass {
    /// `∃*` over a conjunction of relational atoms and equalities.
    Conjunctive,
    /// Built from `true/false/atoms/equalities` with `∧ ∨ ∃` only
    /// (positive relational algebra; monotone).
    Positive,
    /// Prenex `∃*` with a quantifier-free matrix (may contain negation).
    Existential,
    /// Prenex `∀*∃*` with a quantifier-free matrix (includes pure `∀*`);
    /// the class of Proposition 5 and of most integrity constraints.
    UniversalExistential,
    /// Anything else.
    FullFirstOrder,
}

impl QueryClass {
    /// Is this class guaranteed monotone (so Proposition 3/4 applies)?
    pub fn is_monotone(self) -> bool {
        matches!(self, QueryClass::Conjunctive | QueryClass::Positive)
    }
}

/// Is the formula positive (no negation, no universal quantification)?
pub fn is_positive(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::Not(_) | Formula::Forall(_, _) => false,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_positive),
        Formula::Exists(_, inner) => is_positive(inner),
    }
}

/// Is the formula *syntactically monotone*: built from atoms, (in)equalities
/// and `∧ ∨ ∃` only? Negation is admitted exclusively on equality atoms —
/// adding tuples to an instance can only add satisfying assignments, so
/// answers only grow. This is the query class of Proposition 4 (conjunctive
/// queries with inequalities are its hardness witnesses).
pub fn is_monotone(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::Not(inner) => matches!(**inner, Formula::Eq(_, _)),
        Formula::Forall(_, _) => false,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_monotone),
        Formula::Exists(_, inner) => is_monotone(inner),
    }
}

/// The relations mentioned by `f` that are **rigid** in the annotated
/// instance `t`: their extension is provably identical in every member of
/// `Rep_A(t)`, decidable from the open/closed annotations alone. A relation
/// is rigid when every one of its tuples is ground (null-free) and fully
/// closed, and no all-open empty marker licenses extra tuples — closed
/// positions force each member tuple to coincide with a valuation image on
/// *every* position, so the extension equals `t`'s verbatim. A relation `f`
/// mentions but `t` lacks entirely is rigidly **empty** (members may not
/// populate it at all).
///
/// This is the criterion behind the *rigid-negation* tightenings: a negated
/// atom over a rigid relation is constant across the member space, so query
/// surgery may keep it ([`monotone_under_approx_rigid`]) and the monotone
/// certain-answer route may admit it ([`is_monotone_rigid`]).
pub fn rigid_relations_of(f: &Formula, t: &AnnInstance) -> BTreeSet<RelSym> {
    f.relations()
        .into_iter()
        .filter_map(|(rel, _)| {
            let rigid = match t.relation(rel) {
                None => true,
                Some(arel) => {
                    !arel.has_all_open_empty_mark()
                        && arel
                            .iter()
                            .all(|at| at.tuple.is_ground() && at.ann.count_open() == 0)
                }
            };
            rigid.then_some(rel)
        })
        .collect()
}

/// [`is_monotone`] **modulo rigid relations**: negation is additionally
/// admitted directly on an atom of a relation in `rigid`. Over the member
/// space of the instance `rigid` was computed from, such a formula is
/// monotone — growing a member can only add tuples to *non-rigid* relations
/// (rigid ones are pinned by their closed annotations), so the kept negated
/// atoms never change value and answers only grow. With an empty `rigid`
/// set this is exactly [`is_monotone`].
pub fn is_monotone_rigid(f: &Formula, rigid: &BTreeSet<RelSym>) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::Not(inner) => match &**inner {
            Formula::Eq(_, _) => true,
            Formula::Atom(r, _) => rigid.contains(r),
            _ => false,
        },
        Formula::Forall(_, _) => false,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| is_monotone_rigid(g, rigid)),
        Formula::Exists(_, inner) => is_monotone_rigid(inner, rigid),
    }
}

/// Is the formula quantifier-free?
pub fn is_quantifier_free(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::Not(inner) => is_quantifier_free(inner),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_quantifier_free),
        Formula::Exists(_, _) | Formula::Forall(_, _) => false,
    }
}

/// The flattened pieces of a conjunctive query: `∃ vars. ⋀atoms ∧ ⋀eqs`.
#[derive(Clone, Debug, Default)]
pub struct CqParts {
    /// Existentially quantified variables, in binding order.
    pub exists: Vec<Var>,
    /// Relational atoms.
    pub atoms: Vec<(RelSym, Vec<Term>)>,
    /// Equality atoms.
    pub eqs: Vec<(Term, Term)>,
}

/// Try to read the formula as a conjunctive query.
pub fn try_cq(f: &Formula) -> Option<CqParts> {
    let mut parts = CqParts::default();
    let mut cur = f;
    while let Formula::Exists(vars, inner) = cur {
        parts.exists.extend(vars.iter().copied());
        cur = inner;
    }
    collect_conjuncts(cur, &mut parts).then_some(parts)
}

fn collect_conjuncts(f: &Formula, parts: &mut CqParts) -> bool {
    match f {
        Formula::True => true,
        Formula::Atom(r, args) => {
            parts.atoms.push((*r, args.clone()));
            true
        }
        Formula::Eq(a, b) => {
            parts.eqs.push((a.clone(), b.clone()));
            true
        }
        Formula::And(fs) => fs.iter().all(|g| collect_conjuncts(g, parts)),
        _ => false,
    }
}

/// Negation normal form: negations pushed onto atoms, `True`/`False`
/// simplified. Quantifier structure is preserved up to the `∀/∃` swap under
/// negation.
pub fn nnf(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => f.clone(),
        Formula::And(fs) => Formula::and(fs.iter().map(nnf)),
        Formula::Or(fs) => Formula::or(fs.iter().map(nnf)),
        Formula::Exists(vars, inner) => Formula::exists(vars.clone(), nnf(inner)),
        Formula::Forall(vars, inner) => Formula::forall(vars.clone(), nnf(inner)),
        Formula::Not(inner) => nnf_neg(inner),
    }
}

fn nnf_neg(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Atom(_, _) | Formula::Eq(_, _) => Formula::Not(Box::new(f.clone())),
        Formula::Not(inner) => nnf(inner),
        Formula::And(fs) => Formula::or(fs.iter().map(nnf_neg)),
        Formula::Or(fs) => Formula::and(fs.iter().map(nnf_neg)),
        Formula::Exists(vars, inner) => Formula::forall(vars.clone(), nnf_neg(inner)),
        Formula::Forall(vars, inner) => Formula::exists(vars.clone(), nnf_neg(inner)),
    }
}

/// In an NNF formula: does some path from the root pass through an `∃`
/// before reaching a `∀`? If not, the formula can be prenexed to `∀*∃*`.
fn forall_under_exists(f: &Formula, under_exists: bool) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => false,
        Formula::Not(inner) => forall_under_exists(inner, under_exists),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().any(|g| forall_under_exists(g, under_exists))
        }
        Formula::Exists(_, inner) => forall_under_exists(inner, true),
        Formula::Forall(_, inner) => under_exists || forall_under_exists(inner, under_exists),
    }
}

fn contains_forall(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => false,
        Formula::Not(inner) => contains_forall(inner),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(contains_forall),
        Formula::Exists(_, inner) => contains_forall(inner),
        Formula::Forall(_, _) => true,
    }
}

/// Total number of universally quantified variables in the NNF of `f` —
/// this is `l`, the size of the `∃`-block of `¬f`'s prenex form, used to
/// size Proposition 5's witness space.
pub fn universal_var_count(f: &Formula) -> usize {
    fn count(f: &Formula) -> usize {
        match f {
            Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => 0,
            Formula::Not(inner) => count(inner),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(count).sum(),
            Formula::Exists(_, inner) => count(inner),
            Formula::Forall(vars, inner) => vars.len() + count(inner),
        }
    }
    count(&nnf(f))
}

/// The **monotone under-approximation** `U(φ)` of a formula: `U(φ) ⇒ φ`
/// pointwise on every instance and every binding, and `U(φ)` is
/// syntactically monotone ([`is_monotone`]). Computed on the negation
/// normal form by replacing every negated relational atom with `False` and
/// every universal quantifier with `False`; inequalities (negated
/// equalities) are themselves monotone and survive.
///
/// This is the query-surgery half of the Calautti-et-al.-style
/// approximation regime (`dx-core`'s `regimes` module): certain answers of
/// `U(φ)` are computable exactly (Propositions 3/4) and under-approximate
/// the certain answers of `φ` — sound, possibly incomplete.
pub fn monotone_under_approx(f: &Formula) -> Formula {
    approx(&nnf(f), true, &BTreeSet::new())
}

/// The **monotone over-approximation** `O(φ)`: `φ ⇒ O(φ)` pointwise, with
/// `O(φ)` syntactically monotone — the dual of [`monotone_under_approx`]
/// (negated atoms and universals become `True`). Certain answers of `O(φ)`
/// over-approximate those of `φ` — complete, possibly unsound.
pub fn monotone_over_approx(f: &Formula) -> Formula {
    approx(&nnf(f), false, &BTreeSet::new())
}

/// [`monotone_under_approx`] with **rigid negation kept**: a negated atom
/// over a relation in `rigid` (see [`rigid_relations_of`]) survives the
/// transform instead of eroding to `False`. Pointwise soundness
/// (`U(φ) ⇒ φ`) is untouched — keeping a subformula verbatim is the
/// identity replacement — and the output satisfies
/// [`is_monotone_rigid`], so certain answers stay exactly computable on
/// the valuation-image space. The result is a **tighter** lower bound:
/// strictly more of the query survives erasure.
pub fn monotone_under_approx_rigid(f: &Formula, rigid: &BTreeSet<RelSym>) -> Formula {
    approx(&nnf(f), true, rigid)
}

/// [`monotone_over_approx`] with rigid negation kept — the dual of
/// [`monotone_under_approx_rigid`], shrinking the upper bound.
pub fn monotone_over_approx_rigid(f: &Formula, rigid: &BTreeSet<RelSym>) -> Formula {
    approx(&nnf(f), false, rigid)
}

/// The U/O transform on an NNF formula (`under` picks the direction). The
/// replacement constant is the identity of the respective lattice corner:
/// `False ⇒ ψ` for any `ψ` (soundness of U), `ψ ⇒ True` (soundness of O).
/// Negated atoms over `rigid` relations are member-invariant and kept.
fn approx(f: &Formula, under: bool, rigid: &BTreeSet<RelSym>) -> Formula {
    let erased = || {
        if under {
            Formula::False
        } else {
            Formula::True
        }
    };
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => f.clone(),
        // NNF puts negation on atoms only; `¬(t = t′)` is monotone and kept,
        // as is `¬R(t̄)` for rigid `R` (constant across the member space).
        Formula::Not(inner) => match &**inner {
            Formula::Eq(_, _) => f.clone(),
            Formula::Atom(r, _) if rigid.contains(r) => f.clone(),
            _ => erased(),
        },
        Formula::And(fs) => Formula::and(fs.iter().map(|g| approx(g, under, rigid))),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| approx(g, under, rigid))),
        Formula::Exists(vars, inner) => Formula::exists(vars.clone(), approx(inner, under, rigid)),
        Formula::Forall(_, _) => erased(),
    }
}

/// Is the formula **existential**: no universal quantifier in negation
/// normal form (so `!exists` counts as universal, `!R(x)` does not)? The
/// class behind the paper's §6 remark that compositions with
/// existential-`Δ` bodies stay in NP for every annotation.
pub fn is_existential(f: &Formula) -> bool {
    !contains_forall(&nnf(f))
}

/// Classify a formula into the most specific [`QueryClass`].
///
/// The `∀*∃*`/`∃*` classes are detected on the negation normal form: a
/// formula whose NNF never nests a `∀` inside an `∃` prenexes to `∀*∃*`
/// (so e.g. `∀x̄ (φ → ∃ȳ ψ)` with quantifier-free `φ, ψ` qualifies, as the
/// paper intends for integrity constraints).
pub fn classify(f: &Formula) -> QueryClass {
    if try_cq(f).is_some() {
        return QueryClass::Conjunctive;
    }
    if is_positive(f) {
        return QueryClass::Positive;
    }
    let n = nnf(f);
    if !contains_forall(&n) {
        return QueryClass::Existential;
    }
    if !forall_under_exists(&n, false) {
        return QueryClass::UniversalExistential;
    }
    QueryClass::FullFirstOrder
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(r: &str, vs: &[&str]) -> Formula {
        Formula::atom(r, vs.iter().map(|v| Term::var(v)).collect())
    }

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn cq_detection() {
        // exists y. R(x,y) & S(y) & y = 'c'
        let f = Formula::exists(
            vec![v("y")],
            Formula::and([
                atom("R", &["x", "y"]),
                atom("S", &["y"]),
                Formula::eq(Term::var("y"), Term::cst("c")),
            ]),
        );
        let parts = try_cq(&f).expect("is a CQ");
        assert_eq!(parts.exists, vec![v("y")]);
        assert_eq!(parts.atoms.len(), 2);
        assert_eq!(parts.eqs.len(), 1);
        assert_eq!(classify(&f), QueryClass::Conjunctive);
    }

    #[test]
    fn union_of_cqs_is_positive() {
        let f = Formula::or([atom("R", &["x"]), atom("S", &["x"])]);
        assert!(try_cq(&f).is_none());
        assert_eq!(classify(&f), QueryClass::Positive);
        assert!(classify(&f).is_monotone());
    }

    #[test]
    fn cq_with_inequality_is_existential_but_monotone() {
        // exists y. R(x,y) & x != y — Prop 4's class.
        let f = Formula::exists(
            vec![v("y")],
            Formula::and([
                atom("R", &["x", "y"]),
                Formula::neq(Term::var("x"), Term::var("y")),
            ]),
        );
        assert_eq!(classify(&f), QueryClass::Existential);
        assert!(!classify(&f).is_monotone());
        assert!(is_monotone(&f), "CQ with inequalities is monotone");
        // But negation of a relational atom is not monotone.
        let g = Formula::and([atom("R", &["x", "y"]), Formula::not(atom("S", &["x"]))]);
        assert!(!is_monotone(&g));
    }

    #[test]
    fn forall_exists_detection() {
        // forall x. exists y. R(x,y) -> S(y): ∀*∃* with QF matrix.
        let f = Formula::forall(
            vec![v("x")],
            Formula::exists(
                vec![v("y")],
                Formula::implies(atom("R", &["x", "y"]), atom("S", &["y"])),
            ),
        );
        assert_eq!(classify(&f), QueryClass::UniversalExistential);
    }

    #[test]
    fn pure_universal_is_universal_existential() {
        let f = Formula::forall(vec![v("x")], Formula::not(atom("Bad", &["x"])));
        assert_eq!(classify(&f), QueryClass::UniversalExistential);
    }

    #[test]
    fn exists_forall_is_full_fo() {
        // ∃x ∀y: not in ∀*∃*.
        let f = Formula::exists(
            vec![v("x")],
            Formula::forall(vec![v("y")], atom("R", &["x", "y"])),
        );
        assert_eq!(classify(&f), QueryClass::FullFirstOrder);
    }

    #[test]
    fn quantifier_inside_matrix_is_full_fo() {
        // forall x. (R(x) -> exists y. forall z. S(y,z)) — matrix not QF after prefix.
        let f = Formula::forall(
            vec![v("x")],
            Formula::implies(
                atom("R", &["x"]),
                Formula::exists(
                    vec![v("y")],
                    Formula::forall(vec![v("z")], atom("S", &["y", "z"])),
                ),
            ),
        );
        assert_eq!(classify(&f), QueryClass::FullFirstOrder);
    }

    /// U/O transforms: monotone outputs, with `U(φ) ⇒ φ ⇒ O(φ)` checked
    /// pointwise on a battery of instances (every satisfying binding of
    /// `U(φ)` satisfies `φ`, and of `φ` satisfies `O(φ)`).
    #[test]
    fn under_over_approximations_bracket() {
        use dx_relation::Instance;
        let battery = [
            // ∃y R(x,y) ∧ ¬S(x): negated atom erased under U, kept True in O.
            Formula::exists(
                vec![v("y")],
                Formula::and([atom("ApR", &["x", "y"]), Formula::not(atom("ApS", &["x"]))]),
            ),
            // Negation under disjunction: U keeps the positive branch.
            Formula::and([
                atom("ApS", &["x"]),
                Formula::or([atom("ApR", &["x", "x"]), Formula::not(atom("ApS", &["x"]))]),
            ]),
            // Inequalities survive both directions.
            Formula::exists(
                vec![v("y")],
                Formula::and([
                    atom("ApR", &["x", "y"]),
                    Formula::neq(Term::var("x"), Term::var("y")),
                ]),
            ),
            // Universals erase.
            Formula::forall(
                vec![v("u")],
                Formula::implies(atom("ApS", &["u"]), atom("ApR", &["u", "u"])),
            ),
            // Double negation normalizes away before the transform.
            Formula::not(Formula::not(atom("ApS", &["x"]))),
        ];
        let mut inst1 = Instance::new();
        inst1.insert_names("ApR", &["a", "b"]);
        inst1.insert_names("ApR", &["a", "a"]);
        inst1.insert_names("ApS", &["a"]);
        let mut inst2 = Instance::new();
        inst2.insert_names("ApR", &["a", "b"]);
        inst2.insert_names("ApS", &["b"]);
        for f in &battery {
            let under = monotone_under_approx(f);
            let over = monotone_over_approx(f);
            assert!(is_monotone(&under), "U({f}) = {under} must be monotone");
            assert!(is_monotone(&over), "O({f}) = {over} must be monotone");
            let head: Vec<Var> = f.free_vars().into_iter().collect();
            let dom = ["a", "b"];
            for inst in [&inst1, &inst2] {
                // All bindings of the free variables over {a, b}.
                for code in 0..dom.len().pow(head.len() as u32) {
                    let names: Vec<&str> = (0..head.len())
                        .map(|p| dom[(code / dom.len().pow(p as u32)) % dom.len()])
                        .collect();
                    let tuple = dx_relation::Tuple::from_names(&names);
                    let q = |g: &Formula| {
                        crate::Query::new(head.clone(), g.clone()).holds_on(inst, &tuple)
                    };
                    if q(&under) {
                        assert!(q(f), "U ⇒ φ fails for {f} at {tuple}");
                    }
                    if q(f) {
                        assert!(q(&over), "φ ⇒ O fails for {f} at {tuple}");
                    }
                }
            }
        }
    }

    /// Rigidity: ground + all-closed relations are rigid, anything with a
    /// null, an open position or an all-open empty marker is not, and
    /// absent relations are rigidly empty. The rigid-aware transforms keep
    /// exactly the rigid negated atoms.
    #[test]
    fn rigid_relations_and_rigid_transforms() {
        use dx_relation::{Ann, AnnTuple, Annotation, Instance, Tuple, Value};
        let mut t = AnnInstance::new();
        t.insert(
            RelSym::new("RgdC"),
            AnnTuple::new(Tuple::from_names(&["a"]), Annotation::all_closed(1)),
        );
        t.insert(
            RelSym::new("RgdO"),
            AnnTuple::new(Tuple::from_names(&["a"]), Annotation::new(vec![Ann::Open])),
        );
        t.insert(
            RelSym::new("RgdN"),
            AnnTuple::new(Tuple::new(vec![Value::null(1)]), Annotation::all_closed(1)),
        );
        t.insert_empty_mark(RelSym::new("RgdM"), Annotation::all_open(1));
        let f = Formula::and([
            Formula::not(atom("RgdC", &["x"])),
            Formula::not(atom("RgdO", &["x"])),
            Formula::not(atom("RgdN", &["x"])),
            Formula::not(atom("RgdM", &["x"])),
            Formula::not(atom("RgdAbsent", &["x"])),
            atom("RgdO", &["x"]),
        ]);
        let rigid = rigid_relations_of(&f, &t);
        assert!(rigid.contains(&RelSym::new("RgdC")), "ground+closed");
        assert!(rigid.contains(&RelSym::new("RgdAbsent")), "rigidly empty");
        assert!(!rigid.contains(&RelSym::new("RgdO")), "open position");
        assert!(!rigid.contains(&RelSym::new("RgdN")), "null-carrying");
        assert!(!rigid.contains(&RelSym::new("RgdM")), "all-open marker");

        // The rigid under-transform keeps exactly the rigid negations (the
        // disjunctive shape keeps erasure from collapsing the formula).
        let g = Formula::and([
            atom("RgdO", &["x"]),
            Formula::not(atom("RgdC", &["x"])),
            Formula::or([Formula::not(atom("RgdO", &["x"])), atom("RgdO", &["x"])]),
        ]);
        let under = monotone_under_approx_rigid(&g, &rigid);
        assert!(is_monotone_rigid(&under, &rigid));
        assert!(!is_monotone(&under), "rigid negations survive");
        let plain = monotone_under_approx(&g);
        assert!(is_monotone(&plain), "the rigid-blind transform erases");
        let kept: BTreeSet<RelSym> = {
            let mut out = BTreeSet::new();
            under.walk(&mut |h| {
                if let Formula::Not(inner) = h {
                    if let Formula::Atom(r, _) = &**inner {
                        out.insert(*r);
                    }
                }
            });
            out
        };
        assert_eq!(
            kept,
            [RelSym::new("RgdC")].into_iter().collect::<BTreeSet<_>>(),
            "non-rigid negations erased, rigid ones kept"
        );
        // Pointwise soundness is untouched: U ⇒ φ on a spot instance.
        let mut inst = Instance::new();
        inst.insert_names("RgdO", &["a"]);
        let q = |h: &Formula| {
            crate::Query::new(vec![v("x")], h.clone()).holds_on(&inst, &Tuple::from_names(&["a"]))
        };
        assert!(q(&under) && q(&g), "kept negations evaluate verbatim");
        // The rigid over-transform is tighter than the rigid-blind one.
        let over = monotone_over_approx_rigid(&g, &rigid);
        assert!(is_monotone_rigid(&over, &rigid));
        assert!(q(&over));
        // is_monotone_rigid with an empty set is plain is_monotone.
        assert!(!is_monotone_rigid(&f, &BTreeSet::new()));
        assert!(is_monotone_rigid(
            &Formula::not(Formula::eq(Term::var("x"), Term::var("y"))),
            &BTreeSet::new()
        ));
    }

    #[test]
    fn negation_breaks_positive() {
        let f = Formula::and([atom("R", &["x"]), Formula::not(atom("S", &["x"]))]);
        assert!(!is_positive(&f));
        assert_eq!(classify(&f), QueryClass::Existential); // QF matrix, no prefix
    }
}
