//! # dx-logic — first-order logic substrate for `oc-exchange`
//!
//! Terms and first-order formulas over relational vocabularies, their
//! analysis (free variables, quantifier rank, query-class detection), a
//! recursive-descent parser for the rule/formula syntax used throughout the
//! examples, and evaluation engines:
//!
//! * an **active-domain FO evaluator** that treats nulls as atomic values —
//!   this *is* the paper's naive semantics for evaluating queries over
//!   instances with nulls (§2, "Databases with incomplete information");
//! * a **backtracking-join evaluator** for conjunctive bodies, used to drive
//!   satisfying-assignment enumeration efficiently;
//! * **naive certain answers** `Q_naive(T)`: evaluate treating nulls as
//!   values, then discard tuples containing nulls (Imieliński–Lipski), which
//!   by Proposition 3 computes `certain_Σα(Q, S)` on the canonical solution
//!   for every positive query and every annotation.
//!
//! Skolem terms (`f(x̄)`, used by SkSTDs in §5) are ordinary [`Term`]s; their
//! interpretation is supplied at evaluation time via [`eval::FuncInterp`].

#![warn(missing_docs)]

pub mod classify;
pub mod datalog;
pub mod eval;
pub mod formula;
pub mod parser;
pub mod query;
pub mod term;

pub use classify::QueryClass;
pub use datalog::{DatalogError, DatalogProgram, DatalogQuery};
pub use eval::{Assignment, Evaluator, FuncInterp, NoFuncs};
pub use formula::Formula;
pub use parser::{
    parse_facts, parse_formula, parse_rule, parse_rules, ParseError, ParsedAtom, ParsedRule,
};
pub use query::Query;
pub use term::Term;
