//! Active-domain evaluation of first-order formulas over instances.
//!
//! Nulls are treated as atomic values — two nulls are equal iff they are the
//! same null. This is exactly the *naive* semantics the paper evaluates
//! queries under (§2): for positive queries, naive evaluation followed by
//! discarding null-containing tuples computes certain answers
//! (Imieliński–Lipski), which Proposition 3 lifts to data exchange.
//!
//! Quantifiers range over an explicit finite domain, defaulting to the active
//! domain of the instance plus the constants of the formula (the standard
//! active-domain semantics of finite model theory, which the paper uses
//! implicitly throughout; e.g. the `adom(x̄)` relativization in Theorem 4's
//! reduction makes it explicit).

use crate::formula::Formula;
use crate::term::Term;
use dx_relation::{FuncSym, Instance, Relation, Tuple, Value, Var};
use std::collections::{BTreeMap, BTreeSet};

/// A variable environment mapping variables to values.
#[derive(Clone, Default, Debug)]
pub struct Assignment {
    map: BTreeMap<Var, Value>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(var, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Value)>) -> Self {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Look up a variable.
    pub fn get(&self, v: Var) -> Option<Value> {
        self.map.get(&v).copied()
    }

    /// Bind a variable, returning the previous binding.
    pub fn bind(&mut self, v: Var, val: Value) -> Option<Value> {
        self.map.insert(v, val)
    }

    /// Remove a binding (or restore `prev` when backtracking a shadowed
    /// binding).
    pub fn unbind(&mut self, v: Var, prev: Option<Value>) {
        match prev {
            Some(val) => {
                self.map.insert(v, val);
            }
            None => {
                self.map.remove(&v);
            }
        }
    }

    /// The bound variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }
}

/// Interpretation of Skolem function symbols at evaluation time.
///
/// `apply` returns `None` when the interpretation is undefined on the given
/// arguments; the evaluator treats that as a caller bug (it panics), because
/// every search engine in `dx-solver` materializes all *relevant sites*
/// before evaluating (see `DESIGN.md` §3.4).
pub trait FuncInterp {
    /// The value of `f(args)`, if defined.
    fn apply(&self, f: FuncSym, args: &[Value]) -> Option<Value>;
}

/// The trivial interpretation for formulas without function symbols.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFuncs;

impl FuncInterp for NoFuncs {
    fn apply(&self, f: FuncSym, _args: &[Value]) -> Option<Value> {
        panic!("formula mentions function symbol {f} but no interpretation was supplied")
    }
}

/// A finite function table, the concrete `FuncInterp` used by SkSTD
/// semantics (`Sol_F′(S)` of §5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncTable {
    map: BTreeMap<(FuncSym, Vec<Value>), Value>,
}

impl FuncTable {
    /// The empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define `f(args) = val`, returning the previous value if any.
    pub fn define(&mut self, f: FuncSym, args: Vec<Value>, val: Value) -> Option<Value> {
        self.map.insert((f, args), val)
    }

    /// Remove a definition (used when backtracking).
    pub fn undefine(&mut self, f: FuncSym, args: &[Value]) {
        self.map.remove(&(f, args.to_vec()));
    }

    /// Look up `f(args)`.
    pub fn get(&self, f: FuncSym, args: &[Value]) -> Option<Value> {
        self.map.get(&(f, args.to_vec())).copied()
    }

    /// Number of defined sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `((f, args), value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(FuncSym, Vec<Value>), &Value)> + '_ {
        self.map.iter()
    }

    /// All values in the range of the table.
    pub fn range_values(&self) -> BTreeSet<Value> {
        self.map.values().copied().collect()
    }
}

impl FuncInterp for FuncTable {
    fn apply(&self, f: FuncSym, args: &[Value]) -> Option<Value> {
        self.get(f, args)
    }
}

/// An active-domain evaluator for first-order formulas.
pub struct Evaluator<'a, FI: FuncInterp = NoFuncs> {
    instance: &'a Instance,
    domain: Vec<Value>,
    funcs: &'a FI,
}

static NO_FUNCS: NoFuncs = NoFuncs;

impl<'a> Evaluator<'a, NoFuncs> {
    /// Evaluator whose quantifiers range over the active domain of
    /// `instance`.
    pub fn new(instance: &'a Instance) -> Self {
        let domain = instance.active_domain().into_iter().collect();
        Evaluator {
            instance,
            domain,
            funcs: &NO_FUNCS,
        }
    }

    /// Evaluator whose quantifiers range over the active domain plus the
    /// constants of `f` (the safe default for arbitrary FO formulas).
    pub fn for_formula(instance: &'a Instance, f: &Formula) -> Self {
        let mut dom: BTreeSet<Value> = instance.active_domain();
        dom.extend(f.constants().into_iter().map(Value::Const));
        Evaluator {
            instance,
            domain: dom.into_iter().collect(),
            funcs: &NO_FUNCS,
        }
    }
}

impl<'a, FI: FuncInterp> Evaluator<'a, FI> {
    /// Evaluator with an explicit quantifier domain and function
    /// interpretation.
    pub fn with_domain_and_funcs(
        instance: &'a Instance,
        domain: impl IntoIterator<Item = Value>,
        funcs: &'a FI,
    ) -> Self {
        let domain: BTreeSet<Value> = domain.into_iter().collect();
        Evaluator {
            instance,
            domain: domain.into_iter().collect(),
            funcs,
        }
    }

    /// The quantifier domain.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// Evaluate a term under an assignment. Panics on unbound variables or
    /// undefined function applications (both are caller bugs; see the crate
    /// docs on how search engines pre-materialize function sites).
    pub fn eval_term(&self, t: &Term, asg: &Assignment) -> Value {
        match t {
            Term::Var(v) => asg
                .get(*v)
                .unwrap_or_else(|| panic!("unbound variable {v} during evaluation")),
            Term::Const(c) => Value::Const(*c),
            Term::App(f, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval_term(a, asg)).collect();
                self.funcs
                    .apply(*f, &vals)
                    .unwrap_or_else(|| panic!("undefined function application {f}{vals:?}"))
            }
        }
    }

    /// Evaluate a formula under an assignment binding all its free
    /// variables.
    pub fn eval(&self, f: &Formula, asg: &mut Assignment) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(r, args) => {
                let vals: Vec<Value> = args.iter().map(|t| self.eval_term(t, asg)).collect();
                self.instance.contains(*r, &Tuple::new(vals))
            }
            Formula::Eq(a, b) => self.eval_term(a, asg) == self.eval_term(b, asg),
            Formula::Not(inner) => !self.eval(inner, asg),
            Formula::And(fs) => fs.iter().all(|g| self.eval_clone(g, asg)),
            Formula::Or(fs) => fs.iter().any(|g| self.eval_clone(g, asg)),
            Formula::Exists(vars, inner) => self.eval_quant(vars, inner, asg, true),
            Formula::Forall(vars, inner) => !self.eval_quant(vars, inner, asg, false),
        }
    }

    // `all`/`any` need `&mut` in a closure; this wrapper keeps borrowck happy
    // without cloning the assignment.
    fn eval_clone(&self, f: &Formula, asg: &mut Assignment) -> bool {
        self.eval(f, asg)
    }

    /// Shared quantifier loop. For `Exists` (`positive=true`) returns "some
    /// extension satisfies"; for `Forall` returns "some extension
    /// *falsifies*" (the caller negates).
    fn eval_quant(
        &self,
        vars: &[Var],
        inner: &Formula,
        asg: &mut Assignment,
        positive: bool,
    ) -> bool {
        if vars.is_empty() {
            let r = self.eval(inner, asg);
            return if positive { r } else { !r };
        }
        let (v, rest) = (vars[0], &vars[1..]);
        for &val in &self.domain {
            let prev = asg.bind(v, val);
            let found = self.eval_quant(rest, inner, asg, positive);
            asg.unbind(v, prev);
            if found {
                return true;
            }
        }
        false
    }

    /// Decide a sentence (no free variables).
    pub fn holds(&self, f: &Formula) -> bool {
        debug_assert!(f.free_vars().is_empty(), "sentence expected");
        self.eval(f, &mut Assignment::new())
    }

    /// Enumerate all assignments to `vars` (over the evaluator's domain)
    /// satisfying `f`. Uses top-level positive atoms as join drivers when
    /// possible, falling back to domain enumeration for uncovered variables.
    pub fn satisfying_assignments(&self, f: &Formula, vars: &[Var]) -> Vec<Vec<Value>> {
        let mut results: BTreeSet<Vec<Value>> = BTreeSet::new();
        let drivers = conjunct_driver_atoms(f);
        // Enumerate over the requested vars plus any remaining free vars of
        // `f` (they must be bound for evaluation), then project onto `vars`.
        let mut enum_vars: Vec<Var> = vars.to_vec();
        for v in f.free_vars() {
            if !enum_vars.contains(&v) {
                enum_vars.push(v);
            }
        }
        let mut asg = Assignment::new();
        let mut full: BTreeSet<Vec<Value>> = BTreeSet::new();
        self.drive(&drivers, 0, f, &enum_vars, &mut asg, &mut full);
        for row in full {
            results.insert(row[..vars.len()].to_vec());
        }
        results.into_iter().collect()
    }

    /// Backtracking over driver atoms, then enumeration of leftover
    /// variables, then a final full check of `f`.
    fn drive(
        &self,
        drivers: &[(dx_relation::RelSym, &Vec<Term>)],
        i: usize,
        f: &Formula,
        vars: &[Var],
        asg: &mut Assignment,
        results: &mut BTreeSet<Vec<Value>>,
    ) {
        if i == drivers.len() {
            // Bind any still-unbound target variables by domain enumeration.
            self.enumerate_rest(f, vars, 0, asg, results);
            return;
        }
        let (rel, args) = (drivers[i].0, drivers[i].1);
        let candidates: Vec<Tuple> = self.instance.tuples(rel).cloned().collect();
        'tuples: for t in candidates {
            // Unify args (Var/Const only; guaranteed by driver extraction).
            let mut bound_here: Vec<Var> = Vec::new();
            let mut ok = true;
            for (j, term) in args.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if t.get(j) != Value::Const(*c) {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match asg.get(*v) {
                        Some(val) => {
                            if t.get(j) != val {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            asg.bind(*v, t.get(j));
                            bound_here.push(*v);
                        }
                    },
                    Term::App(_, _) => unreachable!("driver atoms are function-free"),
                }
            }
            if ok {
                self.drive(drivers, i + 1, f, vars, asg, results);
            }
            for v in bound_here {
                asg.unbind(v, None);
            }
            if !ok {
                continue 'tuples;
            }
        }
    }

    fn enumerate_rest(
        &self,
        f: &Formula,
        vars: &[Var],
        k: usize,
        asg: &mut Assignment,
        results: &mut BTreeSet<Vec<Value>>,
    ) {
        if k == vars.len() {
            if self.eval(f, asg) {
                results.insert(vars.iter().map(|v| asg.get(*v).unwrap()).collect());
            }
            return;
        }
        let v = vars[k];
        if asg.get(v).is_some() {
            self.enumerate_rest(f, vars, k + 1, asg, results);
            return;
        }
        for &val in &self.domain {
            asg.bind(v, val);
            self.enumerate_rest(f, vars, k + 1, asg, results);
            asg.unbind(v, None);
        }
    }

    /// The satisfying assignments as a [`Relation`] (one tuple per
    /// assignment, positions following `vars`).
    pub fn answers(&self, f: &Formula, vars: &[Var]) -> Relation {
        let rows = self.satisfying_assignments(f, vars);
        Relation::from_tuples(vars.len(), rows.into_iter().map(Tuple::new))
    }

    /// Ablation variant of [`Evaluator::satisfying_assignments`]: plain
    /// domain enumeration over all variables, no join drivers. Semantically
    /// identical; used by the `ablations` bench to quantify the value of
    /// driver-based search.
    pub fn satisfying_assignments_no_drivers(&self, f: &Formula, vars: &[Var]) -> Vec<Vec<Value>> {
        let mut enum_vars: Vec<Var> = vars.to_vec();
        for v in f.free_vars() {
            if !enum_vars.contains(&v) {
                enum_vars.push(v);
            }
        }
        let mut results: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut full: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut asg = Assignment::new();
        self.enumerate_rest(f, &enum_vars, 0, &mut asg, &mut full);
        for row in full {
            results.insert(row[..vars.len()].to_vec());
        }
        results.into_iter().collect()
    }
}

/// Extract top-level conjunct atoms with function-free arguments; these are
/// necessary conditions for the whole formula, so they can drive the search.
fn conjunct_driver_atoms(f: &Formula) -> Vec<(dx_relation::RelSym, &Vec<Term>)> {
    fn go<'f>(f: &'f Formula, out: &mut Vec<(dx_relation::RelSym, &'f Vec<Term>)>) {
        match f {
            Formula::Atom(r, args)
                if args
                    .iter()
                    .all(|t| matches!(t, Term::Var(_) | Term::Const(_))) =>
            {
                out.push((*r, args));
            }
            Formula::And(fs) => {
                for g in fs {
                    go(g, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    go(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula as F;

    fn graph() -> Instance {
        // a → b → c, plus self-loop d → d
        let mut i = Instance::new();
        i.insert_names("E", &["a", "b"]);
        i.insert_names("E", &["b", "c"]);
        i.insert_names("E", &["d", "d"]);
        i
    }

    #[test]
    fn atom_and_eq() {
        let i = graph();
        let ev = Evaluator::new(&i);
        let f = F::atom("E", vec![Term::cst("a"), Term::cst("b")]);
        assert!(ev.holds(&f));
        let g = F::atom("E", vec![Term::cst("b"), Term::cst("a")]);
        assert!(!ev.holds(&g));
        assert!(ev.holds(&F::eq(Term::cst("a"), Term::cst("a"))));
        assert!(!ev.holds(&F::eq(Term::cst("a"), Term::cst("b"))));
    }

    #[test]
    fn quantifiers_active_domain() {
        let i = graph();
        let ev = Evaluator::new(&i);
        // exists x. E(x, x)
        let f = F::exists(
            vec![Var::new("x")],
            F::atom("E", vec![Term::var("x"), Term::var("x")]),
        );
        assert!(ev.holds(&f));
        // forall x. exists y. E(x,y) — false (c has no successor)
        let g = F::forall(
            vec![Var::new("x")],
            F::exists(
                vec![Var::new("y")],
                F::atom("E", vec![Term::var("x"), Term::var("y")]),
            ),
        );
        assert!(!ev.holds(&g));
    }

    #[test]
    fn nulls_are_atomic_values() {
        // E(a, ⊥0): naive semantics says exists y. E(a,y) is true,
        // and ⊥0 = ⊥0 but ⊥0 ≠ a.
        let mut i = Instance::new();
        i.insert(
            dx_relation::RelSym::new("E"),
            Tuple::new(vec![Value::c("a"), Value::null(0)]),
        );
        let ev = Evaluator::new(&i);
        let f = F::exists(
            vec![Var::new("y")],
            F::atom("E", vec![Term::cst("a"), Term::var("y")]),
        );
        assert!(ev.holds(&f));
        // forall y. E(a,y) -> y != a  (⊥0 ≠ a under naive semantics)
        let g = F::forall(
            vec![Var::new("y")],
            F::implies(
                F::atom("E", vec![Term::cst("a"), Term::var("y")]),
                F::neq(Term::var("y"), Term::cst("a")),
            ),
        );
        assert!(ev.holds(&g));
    }

    #[test]
    fn satisfying_assignments_via_drivers() {
        let i = graph();
        let ev = Evaluator::new(&i);
        // E(x,y) & !exists z. E(y,z)  — edges into sinks: (b,c) only.
        let f = F::and([
            F::atom("E", vec![Term::var("x"), Term::var("y")]),
            F::not(F::exists(
                vec![Var::new("z")],
                F::atom("E", vec![Term::var("y"), Term::var("z")]),
            )),
        ]);
        let rows = ev.satisfying_assignments(&f, &[Var::new("x"), Var::new("y")]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec![Value::c("b"), Value::c("c")]);
    }

    #[test]
    fn satisfying_assignments_fallback_enumeration() {
        let i = graph();
        let ev = Evaluator::new(&i);
        // Disjunction: no driver atoms; x ranges over the whole domain.
        let f = F::or([
            F::atom("E", vec![Term::var("x"), Term::cst("c")]),
            F::eq(Term::var("x"), Term::cst("a")),
        ]);
        let rows = ev.satisfying_assignments(&f, &[Var::new("x")]);
        let vals: Vec<Value> = rows.into_iter().map(|r| r[0]).collect();
        assert_eq!(vals, vec![Value::c("a"), Value::c("b")]);
    }

    #[test]
    fn constants_outside_adom_need_for_formula() {
        let i = graph();
        // exists x. x = 'zebra' — only true if 'zebra' is in the domain.
        let f = F::exists(
            vec![Var::new("x")],
            F::eq(Term::var("x"), Term::cst("zebra")),
        );
        assert!(!Evaluator::new(&i).holds(&f));
        assert!(Evaluator::for_formula(&i, &f).holds(&f));
    }

    #[test]
    fn func_table_interpretation() {
        let mut ft = FuncTable::new();
        let fsym = FuncSym::new("fn1");
        ft.define(fsym, vec![Value::c("a")], Value::c("id-a"));
        let i = graph();
        let ev = Evaluator::with_domain_and_funcs(&i, i.active_domain(), &ft);
        let f = F::eq(Term::app("fn1", vec![Term::cst("a")]), Term::cst("id-a"));
        assert!(ev.holds(&f));
    }

    #[test]
    #[should_panic(expected = "undefined function application")]
    fn undefined_function_panics() {
        let ft = FuncTable::new();
        let i = graph();
        let ev = Evaluator::with_domain_and_funcs(&i, i.active_domain(), &ft);
        let f = F::eq(Term::app("fn2", vec![Term::cst("a")]), Term::cst("x"));
        ev.holds(&f);
    }

    #[test]
    fn answers_as_relation() {
        let i = graph();
        let ev = Evaluator::new(&i);
        let f = F::atom("E", vec![Term::var("x"), Term::var("y")]);
        let rel = ev.answers(&f, &[Var::new("x"), Var::new("y")]);
        assert_eq!(rel.len(), 3);
    }
}
