//! [`IndexedInstance`] as a live [`dx_query::QueryStore`].
//!
//! The delta-driven chase already maintains per-relation, per-column hash
//! indexes over the annotated store; this adapter exposes its *relational
//! part* (annotations stripped, nulls as atomic values) to the `dx-query`
//! executor, so compiled plans run directly against chase output — no
//! snapshot re-index.
//!
//! One annotated subtlety: the same underlying tuple can be live under two
//! different annotations. The adapter surfaces it once per annotated
//! occurrence; the executor's set semantics (scan dedup, final projection)
//! absorb the duplicates, which the parity test below pins down.

use crate::store::IndexedInstance;
use dx_query::QueryStore;
use dx_relation::{RelSym, Tuple, Value};

impl QueryStore for IndexedInstance {
    fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.arity(rel)
    }

    fn rel_len(&self, rel: RelSym) -> usize {
        self.ids_of(rel).count()
    }

    fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        IndexedInstance::selectivity(self, rel, pattern)
    }

    fn for_each_matching(&self, rel: RelSym, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        for id in self.matching(rel, pattern) {
            let (_, at) = self.get(id).expect("matching ids are live");
            f(&at.tuple);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::Query;
    use dx_query::CompiledQuery;
    use dx_relation::{Ann, AnnInstance, AnnTuple, Annotation};

    #[test]
    fn plans_run_on_the_live_store() {
        let r = RelSym::new("QstE");
        let mut ann = AnnInstance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            ann.insert(
                r,
                AnnTuple::new(Tuple::from_names(&[a, b]), Annotation::all_closed(2)),
            );
        }
        // Same tuple under a second annotation: must not duplicate answers.
        ann.insert(
            r,
            AnnTuple::new(
                Tuple::from_names(&["a", "b"]),
                Annotation::new(vec![Ann::Open, Ann::Open]),
            ),
        );
        let store = IndexedInstance::from_ann(&ann);
        let q = Query::parse(&["x", "z"], "exists y. QstE(x, y) & QstE(y, z)").unwrap();
        let cq = CompiledQuery::compile(&q).unwrap();
        let via_store = cq.answers_store(&store);
        let via_instance = q.answers(&ann.rel_part());
        assert_eq!(via_store, via_instance);
        assert_eq!(via_store.len(), 1, "a→b→c is the only 2-hop");
    }
}
