//! # dx-engine — the indexed, delta-driven chase engine
//!
//! The performance subsystem of `oc-exchange`. Every result reproduced from
//! the paper bottoms out in chase execution; this crate provides the fast
//! implementation of the [`dx_chase::ChaseStrategy`] contract:
//!
//! * [`store::IndexedInstance`] — a mutable annotated instance with stable
//!   tuple ids, per-relation per-column hash indexes, and a reverse
//!   `value → tuple ids` index that makes egd null-merging proportional to
//!   the affected tuples;
//! * [`chase::IndexedChase`] / [`chase::indexed_chase`] — semi-naive chase:
//!   triggers are discovered from the **delta** of the previous step (a
//!   work-queue of inserted/rewritten tuple ids) instead of full rescans,
//!   and body matching runs index-driven joins ordered by selectivity.
//!
//! The reference oracle is [`dx_chase::NaiveChase`]; the two engines are
//! differentially tested on randomized workloads in
//! `tests/engine_differential.rs`, and raced in
//! `crates/bench/benches/engine.rs` (results land in `BENCH_chase.json`).
//!
//! For sustained update traffic, [`stream::IncrementalExchange`] maintains
//! the canonical solution (and its chased closure) under source
//! [`dx_relation::Update`] batches instead of re-running the pipeline —
//! see `DESIGN.md §Streaming data exchange` for the delta protocol.

#![deny(missing_docs)]

pub mod chase;
pub mod query_store;
pub mod store;
pub mod stream;

pub use chase::{indexed_chase, IndexedChase};
pub use store::{IndexedInstance, Inserted, Rewrite};
pub use stream::{IncrementalExchange, StdPath, TargetPath, UpdateReport};
