//! The delta-driven (semi-naive) chase over an [`IndexedInstance`].
//!
//! The reference engine (`dx_chase::chase_engine`) rediscovers triggers by
//! rescanning the entire instance with nested-loop matching after every
//! step. This engine instead maintains a **work-queue of deltas** — tuple
//! ids inserted or rewritten since they were last considered — and derives
//! new triggers only from matches that *contain a delta tuple*:
//!
//! * every body match of every dependency contains a latest-arriving tuple,
//!   so seeding the match at that tuple (at every body atom whose relation
//!   fits) and joining the remaining atoms through the column indexes finds
//!   each match exactly when it first exists (the classic semi-naive
//!   argument);
//! * remaining body atoms are joined **most-selective-first**: at each step
//!   the planner picks the atom whose bound-position posting list is
//!   shortest under the current partial assignment;
//! * an egd merge `⊥ → v` rewrites only the tuples the reverse value index
//!   reports, and re-enqueues every rewritten (or collided-into) id, which
//!   re-derives exactly the matches the substitution could have created.
//!
//! Divergences from the reference engine, by design: trigger *order* differs
//! (results agree up to homomorphic equivalence — the differential harness
//! checks isomorphism of the annotated cores), and a chase that becomes
//! satisfied on exactly its last permitted step reports `Satisfied` where
//! the naive engine reports `StepLimit` (the naive engine checks the budget
//! before looking for the next trigger; this one checks before applying
//! one).
//!
//! Work metrics (`DX_OBS=1`): `engine.chase.triggers_discovered` /
//! `.triggers_fired` / `.tuples_inserted` / `.index_probes` / `.merges`
//! counters, plus `engine.chase` / `engine.chase.trigger_discovery` /
//! `.fire` / `.insert` / `.merge` spans. With `DX_TRACE=1` every span
//! also lands on the timeline, and each dequeued delta emits an
//! `engine.chase.round` instant carrying the queue depth and step count
//! — the per-round phase structure the Chrome trace viewer nests.

use crate::store::{IndexedInstance, Inserted};
use dx_chase::chase_engine::{ChaseOutcome, ChaseResult};
use dx_chase::target_deps::{TargetDep, Tgd};
use dx_chase::ChaseStrategy;
use dx_logic::Term;
use dx_relation::{AnnTuple, NullGen, RelSym, Tuple, TupleId, Value, Var};
use std::collections::{BTreeMap, VecDeque};

pub(crate) type Asg = BTreeMap<Var, Value>;

/// The indexed, delta-driven chase strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexedChase;

static PLANNED_BODY_EVAL: dx_query::PlannedBodyEval = dx_query::PlannedBodyEval;

impl ChaseStrategy for IndexedChase {
    fn name(&self) -> &'static str {
        "indexed"
    }

    /// STD bodies evaluate on `dx-query` compiled plans (index joins), so
    /// `canonical_solution_with_deps_via(&IndexedChase, …)` is indexed end
    /// to end; non-safe-range bodies fall back to the tree walker inside
    /// [`dx_query::PlannedBodyEval`].
    fn body_eval(&self) -> &dyn dx_chase::BodyEval {
        &PLANNED_BODY_EVAL
    }

    fn chase(
        &self,
        instance: dx_relation::AnnInstance,
        deps: &[TargetDep],
        gen: &mut NullGen,
        max_steps: usize,
    ) -> ChaseResult {
        indexed_chase(instance, deps, gen, max_steps)
    }

    fn satisfies(&self, instance: &dx_relation::AnnInstance, deps: &[TargetDep]) -> bool {
        let idx = IndexedInstance::from_ann(instance);
        deps.iter().all(|dep| find_trigger(&idx, dep).is_none())
    }
}

/// Run the indexed chase (see the module docs for the algorithm).
pub fn indexed_chase(
    instance: dx_relation::AnnInstance,
    deps: &[TargetDep],
    gen: &mut NullGen,
    max_steps: usize,
) -> ChaseResult {
    let _span = dx_obs::span!("engine.chase");
    let mut idx = IndexedInstance::from_ann(&instance);
    let mut queue: VecDeque<TupleId> = idx.all_ids().collect();
    let mut steps = 0usize;

    'queue: while let Some(seed) = queue.pop_front() {
        dx_obs::trace_instant!(
            "engine.chase.round",
            "queue_depth" = queue.len(),
            "steps" = steps
        );
        let Some((seed_rel, seed_at)) = idx.get(seed) else {
            continue; // retracted by an earlier merge
        };
        let seed_rel: RelSym = seed_rel;
        let seed_tuple: Tuple = seed_at.tuple.clone();

        for dep in deps {
            match dep {
                TargetDep::Tgd(tgd) => {
                    for k in atom_positions(&tgd.body, seed_rel) {
                        // Materialize the seeded matches first: applying a
                        // trigger mutates the index.
                        let matches = seeded_matches(&idx, &tgd.body, k, &seed_tuple);
                        for asg in matches {
                            // Re-check at fire time (restricted chase):
                            // earlier applications may have satisfied this
                            // head in the meantime.
                            if head_satisfiable(&idx, tgd, &asg) {
                                continue;
                            }
                            if steps >= max_steps {
                                return ChaseResult {
                                    instance: idx.to_ann(),
                                    steps,
                                    outcome: ChaseOutcome::StepLimit,
                                };
                            }
                            apply_tgd(&mut idx, tgd, &asg, gen, &mut queue);
                            steps += 1;
                        }
                    }
                }
                TargetDep::Egd(egd) => {
                    for k in atom_positions(&egd.body, seed_rel) {
                        let matches = seeded_matches(&idx, &egd.body, k, &seed_tuple);
                        for asg in matches {
                            // A merge invalidates the remaining materialized
                            // assignments (their values may have been
                            // rewritten), so re-verify against the live
                            // index before acting.
                            if !match_still_live(&idx, &egd.body, &asg) {
                                continue;
                            }
                            let l = eval_term(&egd.eq.0, &asg);
                            let r = eval_term(&egd.eq.1, &asg);
                            if l == r {
                                continue;
                            }
                            match (l, r) {
                                (Value::Const(_), Value::Const(_)) => {
                                    return ChaseResult {
                                        instance: idx.to_ann(),
                                        steps,
                                        outcome: ChaseOutcome::Failed { left: l, right: r },
                                    };
                                }
                                _ => {
                                    if steps >= max_steps {
                                        return ChaseResult {
                                            instance: idx.to_ann(),
                                            steps,
                                            outcome: ChaseOutcome::StepLimit,
                                        };
                                    }
                                    merge(&mut idx, l, r, &mut queue);
                                    steps += 1;
                                    // The seed itself may have been
                                    // rewritten; it (or its rewrite) is back
                                    // on the queue, so restart from there.
                                    if idx.get(seed).is_some() {
                                        queue.push_back(seed);
                                    }
                                    continue 'queue;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let instance = idx.to_ann();
    dx_obs::mem::publish_all(&[
        (
            dx_obs::mem::names::INSTANCE_TUPLES,
            instance.tuple_count() as u64,
        ),
        (
            dx_obs::mem::names::INSTANCE_NULLS,
            instance.nulls().len() as u64,
        ),
    ]);
    ChaseResult {
        instance,
        steps,
        outcome: ChaseOutcome::Satisfied,
    }
}

/// Positions of `rel` among the body atoms.
pub(crate) fn atom_positions(body: &[(RelSym, Vec<Term>)], rel: RelSym) -> Vec<usize> {
    body.iter()
        .enumerate()
        .filter(|(_, (r, _))| *r == rel)
        .map(|(i, _)| i)
        .collect()
}

/// The index probe pattern of `args` under a partial assignment.
pub(crate) fn pattern(args: &[Term], asg: &Asg) -> Vec<Option<Value>> {
    args.iter()
        .map(|t| match t {
            Term::Const(c) => Some(Value::Const(*c)),
            Term::Var(v) => asg.get(v).copied(),
            Term::App(_, _) => unreachable!("dependency bodies are function-free"),
        })
        .collect()
}

/// Unify `args` with a concrete tuple, extending `asg`; newly bound
/// variables are pushed onto `bound` for backtracking.
pub(crate) fn match_tuple(
    tuple: &Tuple,
    args: &[Term],
    asg: &mut Asg,
    bound: &mut Vec<Var>,
) -> bool {
    for (j, term) in args.iter().enumerate() {
        let val = tuple.get(j);
        match term {
            Term::Const(c) => {
                if val != Value::Const(*c) {
                    return false;
                }
            }
            Term::Var(v) => match asg.get(v) {
                Some(&existing) => {
                    if existing != val {
                        return false;
                    }
                }
                None => {
                    asg.insert(*v, val);
                    bound.push(*v);
                }
            },
            Term::App(_, _) => unreachable!("dependency bodies are function-free"),
        }
    }
    true
}

/// Index-driven join of the `remaining` atoms (most selective first), calling
/// `visit` on every complete assignment; `visit` returning `true` stops the
/// enumeration.
pub(crate) fn join(
    idx: &IndexedInstance,
    atoms: &[(RelSym, Vec<Term>)],
    remaining: &mut Vec<usize>,
    asg: &mut Asg,
    visit: &mut dyn FnMut(&Asg) -> bool,
) -> bool {
    if remaining.is_empty() {
        return visit(asg);
    }
    // Pick the atom with the tightest posting list under the current
    // bindings (dynamic selectivity ordering).
    let pick = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &ai)| {
            let (rel, args) = &atoms[ai];
            idx.selectivity(*rel, &pattern(args, asg))
        })
        .map(|(i, _)| i)
        .expect("remaining is non-empty");
    let ai = remaining.swap_remove(pick);
    let (rel, args) = &atoms[ai];
    let mut stop = false;
    dx_obs::count!("engine.chase.index_probes");
    for id in idx.matching(*rel, &pattern(args, asg)) {
        let Some((_, at)) = idx.get(id) else { continue };
        let mut bound: Vec<Var> = Vec::new();
        if match_tuple(&at.tuple, args, asg, &mut bound) && join(idx, atoms, remaining, asg, visit)
        {
            stop = true;
        }
        for v in bound {
            asg.remove(&v);
        }
        if stop {
            break;
        }
    }
    remaining.push(ai);
    stop
}

/// All body matches in which the seed tuple plays body atom `k`.
pub(crate) fn seeded_matches(
    idx: &IndexedInstance,
    body: &[(RelSym, Vec<Term>)],
    k: usize,
    seed_tuple: &Tuple,
) -> Vec<Asg> {
    let mut asg = Asg::new();
    let mut bound = Vec::new();
    if !match_tuple(seed_tuple, &body[k].1, &mut asg, &mut bound) {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..body.len()).filter(|&i| i != k).collect();
    let mut out = Vec::new();
    {
        let _span = dx_obs::span!("engine.chase.trigger_discovery");
        join(idx, body, &mut remaining, &mut asg, &mut |a| {
            out.push(a.clone());
            false
        });
    }
    dx_obs::count!("engine.chase.triggers_discovered", out.len());
    out
}

/// Is a materialized body match still realized by live tuples (used to
/// re-validate egd matches after a merge)?
pub(crate) fn match_still_live(
    idx: &IndexedInstance,
    body: &[(RelSym, Vec<Term>)],
    asg: &Asg,
) -> bool {
    body.iter().all(|(rel, args)| {
        let pat = pattern(args, asg);
        debug_assert!(pat.iter().all(|p| p.is_some()), "match is total");
        !idx.matching(*rel, &pat).is_empty()
    })
}

/// Can the tgd's head be extended into the instance under `asg` (restricted
/// chase check), with existential variables drawn from live tuples?
pub(crate) fn head_satisfiable(idx: &IndexedInstance, tgd: &Tgd, asg: &Asg) -> bool {
    let atoms: Vec<(RelSym, Vec<Term>)> =
        tgd.head.iter().map(|a| (a.rel, a.args.clone())).collect();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut local = asg.clone();
    join(idx, &atoms, &mut remaining, &mut local, &mut |_| true)
}

/// Fire a tgd trigger: fresh nulls for existential variables, insert the
/// annotated head atoms, enqueue fresh tuples as deltas.
fn apply_tgd(
    idx: &mut IndexedInstance,
    tgd: &Tgd,
    asg: &Asg,
    gen: &mut NullGen,
    queue: &mut VecDeque<TupleId>,
) {
    let _span = dx_obs::span!("engine.chase.fire");
    dx_obs::count!("engine.chase.triggers_fired");
    let mut env = asg.clone();
    for z in tgd.existential_vars() {
        env.insert(z, Value::Null(gen.fresh()));
    }
    let _insert_span = dx_obs::span!("engine.chase.insert");
    for atom in &tgd.head {
        let vals: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => env[v],
                Term::Const(c) => Value::Const(*c),
                Term::App(_, _) => unreachable!("tgd heads are function-free"),
            })
            .collect();
        if let Inserted::Fresh(id) =
            idx.insert(atom.rel, AnnTuple::new(Tuple::new(vals), atom.ann.clone()))
        {
            dx_obs::count!("engine.chase.tuples_inserted");
            queue.push_back(id);
        }
    }
}

/// Merge `l` and `r` (at least one side is a null): substitute the null by
/// the other value across the store, enqueueing every rewritten id and every
/// id a rewrite collided into (a collision target participates in new joins
/// through the merged value, so it must be re-examined).
pub(crate) fn merge(idx: &mut IndexedInstance, l: Value, r: Value, queue: &mut VecDeque<TupleId>) {
    let _span = dx_obs::span!("engine.chase.merge");
    dx_obs::count!("engine.chase.triggers_fired");
    dx_obs::count!("engine.chase.merges");
    let (null, target) = match (l, r) {
        (Value::Null(n), other) => (n, other),
        (other, Value::Null(n)) => (n, other),
        _ => unreachable!("constant/constant clashes fail the chase"),
    };
    for rw in idx.replace_value(Value::Null(null), target) {
        queue.push_back(rw.new.id());
    }
}

/// Search the whole store for a trigger of `dep` (used by
/// [`IndexedChase::satisfies`]): an unsatisfied-head tgd match or a violated
/// egd match.
pub(crate) fn find_trigger(idx: &IndexedInstance, dep: &TargetDep) -> Option<Asg> {
    fn search(
        idx: &IndexedInstance,
        body: &[(RelSym, Vec<Term>)],
        is_violation: &dyn Fn(&Asg) -> bool,
    ) -> Option<Asg> {
        let mut remaining: Vec<usize> = (0..body.len()).collect();
        let mut asg = Asg::new();
        let mut found = None;
        join(idx, body, &mut remaining, &mut asg, &mut |a| {
            if is_violation(a) {
                found = Some(a.clone());
                true
            } else {
                false
            }
        });
        found
    }
    match dep {
        TargetDep::Tgd(tgd) => search(idx, &tgd.body, &|asg| !head_satisfiable(idx, tgd, asg)),
        TargetDep::Egd(egd) => search(idx, &egd.body, &|asg| {
            eval_term(&egd.eq.0, asg) != eval_term(&egd.eq.1, asg)
        }),
    }
}

pub(crate) fn eval_term(t: &Term, asg: &Asg) -> Value {
    match t {
        Term::Var(v) => asg[v],
        Term::Const(c) => Value::Const(*c),
        Term::App(_, _) => unreachable!("egds are function-free"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::chase_engine::DEFAULT_CHASE_LIMIT;
    use dx_chase::{canonical_solution, Mapping};
    use dx_relation::{AnnInstance, Annotation, Instance, RelSym};

    fn csol_of(rules: &str, facts: &[(&str, &[&str])]) -> AnnInstance {
        let m = Mapping::parse(rules).unwrap();
        let mut s = Instance::new();
        for (rel, names) in facts {
            s.insert_names(rel, names);
        }
        canonical_solution(&m, &s).instance
    }

    #[test]
    fn symmetry_tgd_closes_the_graph() {
        let inst = csol_of("G(x:cl, y:cl) <- E(x, y)", &[("E", &["a", "b"])]);
        let deps = TargetDep::parse_many("G(y:cl, x:cl) <- G(x, y)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = indexed_chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        assert_eq!(out.steps, 1);
        let g = out.instance.rel_part();
        assert!(g.contains(RelSym::new("G"), &Tuple::from_names(&["b", "a"])));
        assert!(IndexedChase.satisfies(&out.instance, &deps));
    }

    #[test]
    fn restricted_chase_does_not_refire() {
        let inst = csol_of("Emp(e:cl) <- Src(e)", &[("Src", &["ada"])]);
        let deps = TargetDep::parse_many("Dept(e:cl, d:op) <- Emp(e)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = indexed_chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        assert_eq!(out.steps, 1);
        let again = indexed_chase(out.instance.clone(), &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(again.steps, 0);
        assert_eq!(again.instance, out.instance);
    }

    #[test]
    fn egd_merges_null_chain_to_constant() {
        // R(a, ⊥1), R(a, ⊥2), R(a, k): the FD collapses everything to k.
        let mut inst = AnnInstance::new();
        let r = RelSym::new("EngR");
        for v in [Value::null(1), Value::null(2), Value::c("k")] {
            inst.insert(
                r,
                AnnTuple::new(
                    Tuple::new(vec![Value::c("a"), v]),
                    Annotation::all_closed(2),
                ),
            );
        }
        let deps = TargetDep::parse_many("y1 = y2 <- EngR(x, y1) & EngR(x, y2)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = indexed_chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        let rel = out.instance.relation(r).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel.iter().next().unwrap().tuple,
            Tuple::from_names(&["a", "k"])
        );
    }

    #[test]
    fn egd_constant_clash_fails() {
        let mut inst = AnnInstance::new();
        let r = RelSym::new("EngF");
        inst.insert(
            r,
            AnnTuple::new(Tuple::from_names(&["a", "k"]), Annotation::all_closed(2)),
        );
        inst.insert(
            r,
            AnnTuple::new(Tuple::from_names(&["a", "l"]), Annotation::all_closed(2)),
        );
        let deps = TargetDep::parse_many("y1 = y2 <- EngF(x, y1) & EngF(x, y2)").unwrap();
        let mut gen = NullGen::new();
        let out = indexed_chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert!(matches!(out.outcome, ChaseOutcome::Failed { .. }));
    }

    #[test]
    fn non_weakly_acyclic_hits_step_limit() {
        let mut inst = AnnInstance::new();
        inst.insert(
            RelSym::new("EngChain"),
            AnnTuple::new(Tuple::from_names(&["a", "b"]), Annotation::all_closed(2)),
        );
        let deps = TargetDep::parse_many("EngChain(y:cl, z:cl) <- EngChain(x, y)").unwrap();
        let mut gen = NullGen::new();
        let out = indexed_chase(inst, &deps, &mut gen, 25);
        assert_eq!(out.outcome, ChaseOutcome::StepLimit);
        assert_eq!(out.steps, 25);
    }

    #[test]
    fn multi_atom_join_through_indexes() {
        // Triangle completion: T(x,z) <- E(x,y) & E(y,z); chase a path.
        let mut inst = AnnInstance::new();
        let e = RelSym::new("EngE");
        for (a, b) in [("v0", "v1"), ("v1", "v2"), ("v2", "v3")] {
            inst.insert(
                e,
                AnnTuple::new(Tuple::from_names(&[a, b]), Annotation::all_closed(2)),
            );
        }
        let deps = TargetDep::parse_many("EngT(x:cl, z:cl) <- EngE(x, y) & EngE(y, z)").unwrap();
        let mut gen = NullGen::new();
        let out = indexed_chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        let t = out.instance.relation(RelSym::new("EngT")).unwrap();
        assert_eq!(t.len(), 2, "v0→v2 and v1→v3");
        assert!(IndexedChase.satisfies(&out.instance, &deps));
    }
}
