//! Incremental data exchange: maintain the canonical solution under
//! source [`Update`] batches instead of re-chasing from scratch.
//!
//! [`IncrementalExchange`] owns a ground source instance and keeps two
//! layers of derived state consistent with it across update batches:
//!
//! **Layer 1 — the annotated canonical solution `CSol_A(S)`.** For every
//! STD the engine maintains the set of body *witnesses* (satisfying
//! assignments over the source) together with the nulls each witness
//! minted. Conjunctive bodies are maintained by **seeded semi-naive
//! diffing**: a retracted source tuple is unified against each body atom
//! over the *old* source index to enumerate exactly the dying witnesses,
//! and an inserted tuple is seeded the same way over the *new* index to
//! enumerate exactly the newborn ones (on a ground source a full body
//! assignment determines its atom tuples, so the dead and born sets are
//! disjoint and exact). Non-CQ bodies (negation, disjunction, explicit
//! quantifiers) are re-evaluated and diffed against the stored witness
//! set. Head tuples are reference-counted across witnesses (`(rel,
//! annotated-tuple) → producer count`) so a shared ground head tuple
//! survives until its *last* witness dies, while null-bearing head tuples
//! (unique to their witness, since nulls are fresh) are removed — and
//! their nulls garbage-collected from the justification table — exactly
//! when their witness dies. Empty-annotated-tuple markers `(_, α)` are
//! likewise counted per `(relation, annotation)` across the STD head
//! atoms whose witness set is empty.
//!
//! **Layer 2 — the chased target (when target constraints are present).**
//! The engine runs the same indexed restricted chase as
//! [`crate::indexed_chase`], but *records derivations*: each tgd firing
//! logs the tuple ids its body matched and the head ids it produced.
//! Retraction uses **overdelete + re-derive** (DRed-style), not
//! derivation counting — counting alone is unsound for recursive tgds,
//! where a cycle of derivations (e.g. a symmetry tgd) keeps tuples alive
//! with no surviving base support. A base deletion kills every firing
//! whose recorded body contains a deleted id, transitively overdeleting
//! their heads; overdeleted tuples still present in Layer 1 are
//! re-inserted, the rest get a **head-seeded re-derivation** pass (unify
//! the lost tuple with each tgd head, join the body under the surviving
//! frontier bindings, re-fire if the head became unsatisfiable), and a
//! final semi-naive closure restores satisfaction. Egd merges rewrite
//! tuple ids wholesale, which stales the derivation log — the engine
//! tracks a `merged` taint and falls back to a full **rebuild** of the
//! target layer (a from-scratch re-chase of the maintained `CSol_A`) on
//! the next deleting batch, as it does after `Failed`/`StepLimit`
//! outcomes or empty-marker transitions. The rebuild shares the recording
//! closure with the incremental path, so there is a single code path to
//! trust.
//!
//! The full protocol — including the per-regime soundness table for
//! certain/possible/GCWA*/approx answers — is documented in
//! `DESIGN.md §Streaming data exchange`; the query-layer maintenance
//! built on top of this type lives in `dx-core`'s `StreamSession`.

use crate::chase::{self, Asg};
use crate::store::{IndexedInstance, Inserted};
use dx_chase::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
use dx_chase::target_deps::{TargetDep, Tgd};
use dx_chase::{
    head_env, instantiate_atom, BodyEval, CanonicalSolution, Justification, Mapping, Std,
};
use dx_logic::{Formula, Term};
use dx_relation::{
    AnnInstance, AnnTuple, Annotation, FastMap, Instance, NullGen, NullId, RelSym, Tuple, TupleId,
    Update, Value, Var,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

static PLANNED_BODY_EVAL: dx_query::PlannedBodyEval = dx_query::PlannedBodyEval;

/// How one STD was maintained during an update batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StdPath {
    /// Body relations disjoint from the delta — nothing to do.
    Skipped,
    /// Conjunctive body: dead/born witnesses enumerated by seeding the
    /// changed tuples into the body join.
    Seeded,
    /// Non-CQ body: witnesses re-evaluated from scratch and diffed.
    Recomputed,
}

/// How the chased target layer was maintained during an update batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetPath {
    /// No target constraints (or the canonical solution did not change) —
    /// the target layer is the canonical solution itself.
    None,
    /// Overdelete + re-derive + semi-naive closure over the recorded
    /// derivation log.
    Incremental {
        /// Tuples removed by the overdelete cascade (including those
        /// subsequently re-inserted or re-derived).
        overdeleted: usize,
        /// Chase steps spent by re-derivation and the closing run.
        steps: usize,
    },
    /// Full re-chase of the maintained canonical solution (egd-merge
    /// taint, a non-`Satisfied` prior outcome, or an empty-marker
    /// transition).
    Rebuilt {
        /// Chase steps spent by the rebuild.
        steps: usize,
    },
}

/// What one [`IncrementalExchange::update`] call did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Source tuples whose membership actually flipped.
    pub effective_ops: usize,
    /// Per-STD maintenance path taken, by STD index.
    pub std_paths: Vec<StdPath>,
    /// Witnesses that died across all STDs.
    pub witnesses_died: usize,
    /// Witnesses born across all STDs.
    pub witnesses_born: usize,
    /// Annotated tuples removed from the canonical solution.
    pub csol_removed: usize,
    /// Annotated tuples added to the canonical solution.
    pub csol_added: usize,
    /// Nulls garbage-collected (all their derivations died).
    pub nulls_collected: usize,
    /// The annotated tuples the batch added to the canonical solution —
    /// the csol-level delta downstream consumers (e.g. delta-plan query
    /// maintenance) feed forward.
    pub added: Vec<(RelSym, AnnTuple)>,
    /// The annotated tuples the batch removed from the canonical solution.
    pub removed: Vec<(RelSym, AnnTuple)>,
    /// Did any STD's empty-marker set flip (a witness set became empty or
    /// non-empty)? Markers are invisible to `rel(·)` but shape the
    /// representation space `Rep_A`, so search-based consumers must
    /// recompute when this is set even if no tuple changed.
    pub marks_changed: bool,
    /// How the chased target layer was maintained.
    pub target: TargetPath,
}

impl UpdateReport {
    /// Target relations whose canonical-solution contents changed.
    pub fn changed_rels(&self) -> BTreeSet<RelSym> {
        self.added
            .iter()
            .chain(self.removed.iter())
            .map(|(rel, _)| *rel)
            .collect()
    }
}

/// Per-STD incremental state: the maintained witness set and the nulls
/// each witness minted.
struct StdState {
    /// Body atoms when the body is a pure conjunctive query (the seeded
    /// diffing fast path); `None` forces recompute-and-diff.
    cq: Option<Vec<(RelSym, Vec<Term>)>>,
    /// Relations the body reads — used to skip untouched STDs.
    body_rels: BTreeSet<RelSym>,
    /// Free variables of the body, in [`Std::body_vars`] order.
    body_vars: Vec<Var>,
    /// witness row (in `body_vars` order) → nulls it minted, as
    /// `(existential var, null)` pairs.
    witnesses: BTreeMap<Vec<Value>, Vec<(Var, NullId)>>,
}

/// One recorded tgd firing in the target-layer derivation log.
struct Firing {
    /// Ids of the head tuples this firing produced (or found already
    /// present — overdeleting a duplicate is conservative but sound,
    /// since re-derivation restores independently supported tuples).
    heads: Vec<TupleId>,
    /// Is this firing still supported (no recorded body tuple deleted)?
    alive: bool,
}

/// The chased target layer: index, derivation log, and taint flags.
struct TargetState {
    idx: IndexedInstance,
    outcome: ChaseOutcome,
    /// Ids of the Layer-1 (canonical-solution) tuples inside `idx`,
    /// keyed by their annotated content.
    base_ids: FastMap<(RelSym, AnnTuple), TupleId>,
    firings: Vec<Firing>,
    /// body tuple id → indices of firings that matched it.
    by_body: FastMap<TupleId, Vec<usize>>,
    /// An egd merge rewrote ids — the derivation log is stale, so the
    /// next deleting batch must rebuild.
    merged: bool,
}

/// Incrementally maintained data exchange over a mutable ground source
/// (see the module docs for the delta protocol).
///
/// ```
/// use dx_chase::Mapping;
/// use dx_engine::IncrementalExchange;
/// use dx_relation::{Instance, Update};
///
/// let mapping = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
/// let mut source = Instance::new();
/// source.insert_names("E", &["a", "b"]);
///
/// let mut inc = IncrementalExchange::new(mapping, Vec::new(), source);
/// assert_eq!(inc.csol().tuple_count(), 1);
///
/// let report = inc.update(
///     &Update::new()
///         .insert_names("E", &["b", "c"])
///         .retract_names("E", &["a", "b"]),
/// );
/// assert_eq!(report.witnesses_born, 1);
/// assert_eq!(report.witnesses_died, 1);
/// assert_eq!(report.nulls_collected, 1);
/// assert_eq!(inc.csol().tuple_count(), 1);
/// ```
pub struct IncrementalExchange {
    mapping: Mapping,
    constraints: Vec<TargetDep>,
    source: Instance,
    /// The source mirrored into a column-indexed store (with dummy
    /// all-closed annotations) so the chase's seeded join machinery can
    /// enumerate witnesses.
    src_idx: IndexedInstance,
    gen: NullGen,
    stds: Vec<StdState>,
    /// `(rel, annotated head tuple) → number of witnesses producing it`.
    head_counts: FastMap<(RelSym, AnnTuple), u32>,
    /// `(rel, annotation) → number of empty-witness STD head atoms
    /// producing the empty marker `(_, α)``.
    mark_counts: FastMap<(RelSym, Annotation), u32>,
    csol: AnnInstance,
    null_origin: BTreeMap<NullId, Justification>,
    target: Option<TargetState>,
    max_steps: usize,
}

/// Flatten a pure conjunctive body into its atom list; `None` when the
/// body uses negation, disjunction, equality, or explicit quantifiers.
fn cq_atoms(f: &Formula) -> Option<Vec<(RelSym, Vec<Term>)>> {
    fn go(f: &Formula, out: &mut Vec<(RelSym, Vec<Term>)>) -> bool {
        match f {
            Formula::True => true,
            Formula::Atom(rel, args) => {
                if args.iter().any(|t| t.has_funcs()) {
                    return false;
                }
                out.push((*rel, args.clone()));
                true
            }
            Formula::And(fs) => fs.iter().all(|g| go(g, out)),
            _ => false,
        }
    }
    let mut out = Vec::new();
    (go(f, &mut out) && !out.is_empty()).then_some(out)
}

/// Mirror a ground source tuple into the indexed store (the annotation is
/// a placeholder; source tuples carry no open/closed semantics).
fn src_ann(t: &Tuple) -> AnnTuple {
    AnnTuple::new(t.clone(), Annotation::all_closed(t.arity()))
}

impl IncrementalExchange {
    /// Build the exchange state for `source` under `mapping` and target
    /// `constraints`, chasing with the default step limit.
    ///
    /// Panics if the source is not ground (the data-exchange setting).
    pub fn new(mapping: Mapping, constraints: Vec<TargetDep>, source: Instance) -> Self {
        Self::with_step_limit(mapping, constraints, source, DEFAULT_CHASE_LIMIT)
    }

    /// [`IncrementalExchange::new`] with an explicit per-batch chase step
    /// budget.
    pub fn with_step_limit(
        mapping: Mapping,
        constraints: Vec<TargetDep>,
        source: Instance,
        max_steps: usize,
    ) -> Self {
        assert!(source.is_ground(), "source instances must be over Const");
        let mut src_idx = IndexedInstance::new();
        for (rel, r) in source.relations() {
            for t in r.iter() {
                src_idx.insert(rel, src_ann(t));
            }
        }
        let mut inc = IncrementalExchange {
            stds: mapping
                .stds
                .iter()
                .map(|std| StdState {
                    cq: cq_atoms(&std.body),
                    body_rels: std.body.relations().into_iter().map(|(r, _)| r).collect(),
                    body_vars: std.body_vars(),
                    witnesses: BTreeMap::new(),
                })
                .collect(),
            mapping,
            constraints,
            source,
            src_idx,
            gen: NullGen::new(),
            head_counts: FastMap::default(),
            mark_counts: FastMap::default(),
            csol: AnnInstance::new(),
            null_origin: BTreeMap::new(),
            target: None,
            max_steps,
        };
        // Initial build = the canonical-solution construction, executed
        // through the same birth path updates use (so null numbering
        // follows witness order exactly like `canonical_solution`).
        for i in 0..inc.stds.len() {
            let rows = PLANNED_BODY_EVAL.witnesses(&inc.mapping.stds[i], &inc.source);
            if rows.is_empty() {
                let Self {
                    mapping,
                    mark_counts,
                    csol,
                    ..
                } = &mut inc;
                for atom in &mapping.stds[i].head {
                    let slot = mark_counts.entry((atom.rel, atom.ann.clone())).or_insert(0);
                    *slot += 1;
                    if *slot == 1 {
                        csol.insert_empty_mark(atom.rel, atom.ann.clone());
                    }
                }
            }
            let mut report = UpdateReport::empty(0);
            let mut added = Vec::new();
            for row in rows {
                inc.birth_witness(i, row, &mut report, &mut added);
            }
        }
        if !inc.constraints.is_empty() {
            inc.rebuild_target();
        }
        inc
    }

    /// The current source instance.
    pub fn source(&self) -> &Instance {
        &self.source
    }

    /// The maintained annotated canonical solution `CSol_A(S)`.
    pub fn csol(&self) -> &AnnInstance {
        &self.csol
    }

    /// Assemble the maintained state into a [`CanonicalSolution`]
    /// (instance + null justifications + per-STD witness lists). Null
    /// *ids* differ from a from-scratch `canonical_solution` run after
    /// retractions (freshness is monotone; ids are never reused), but the
    /// result is isomorphic to it — the differential harness checks
    /// exactly that.
    pub fn canonical(&self) -> CanonicalSolution {
        CanonicalSolution {
            instance: self.csol.clone(),
            null_origin: self.null_origin.clone(),
            witnesses: self
                .stds
                .iter()
                .map(|st| st.witnesses.keys().cloned().collect())
                .collect(),
        }
    }

    /// The chased target instance: the canonical solution chased with the
    /// target constraints (or the canonical solution itself when there
    /// are none).
    pub fn chased(&self) -> AnnInstance {
        match &self.target {
            Some(ts) => ts.idx.to_ann(),
            None => self.csol.clone(),
        }
    }

    /// Outcome of the most recent target chase (`Satisfied` when there
    /// are no constraints).
    pub fn chase_outcome(&self) -> ChaseOutcome {
        match &self.target {
            Some(ts) => ts.outcome.clone(),
            None => ChaseOutcome::Satisfied,
        }
    }

    /// Apply one update batch and propagate it through both layers.
    pub fn update(&mut self, up: &Update) -> UpdateReport {
        let applied = up.apply(&mut self.source);
        let mut report = UpdateReport::empty(self.stds.len());
        report.effective_ops = applied.inserted.len() + applied.retracted.len();
        if applied.is_noop() {
            return report;
        }
        let touched = applied.touched_rels();

        // Phase A: enumerate dying witnesses of CQ bodies by seeding each
        // retracted tuple into the body join over the OLD source index.
        let mut dead: Vec<BTreeSet<Vec<Value>>> = vec![BTreeSet::new(); self.stds.len()];
        let mut born: Vec<BTreeSet<Vec<Value>>> = vec![BTreeSet::new(); self.stds.len()];
        for (i, st) in self.stds.iter().enumerate() {
            if st.body_rels.is_disjoint(&touched) {
                continue;
            }
            if let Some(atoms) = &st.cq {
                report.std_paths[i] = StdPath::Seeded;
                for (rel, t) in &applied.retracted {
                    for k in chase::atom_positions(atoms, *rel) {
                        for asg in chase::seeded_matches(&self.src_idx, atoms, k, t) {
                            dead[i].insert(st.row_of(&asg));
                        }
                    }
                }
            } else {
                report.std_paths[i] = StdPath::Recomputed;
            }
        }

        // Mutate the mirrored source index to the new source.
        for (rel, t) in &applied.retracted {
            let pat: Vec<Option<Value>> = (0..t.arity()).map(|j| Some(t.get(j))).collect();
            for id in self.src_idx.matching(*rel, &pat) {
                self.src_idx.retract(id);
            }
        }
        for (rel, t) in &applied.inserted {
            self.src_idx.insert(*rel, src_ann(t));
        }

        // Phase B: newborn witnesses — seeded over the NEW index for CQ
        // bodies, recompute-and-diff for everything else.
        for (i, st) in self.stds.iter().enumerate() {
            match report.std_paths[i] {
                StdPath::Skipped => {}
                StdPath::Seeded => {
                    let atoms = st.cq.as_ref().expect("seeded path implies CQ");
                    for (rel, t) in &applied.inserted {
                        for k in chase::atom_positions(atoms, *rel) {
                            for asg in chase::seeded_matches(&self.src_idx, atoms, k, t) {
                                let row = st.row_of(&asg);
                                if !st.witnesses.contains_key(&row) {
                                    born[i].insert(row);
                                }
                            }
                        }
                    }
                }
                StdPath::Recomputed => {
                    let rows: BTreeSet<Vec<Value>> = PLANNED_BODY_EVAL
                        .witnesses(&self.mapping.stds[i], &self.source)
                        .into_iter()
                        .collect();
                    dead[i] = st
                        .witnesses
                        .keys()
                        .filter(|w| !rows.contains(*w))
                        .cloned()
                        .collect();
                    born[i] = rows
                        .into_iter()
                        .filter(|w| !st.witnesses.contains_key(w))
                        .collect();
                }
            }
        }

        // Apply witness deaths and births to the canonical solution.
        let mut marks_changed = false;
        let mut added_tuples: Vec<(RelSym, AnnTuple)> = Vec::new();
        let mut removed_tuples: Vec<(RelSym, AnnTuple)> = Vec::new();
        for i in 0..self.stds.len() {
            let was_empty = self.stds[i].witnesses.is_empty();
            for row in std::mem::take(&mut dead[i]) {
                self.kill_witness(i, &row, &mut report, &mut removed_tuples);
            }
            for row in std::mem::take(&mut born[i]) {
                self.birth_witness(i, row, &mut report, &mut added_tuples);
            }
            let now_empty = self.stds[i].witnesses.is_empty();
            if was_empty != now_empty {
                marks_changed = true;
                self.shift_marks(i, now_empty);
            }
        }

        // Propagate the canonical-solution delta into the chased target.
        if self.target.is_some()
            && (!added_tuples.is_empty() || !removed_tuples.is_empty() || marks_changed)
        {
            report.target = self.update_target(&added_tuples, &removed_tuples, marks_changed);
        }
        report.added = added_tuples;
        report.removed = removed_tuples;
        report.marks_changed = marks_changed;
        report
    }

    /// Kill one witness of STD `i`: decrement its head tuples' producer
    /// counts (removing tuples whose last producer died) and
    /// garbage-collect the nulls it minted.
    fn kill_witness(
        &mut self,
        i: usize,
        row: &[Value],
        report: &mut UpdateReport,
        removed: &mut Vec<(RelSym, AnnTuple)>,
    ) {
        let Self {
            mapping,
            stds,
            head_counts,
            csol,
            null_origin,
            ..
        } = self;
        let st = &mut stds[i];
        let Some(minted) = st.witnesses.remove(row) else {
            return;
        };
        report.witnesses_died += 1;
        let mut env: BTreeMap<Var, Value> = st
            .body_vars
            .iter()
            .copied()
            .zip(row.iter().copied())
            .collect();
        for (var, null) in &minted {
            env.insert(*var, Value::Null(*null));
        }
        for atom in &mapping.stds[i].head {
            let at = AnnTuple::new(instantiate_atom(&atom.args, &env), atom.ann.clone());
            let key = (atom.rel, at);
            let slot = head_counts
                .get_mut(&key)
                .expect("every witness head tuple is counted");
            *slot -= 1;
            if *slot == 0 {
                head_counts.remove(&key);
                csol.remove(key.0, &key.1);
                report.csol_removed += 1;
                removed.push(key);
            }
        }
        for (_, null) in minted {
            null_origin.remove(&null);
            report.nulls_collected += 1;
        }
    }

    /// Birth one witness of STD `i`: mint fresh nulls for its existential
    /// variables (recording justifications) and insert its head tuples.
    fn birth_witness(
        &mut self,
        i: usize,
        row: Vec<Value>,
        report: &mut UpdateReport,
        added: &mut Vec<(RelSym, AnnTuple)>,
    ) {
        let Self {
            mapping,
            stds,
            head_counts,
            csol,
            null_origin,
            gen,
            ..
        } = self;
        let std: &Std = &mapping.stds[i];
        let mut minted: Vec<(Var, NullId)> = Vec::new();
        let env = head_env(std, &row, gen, |var, null| {
            null_origin.insert(
                null,
                Justification {
                    std_idx: i,
                    witness: row.clone(),
                    var,
                },
            );
            minted.push((var, null));
        });
        report.witnesses_born += 1;
        for atom in &std.head {
            let at = AnnTuple::new(instantiate_atom(&atom.args, &env), atom.ann.clone());
            let key = (atom.rel, at);
            let slot = head_counts.entry(key.clone()).or_insert(0);
            *slot += 1;
            if *slot == 1 {
                csol.insert(key.0, key.1.clone());
                report.csol_added += 1;
                added.push(key);
            }
        }
        stds[i].witnesses.insert(row, minted);
    }

    /// STD `i`'s witness set crossed the empty/non-empty boundary: shift
    /// the empty-marker counts of its head atoms accordingly.
    fn shift_marks(&mut self, i: usize, now_empty: bool) {
        let Self {
            mapping,
            mark_counts,
            csol,
            ..
        } = self;
        for atom in &mapping.stds[i].head {
            let key = (atom.rel, atom.ann.clone());
            if now_empty {
                let slot = mark_counts.entry(key.clone()).or_insert(0);
                *slot += 1;
                if *slot == 1 {
                    csol.insert_empty_mark(key.0, key.1);
                }
            } else {
                let slot = mark_counts
                    .get_mut(&key)
                    .expect("non-empty transition implies a counted marker");
                *slot -= 1;
                if *slot == 0 {
                    mark_counts.remove(&key);
                    csol.remove_empty_mark(key.0, &key.1);
                }
            }
        }
    }

    /// Re-chase the maintained canonical solution from scratch (with
    /// derivation recording) — the fallback path, and the initial build.
    fn rebuild_target(&mut self) -> usize {
        let mut ts = TargetState {
            idx: IndexedInstance::new(),
            outcome: ChaseOutcome::Satisfied,
            base_ids: FastMap::default(),
            firings: Vec::new(),
            by_body: FastMap::default(),
            merged: false,
        };
        let mut queue = VecDeque::new();
        for (rel, r) in self.csol.relations() {
            for ann in r.empty_marks() {
                ts.idx.insert_empty_mark(rel, ann.clone());
            }
            for at in r.iter() {
                let id = ts.idx.insert(rel, at.clone()).id();
                ts.base_ids.insert((rel, at.clone()), id);
                queue.push_back(id);
            }
        }
        let steps = run_closure(
            &mut ts,
            &self.constraints,
            &mut self.gen,
            self.max_steps,
            0,
            queue,
        );
        self.target = Some(ts);
        steps
    }

    /// Propagate a canonical-solution delta into the chased target:
    /// overdelete + re-derive when the derivation log is trustworthy,
    /// full rebuild otherwise.
    fn update_target(
        &mut self,
        added: &[(RelSym, AnnTuple)],
        removed: &[(RelSym, AnnTuple)],
        marks_changed: bool,
    ) -> TargetPath {
        let stale = {
            let ts = self.target.as_ref().expect("target layer present");
            marks_changed
                || ts.outcome != ChaseOutcome::Satisfied
                || (ts.merged && !removed.is_empty())
        };
        if stale {
            let steps = self.rebuild_target();
            return TargetPath::Rebuilt { steps };
        }
        let ts = self.target.as_mut().expect("target layer present");

        // Overdelete: kill every firing a deleted tuple fed, cascading
        // through the derivation log.
        let mut dq: VecDeque<TupleId> = removed
            .iter()
            .filter_map(|key| ts.base_ids.remove(key))
            .collect();
        let mut deleted: Vec<(RelSym, AnnTuple)> = Vec::new();
        while let Some(id) = dq.pop_front() {
            let Some((rel, at)) = ts.idx.retract(id) else {
                continue; // already overdeleted via another firing
            };
            deleted.push((rel, at));
            if let Some(fids) = ts.by_body.get(&id) {
                for &fi in fids {
                    let f = &mut ts.firings[fi];
                    if f.alive {
                        f.alive = false;
                        dq.extend(f.heads.iter().copied());
                    }
                }
            }
        }
        let overdeleted = deleted.len();

        // Re-insert overdeleted tuples that are still canonical-solution
        // (Layer 1) tuples — their base support is independent of the
        // killed firings.
        let mut queue = VecDeque::new();
        let mut reinserted: BTreeSet<(RelSym, AnnTuple)> = BTreeSet::new();
        for (rel, at) in &deleted {
            if self.csol.contains(*rel, at) {
                let id = ts.idx.insert(*rel, at.clone()).id();
                ts.base_ids.insert((*rel, at.clone()), id);
                queue.push_back(id);
                reinserted.insert((*rel, at.clone()));
            }
        }

        // Head-seeded re-derivation: a lost derived tuple may have other
        // live derivations the (conservative) overdelete destroyed. Unify
        // it with every tgd head, join the body under the surviving
        // frontier bindings, and re-fire where the head became
        // unsatisfiable. Fresh nulls replace the lost ones — the result
        // is homomorphically equivalent, which is all a chase result
        // promises.
        let mut steps = 0usize;
        for (rel, at) in &deleted {
            if reinserted.contains(&(*rel, at.clone())) {
                continue;
            }
            for dep in &self.constraints {
                let TargetDep::Tgd(tgd) = dep else { continue };
                let body_vars: BTreeSet<Var> = tgd
                    .body
                    .iter()
                    .flat_map(|(_, args)| args.iter().flat_map(|t| t.vars()))
                    .collect();
                for atom in &tgd.head {
                    if atom.rel != *rel || atom.args.len() != at.tuple.arity() {
                        continue;
                    }
                    let mut asg = Asg::new();
                    let mut bound = Vec::new();
                    if !chase::match_tuple(&at.tuple, &atom.args, &mut asg, &mut bound) {
                        continue;
                    }
                    asg.retain(|v, _| body_vars.contains(v));
                    let mut remaining: Vec<usize> = (0..tgd.body.len()).collect();
                    let mut matches = Vec::new();
                    chase::join(&ts.idx, &tgd.body, &mut remaining, &mut asg, &mut |a| {
                        matches.push(a.clone());
                        false
                    });
                    for m in matches {
                        if chase::head_satisfiable(&ts.idx, tgd, &m) {
                            continue;
                        }
                        if steps >= self.max_steps {
                            ts.outcome = ChaseOutcome::StepLimit;
                            return TargetPath::Incremental { overdeleted, steps };
                        }
                        fire_recorded(ts, tgd, &m, &mut self.gen, &mut queue);
                        steps += 1;
                    }
                }
            }
        }

        // Insert the new base tuples and close under the constraints.
        for (rel, at) in added {
            match ts.idx.insert(*rel, at.clone()) {
                Inserted::Fresh(id) => {
                    ts.base_ids.insert((*rel, at.clone()), id);
                    queue.push_back(id);
                }
                Inserted::Duplicate(id) => {
                    ts.base_ids.insert((*rel, at.clone()), id);
                }
            }
        }
        steps = run_closure(
            ts,
            &self.constraints,
            &mut self.gen,
            self.max_steps,
            steps,
            queue,
        );
        TargetPath::Incremental { overdeleted, steps }
    }
}

impl StdState {
    /// Project a full body assignment onto the witness row (body-vars
    /// order).
    fn row_of(&self, asg: &Asg) -> Vec<Value> {
        self.body_vars.iter().map(|v| asg[v]).collect()
    }
}

impl UpdateReport {
    fn empty(num_stds: usize) -> UpdateReport {
        UpdateReport {
            effective_ops: 0,
            std_paths: vec![StdPath::Skipped; num_stds],
            witnesses_died: 0,
            witnesses_born: 0,
            csol_removed: 0,
            csol_added: 0,
            nulls_collected: 0,
            added: Vec::new(),
            removed: Vec::new(),
            marks_changed: false,
            target: TargetPath::None,
        }
    }
}

/// Fire a tgd trigger with derivation recording: log the body tuple ids
/// the match rests on and the head ids it produced.
fn fire_recorded(
    ts: &mut TargetState,
    tgd: &Tgd,
    asg: &Asg,
    gen: &mut NullGen,
    queue: &mut VecDeque<TupleId>,
) {
    let fi = ts.firings.len();
    let mut body_ids = Vec::with_capacity(tgd.body.len());
    for (rel, args) in &tgd.body {
        // The match is total, so the pattern is fully ground; every id
        // carrying these values supports the match (recording all of them
        // overdeletes conservatively, which re-derivation repairs).
        body_ids.extend(ts.idx.matching(*rel, &chase::pattern(args, asg)));
    }
    let mut env = asg.clone();
    for z in tgd.existential_vars() {
        env.insert(z, Value::Null(gen.fresh()));
    }
    let mut heads = Vec::with_capacity(tgd.head.len());
    for atom in &tgd.head {
        let vals: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => env[v],
                Term::Const(c) => Value::Const(*c),
                Term::App(_, _) => unreachable!("tgd heads are function-free"),
            })
            .collect();
        match ts
            .idx
            .insert(atom.rel, AnnTuple::new(Tuple::new(vals), atom.ann.clone()))
        {
            Inserted::Fresh(id) => {
                queue.push_back(id);
                heads.push(id);
            }
            Inserted::Duplicate(id) => heads.push(id),
        }
    }
    for id in &body_ids {
        ts.by_body.entry(*id).or_default().push(fi);
    }
    ts.firings.push(Firing { heads, alive: true });
}

/// The recording semi-naive closure: the [`crate::indexed_chase`] loop,
/// but every tgd firing lands in the derivation log and egd merges taint
/// it. Returns the cumulative step count; sets `ts.outcome`.
fn run_closure(
    ts: &mut TargetState,
    deps: &[TargetDep],
    gen: &mut NullGen,
    max_steps: usize,
    start_steps: usize,
    mut queue: VecDeque<TupleId>,
) -> usize {
    let mut steps = start_steps;
    ts.outcome = ChaseOutcome::Satisfied;
    'queue: while let Some(seed) = queue.pop_front() {
        let Some((seed_rel, seed_at)) = ts.idx.get(seed) else {
            continue; // retracted by an earlier merge
        };
        let seed_rel: RelSym = seed_rel;
        let seed_tuple: Tuple = seed_at.tuple.clone();

        for dep in deps {
            match dep {
                TargetDep::Tgd(tgd) => {
                    for k in chase::atom_positions(&tgd.body, seed_rel) {
                        let matches = chase::seeded_matches(&ts.idx, &tgd.body, k, &seed_tuple);
                        for asg in matches {
                            if chase::head_satisfiable(&ts.idx, tgd, &asg) {
                                continue;
                            }
                            if steps >= max_steps {
                                ts.outcome = ChaseOutcome::StepLimit;
                                return steps;
                            }
                            fire_recorded(ts, tgd, &asg, gen, &mut queue);
                            steps += 1;
                        }
                    }
                }
                TargetDep::Egd(egd) => {
                    for k in chase::atom_positions(&egd.body, seed_rel) {
                        let matches = chase::seeded_matches(&ts.idx, &egd.body, k, &seed_tuple);
                        for asg in matches {
                            if !chase::match_still_live(&ts.idx, &egd.body, &asg) {
                                continue;
                            }
                            let l = chase::eval_term(&egd.eq.0, &asg);
                            let r = chase::eval_term(&egd.eq.1, &asg);
                            if l == r {
                                continue;
                            }
                            match (l, r) {
                                (Value::Const(_), Value::Const(_)) => {
                                    ts.outcome = ChaseOutcome::Failed { left: l, right: r };
                                    return steps;
                                }
                                _ => {
                                    if steps >= max_steps {
                                        ts.outcome = ChaseOutcome::StepLimit;
                                        return steps;
                                    }
                                    chase::merge(&mut ts.idx, l, r, &mut queue);
                                    ts.merged = true;
                                    steps += 1;
                                    if ts.idx.get(seed).is_some() {
                                        queue.push_back(seed);
                                    }
                                    continue 'queue;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::core::{ann_hom_equivalent, ann_isomorphic};
    use dx_chase::{canonical_solution, canonical_solution_with_deps};

    fn src(facts: &[(&str, &[&str])]) -> Instance {
        let mut s = Instance::new();
        for (rel, names) in facts {
            s.insert_names(rel, names);
        }
        s
    }

    /// Incremental csol vs from-scratch recompute, up to null renaming.
    fn assert_csol_matches(inc: &IncrementalExchange) {
        let oracle = canonical_solution(&inc.mapping, &inc.source);
        assert!(
            ann_isomorphic(inc.csol(), &oracle.instance).is_some(),
            "incremental csol diverged:\nincr:\n{}\noracle:\n{}",
            inc.csol(),
            oracle.instance
        );
    }

    /// Incremental chased target vs from-scratch recompute (hom-equivalence
    /// — restricted-chase results are only canonical up to homomorphism).
    fn assert_chased_matches(inc: &IncrementalExchange) {
        let oracle = canonical_solution_with_deps(
            &inc.mapping,
            &inc.constraints,
            &inc.source,
            DEFAULT_CHASE_LIMIT,
        );
        assert_eq!(
            std::mem::discriminant(&inc.chase_outcome()),
            std::mem::discriminant(&oracle.outcome),
            "outcome diverged: {:?} vs {:?}",
            inc.chase_outcome(),
            oracle.outcome
        );
        if inc.chase_outcome() == ChaseOutcome::Satisfied {
            let chased = inc.chased();
            assert!(
                ann_hom_equivalent(&chased, &oracle.instance),
                "chased target diverged:\nincr:\n{chased}\noracle:\n{}",
                oracle.instance
            );
        }
    }

    #[test]
    fn initial_build_matches_canonical_solution_exactly() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y)").unwrap();
        let s = src(&[("StrE", &["a", "c1"]), ("StrE", &["a", "c2"])]);
        let inc = IncrementalExchange::new(m.clone(), Vec::new(), s.clone());
        let oracle = canonical_solution(&m, &s);
        // The initial build mints nulls in witness order from ⊥0, so the
        // result is *identical*, not merely isomorphic.
        assert_eq!(inc.csol(), &oracle.instance);
        assert_eq!(inc.canonical().null_origin, oracle.null_origin);
        assert_eq!(inc.canonical().witnesses, oracle.witnesses);
    }

    #[test]
    fn insert_and_retract_maintain_csol() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y) & StrF(y)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            Vec::new(),
            src(&[("StrE", &["a", "b"]), ("StrF", &["b"])]),
        );
        assert_csol_matches(&inc);

        // Insert a second witness for the same head tuple (shared ground
        // part differs — fresh nulls make heads distinct).
        let r1 = inc.update(&Update::new().insert_names("StrE", &["c", "b"]));
        assert_eq!(r1.witnesses_born, 1);
        assert_csol_matches(&inc);

        // Retract the join partner: both witnesses die, nulls collected.
        let r2 = inc.update(&Update::new().retract_names("StrF", &["b"]));
        assert_eq!(r2.witnesses_died, 2);
        assert_eq!(r2.nulls_collected, 2);
        assert_eq!(inc.csol().tuple_count(), 0);
        assert_csol_matches(&inc);
    }

    #[test]
    fn shared_ground_head_survives_until_last_witness_dies() {
        // Both witnesses of StrE(a, _) produce the *same* ground head
        // StrP(a): the head must survive the first retraction.
        let m = Mapping::parse("StrP(x:cl) <- StrE(x, y)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            Vec::new(),
            src(&[("StrE", &["a", "b1"]), ("StrE", &["a", "b2"])]),
        );
        let r1 = inc.update(&Update::new().retract_names("StrE", &["a", "b1"]));
        assert_eq!(r1.witnesses_died, 1);
        assert_eq!(r1.csol_removed, 0, "other witness still produces StrP(a)");
        assert_csol_matches(&inc);
        let r2 = inc.update(&Update::new().retract_names("StrE", &["a", "b2"]));
        assert_eq!(r2.csol_removed, 1);
        assert_csol_matches(&inc);
    }

    #[test]
    fn empty_marks_flip_on_witness_set_transitions() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y)").unwrap();
        let mut inc = IncrementalExchange::new(m, Vec::new(), src(&[]));
        assert_eq!(
            inc.csol()
                .relation(RelSym::new("StrR"))
                .unwrap()
                .empty_marks()
                .count(),
            1
        );
        inc.update(&Update::new().insert_names("StrE", &["a", "b"]));
        assert_eq!(
            inc.csol()
                .relation(RelSym::new("StrR"))
                .unwrap()
                .empty_marks()
                .count(),
            0
        );
        assert_csol_matches(&inc);
        inc.update(&Update::new().retract_names("StrE", &["a", "b"]));
        assert_eq!(
            inc.csol()
                .relation(RelSym::new("StrR"))
                .unwrap()
                .empty_marks()
                .count(),
            1
        );
        assert_csol_matches(&inc);
    }

    #[test]
    fn non_cq_body_recompute_diff() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y) & !exists r. StrA(x, r)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            Vec::new(),
            src(&[("StrE", &["p1", "t"]), ("StrE", &["p2", "t"])]),
        );
        assert_eq!(inc.csol().tuple_count(), 2);
        // Inserting into StrA *kills* a witness — anti-monotone body.
        let r = inc.update(&Update::new().insert_names("StrA", &["p1", "rev"]));
        assert_eq!(r.std_paths, vec![StdPath::Recomputed]);
        assert_eq!(r.witnesses_died, 1);
        assert_csol_matches(&inc);
        // And retracting from StrA births one back.
        let r = inc.update(&Update::new().retract_names("StrA", &["p1", "rev"]));
        assert_eq!(r.witnesses_born, 1);
        assert_csol_matches(&inc);
    }

    #[test]
    fn recursive_tgd_retraction_needs_rederive_not_counting() {
        // The support-cycle case that makes derivation *counting* unsound:
        // a symmetry tgd lets StrG(a,b) and StrG(b,a) justify each other
        // after the base tuple is gone. Overdelete + re-derive must remove
        // both.
        let m = Mapping::parse("StrG(x:cl, y:cl) <- StrE(x, y)").unwrap();
        let deps = TargetDep::parse_many("StrG(y:cl, x:cl) <- StrG(x, y)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            deps,
            src(&[("StrE", &["a", "b"]), ("StrE", &["c", "d"])]),
        );
        assert_chased_matches(&inc);
        let r = inc.update(&Update::new().retract_names("StrE", &["a", "b"]));
        assert!(
            matches!(r.target, TargetPath::Incremental { .. }),
            "no merges happened — must take the incremental path, got {:?}",
            r.target
        );
        let g = inc.chased();
        let grel = g.relation(RelSym::new("StrG")).unwrap();
        assert_eq!(grel.len(), 2, "only c→d and d→c survive:\n{g}");
        assert_chased_matches(&inc);
    }

    #[test]
    fn rederive_restores_alternately_supported_tuples() {
        // StrG(b,c) is derivable from two base edges via transitivity; the
        // conservative overdelete may kill tuples the surviving edge still
        // derives — head-seeded re-derivation must restore them.
        let m = Mapping::parse("StrG(x:cl, y:cl) <- StrE(x, y)").unwrap();
        let deps = TargetDep::parse_many("StrT(x:cl, z:cl) <- StrG(x, y) & StrG(y, z)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            deps,
            src(&[
                ("StrE", &["a", "b"]),
                ("StrE", &["b", "c"]),
                ("StrE", &["c", "d"]),
            ]),
        );
        assert_chased_matches(&inc);
        let r = inc.update(&Update::new().retract_names("StrE", &["a", "b"]));
        assert!(matches!(r.target, TargetPath::Incremental { .. }));
        let t = inc.chased();
        let trel = t.relation(RelSym::new("StrT")).unwrap();
        assert_eq!(trel.len(), 1, "b→d survives via StrG(b,c), StrG(c,d):\n{t}");
        assert_chased_matches(&inc);
    }

    #[test]
    fn retraction_after_merge_rebuilds() {
        // The egd merges the STD's fresh null with a constant; the
        // derivation log is then stale, so a retraction must rebuild.
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y); StrR(x:cl, y:cl) <- StrK(x, y)")
            .unwrap();
        let deps = TargetDep::parse_many("y1 = y2 <- StrR(x, y1) & StrR(x, y2)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            deps,
            src(&[("StrE", &["a", "t"]), ("StrK", &["a", "k"])]),
        );
        assert_chased_matches(&inc);
        // Retract the tuple that fed the merged null.
        let r = inc.update(&Update::new().retract_names("StrE", &["a", "t"]));
        assert!(
            matches!(r.target, TargetPath::Rebuilt { .. }),
            "merge taints the log, got {:?}",
            r.target
        );
        assert_chased_matches(&inc);
    }

    #[test]
    fn retract_then_reinsert_round_trips() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y)").unwrap();
        let deps = TargetDep::parse_many("StrS(z:op, x:cl) <- StrR(x, z)").unwrap();
        let mut inc = IncrementalExchange::new(
            m,
            deps,
            src(&[("StrE", &["a", "b"]), ("StrE", &["b", "c"])]),
        );
        let before = inc.chased();
        inc.update(&Update::new().retract_names("StrE", &["a", "b"]));
        inc.update(&Update::new().insert_names("StrE", &["a", "b"]));
        let after = inc.chased();
        assert!(
            ann_hom_equivalent(&before, &after),
            "round trip must be hom-equivalent:\nbefore:\n{before}\nafter:\n{after}"
        );
        assert_csol_matches(&inc);
        assert_chased_matches(&inc);
    }

    #[test]
    fn empty_update_is_identity() {
        let m = Mapping::parse("StrR(x:cl, z:op) <- StrE(x, y)").unwrap();
        let mut inc = IncrementalExchange::new(m, Vec::new(), src(&[("StrE", &["a", "b"])]));
        let before = inc.csol().clone();
        let r = inc.update(&Update::new());
        assert_eq!(r.effective_ops, 0);
        assert_eq!(r.target, TargetPath::None);
        assert_eq!(inc.csol(), &before);
        // A no-op batch (retract absent / insert present) is also identity.
        let r = inc.update(
            &Update::new()
                .insert_names("StrE", &["a", "b"])
                .retract_names("StrE", &["x", "y"]),
        );
        assert_eq!(r.witnesses_born + r.witnesses_died, 0);
        assert_eq!(inc.csol(), &before);
    }
}
