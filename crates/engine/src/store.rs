//! The mutable indexed store behind the delta-driven chase.
//!
//! [`IndexedInstance`] holds an annotated instance as a slot table of
//! annotated tuples with **stable ids**, plus three incrementally maintained
//! indexes:
//!
//! * a dedup map `(relation, annotated tuple) → id` — set semantics;
//! * per-relation, per-column hash indexes `(column, value) → ids` — the
//!   probe structure behind index joins;
//! * a reverse index `value → ids` — the structure that makes egd merges
//!   (`⊥ → v` substitutions) proportional to the number of *affected*
//!   tuples instead of the instance size.
//!
//! Retraction clears a slot but never reuses its id, so ids handed to the
//! chase work-queue stay valid-or-dead, never dangling onto a different
//! tuple. [`IndexedInstance::check_invariants`] rebuilds every index from
//! the slot table and compares — the property tests in
//! `tests/engine_differential.rs` run it after random insert/merge
//! workloads.

use dx_relation::{AnnInstance, AnnTuple, Annotation, FastMap, RelSym, Tuple, TupleId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// What an insert did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inserted {
    /// The tuple was new; this is its fresh id.
    Fresh(TupleId),
    /// An identical annotated tuple was already live under this id.
    Duplicate(TupleId),
}

impl Inserted {
    /// The id, fresh or pre-existing.
    pub fn id(self) -> TupleId {
        match self {
            Inserted::Fresh(id) | Inserted::Duplicate(id) => id,
        }
    }
}

/// One rewrite performed by [`IndexedInstance::replace_value`].
#[derive(Clone, Debug)]
pub struct Rewrite {
    /// The id retracted (its tuple contained the replaced value).
    pub old: TupleId,
    /// Where the rewritten tuple ended up.
    pub new: Inserted,
}

/// A sorted posting list of tuple ids.
///
/// Fresh ids are allocated in strictly increasing order, so insertion is an
/// amortized-O(1) push (with a binary-search fallback for safety); removal
/// is a binary search plus shift. Posting lists are short and hot — a flat
/// `Vec` beats a `BTreeSet` on both allocation churn and probe locality.
#[derive(Default, Clone, Debug)]
struct SortedIds(Vec<TupleId>);

impl SortedIds {
    fn insert(&mut self, id: TupleId) {
        match self.0.last() {
            Some(&last) if last < id => self.0.push(id),
            None => self.0.push(id),
            _ => {
                if let Err(pos) = self.0.binary_search(&id) {
                    self.0.insert(pos, id);
                }
            }
        }
    }

    fn remove(&mut self, id: TupleId) {
        if let Ok(pos) = self.0.binary_search(&id) {
            self.0.remove(pos);
        }
    }

    fn contains(&self, id: TupleId) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn iter(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.0.iter().copied()
    }
}

/// Per-relation bookkeeping.
struct RelStore {
    arity: usize,
    /// Live ids of this relation, in id order.
    ids: SortedIds,
    /// `by_col[c][v]` = live ids with value `v` at column `c`.
    by_col: Vec<FastMap<Value, SortedIds>>,
    /// Empty annotated markers `(_, α)` (never touched by the chase).
    empty_marks: BTreeSet<Annotation>,
}

impl RelStore {
    fn new(arity: usize) -> Self {
        RelStore {
            arity,
            ids: SortedIds::default(),
            by_col: vec![FastMap::default(); arity],
            empty_marks: BTreeSet::new(),
        }
    }
}

/// A mutable annotated instance with stable tuple ids and incrementally
/// maintained hash indexes.
#[derive(Default)]
pub struct IndexedInstance {
    /// Slot table: id → live annotated tuple (None once retracted).
    slots: Vec<Option<(RelSym, AnnTuple)>>,
    /// Dedup: per relation, live annotated tuple → id (nested so lookups
    /// borrow the probe tuple instead of building an owned key).
    live: FastMap<RelSym, FastMap<AnnTuple, TupleId>>,
    /// Number of live tuples across relations.
    live_len: usize,
    rels: BTreeMap<RelSym, RelStore>,
    /// Reverse index: value → live ids whose tuple mentions it.
    by_value: FastMap<Value, SortedIds>,
}

impl IndexedInstance {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load an annotated instance (ids follow its deterministic iteration
    /// order).
    pub fn from_ann(inst: &AnnInstance) -> Self {
        let mut out = IndexedInstance::new();
        for (r, rel) in inst.relations() {
            out.rels
                .entry(r)
                .or_insert_with(|| RelStore::new(rel.arity()));
            for at in rel.iter() {
                out.insert(r, at.clone());
            }
            for m in rel.empty_marks() {
                out.insert_empty_mark(r, m.clone());
            }
        }
        out
    }

    /// Export back to an [`AnnInstance`].
    pub fn to_ann(&self) -> AnnInstance {
        let mut out = AnnInstance::new();
        for (&r, store) in &self.rels {
            for id in store.ids.iter() {
                let (_, at) = self.slots[id.idx()].as_ref().expect("live id");
                out.insert(r, at.clone());
            }
            for m in &store.empty_marks {
                out.insert_empty_mark(r, m.clone());
            }
        }
        out
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.live_len
    }

    /// Total slots ever allocated (live + dead).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The live tuple behind `id`, if it has not been retracted.
    pub fn get(&self, id: TupleId) -> Option<(RelSym, &AnnTuple)> {
        self.slots
            .get(id.idx())
            .and_then(|s| s.as_ref())
            .map(|(r, at)| (*r, at))
    }

    /// The arity of `rel`, if the store knows it.
    pub fn arity(&self, rel: RelSym) -> Option<usize> {
        self.rels.get(&rel).map(|s| s.arity)
    }

    /// Live ids of `rel`, in id order.
    pub fn ids_of(&self, rel: RelSym) -> impl Iterator<Item = TupleId> + '_ {
        self.rels.get(&rel).into_iter().flat_map(|s| s.ids.iter())
    }

    /// All live ids, in id order.
    pub fn all_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| TupleId(i as u32))
    }

    /// Record an empty annotated marker.
    pub fn insert_empty_mark(&mut self, rel: RelSym, ann: Annotation) {
        self.rels
            .entry(rel)
            .or_insert_with(|| RelStore::new(ann.arity()))
            .empty_marks
            .insert(ann);
    }

    /// Insert an annotated tuple; set semantics with a stable fresh id on
    /// first insertion.
    pub fn insert(&mut self, rel: RelSym, at: AnnTuple) -> Inserted {
        if let Some(&id) = self.live.get(&rel).and_then(|m| m.get(&at)) {
            return Inserted::Duplicate(id);
        }
        let id = TupleId(self.slots.len() as u32);
        let store = self
            .rels
            .entry(rel)
            .or_insert_with(|| RelStore::new(at.tuple.arity()));
        assert_eq!(store.arity, at.tuple.arity(), "arity mismatch in {rel}");
        store.ids.insert(id);
        for (c, v) in at.tuple.iter().enumerate() {
            store.by_col[c].entry(v).or_default().insert(id);
            self.by_value.entry(v).or_default().insert(id);
        }
        self.live.entry(rel).or_default().insert(at.clone(), id);
        self.live_len += 1;
        self.slots.push(Some((rel, at)));
        Inserted::Fresh(id)
    }

    /// Retract a live tuple, clearing its slot and all index entries.
    /// Returns the retracted tuple, or `None` if the id was already dead.
    pub fn retract(&mut self, id: TupleId) -> Option<(RelSym, AnnTuple)> {
        let (rel, at) = self.slots.get_mut(id.idx())?.take()?;
        self.live
            .get_mut(&rel)
            .and_then(|m| m.remove(&at))
            .expect("live tuple is in the dedup map");
        self.live_len -= 1;
        let store = self.rels.get_mut(&rel).expect("relation of live tuple");
        store.ids.remove(id);
        for (c, v) in at.tuple.iter().enumerate() {
            if let Some(set) = store.by_col[c].get_mut(&v) {
                set.remove(id);
                if set.is_empty() {
                    store.by_col[c].remove(&v);
                }
            }
            if let Some(set) = self.by_value.get_mut(&v) {
                set.remove(id);
                if set.is_empty() {
                    self.by_value.remove(&v);
                }
            }
        }
        Some((rel, at))
    }

    /// Point probe: live ids of `rel` with `value` at `col`.
    pub fn probe(
        &self,
        rel: RelSym,
        col: usize,
        value: Value,
    ) -> impl Iterator<Item = TupleId> + '_ {
        self.rels
            .get(&rel)
            .and_then(|s| s.by_col.get(col))
            .and_then(|m| m.get(&value))
            .into_iter()
            .flat_map(|set| set.iter())
    }

    /// Selectivity estimate for `pattern` over `rel` (see
    /// [`dx_relation::RelationIndex::selectivity`]): posting-list length of
    /// the tightest bound column, or relation cardinality when unbound.
    pub fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        let Some(store) = self.rels.get(&rel) else {
            return 0;
        };
        pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| store.by_col[c].get(&v).map_or(0, |s| s.len())))
            .min()
            .unwrap_or(store.ids.len())
    }

    /// Live ids of `rel` matching `pattern` on every bound position, in id
    /// order: probe the tightest bound column, post-filter the rest.
    pub fn matching(&self, rel: RelSym, pattern: &[Option<Value>]) -> Vec<TupleId> {
        let Some(store) = self.rels.get(&rel) else {
            return Vec::new();
        };
        debug_assert_eq!(pattern.len(), store.arity);
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (store.by_col[c].get(&v).map_or(0, |s| s.len()), c, v)))
            .min();
        let check = |id: TupleId| {
            let (_, at) = self.slots[id.idx()].as_ref().expect("live id");
            pattern
                .iter()
                .enumerate()
                .all(|(c, p)| p.is_none_or(|pv| at.tuple.get(c) == pv))
        };
        match best {
            None => store.ids.iter().collect(),
            Some((_, col, v)) => store.by_col[col]
                .get(&v)
                .into_iter()
                .flat_map(|set| set.iter())
                .filter(|&id| check(id))
                .collect(),
        }
    }

    /// Ids whose tuples mention `value` (the merge footprint of an egd).
    pub fn ids_with_value(&self, value: Value) -> Vec<TupleId> {
        self.by_value
            .get(&value)
            .map(|s| s.iter().collect())
            .unwrap_or_default()
    }

    /// Substitute `from → to` in every live tuple mentioning `from` (the egd
    /// merge step). Each affected tuple is retracted and its rewritten form
    /// re-inserted — annotations are kept, rewritten tuples may merge with
    /// existing ones (set semantics). Returns the rewrites performed.
    pub fn replace_value(&mut self, from: Value, to: Value) -> Vec<Rewrite> {
        let affected = self.ids_with_value(from);
        let mut out = Vec::with_capacity(affected.len());
        for id in affected {
            let (rel, at) = self.retract(id).expect("affected ids are live");
            let vals: Vec<Value> = at
                .tuple
                .iter()
                .map(|v| if v == from { to } else { v })
                .collect();
            let new = self.insert(rel, AnnTuple::new(Tuple::new(vals), at.ann));
            out.push(Rewrite { old: id, new });
        }
        out
    }

    /// Exhaustively verify every index against the slot table; returns a
    /// description of the first inconsistency. Used by the property tests —
    /// O(instance²), not for production paths.
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. live map ↔ slots.
        let mut live_entries = 0usize;
        for (rel, m) in &self.live {
            for (key_at, &id) in m {
                live_entries += 1;
                match self.slots.get(id.idx()).and_then(|s| s.as_ref()) {
                    Some((r, at)) if r == rel && at == key_at => {}
                    _ => return Err(format!("live map entry {id:?} not backed by slot")),
                }
            }
        }
        let live_slots = self.slots.iter().flatten().count();
        if live_slots != live_entries || live_entries != self.live_len {
            return Err(format!(
                "slot table has {live_slots} live entries, dedup map has {live_entries}, counter says {}",
                self.live_len
            ));
        }
        // 2. per-relation ids and column indexes.
        for (i, slot) in self.slots.iter().enumerate() {
            let id = TupleId(i as u32);
            let Some((rel, at)) = slot else { continue };
            let store = self
                .rels
                .get(rel)
                .ok_or_else(|| format!("no store for relation {rel}"))?;
            if !store.ids.contains(id) {
                return Err(format!("{id:?} missing from {rel} id set"));
            }
            for (c, v) in at.tuple.iter().enumerate() {
                if !store.by_col[c].get(&v).is_some_and(|s| s.contains(id)) {
                    return Err(format!("{id:?} missing from {rel} column {c} index"));
                }
                if !self.by_value.get(&v).is_some_and(|s| s.contains(id)) {
                    return Err(format!("{id:?} missing from value index of {v}"));
                }
            }
        }
        // 3. no dead ids linger in any index.
        for (rel, store) in &self.rels {
            for id in store.ids.iter() {
                if self.get(id).is_none() {
                    return Err(format!("dead id {id:?} in {rel} id set"));
                }
            }
            for (c, col) in store.by_col.iter().enumerate() {
                for (v, set) in col {
                    for id in set.iter() {
                        let Some((r2, at)) = self.get(id) else {
                            return Err(format!("dead id {id:?} in {rel} column {c}"));
                        };
                        if r2 != *rel || at.tuple.get(c) != *v {
                            return Err(format!("stale entry {id:?} in {rel} column {c}"));
                        }
                    }
                }
            }
        }
        for (v, set) in &self.by_value {
            for id in set.iter() {
                let Some((_, at)) = self.get(id) else {
                    return Err(format!("dead id {id:?} in value index of {v}"));
                };
                if !at.tuple.iter().any(|x| x == *v) {
                    return Err(format!("stale value-index entry {id:?} for {v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::Ann;

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    #[test]
    fn insert_dedup_retract_roundtrip() {
        let r = RelSym::new("StoreR");
        let mut s = IndexedInstance::new();
        let t = at(
            vec![Value::c("a"), Value::null(1)],
            vec![Ann::Closed, Ann::Open],
        );
        let id = match s.insert(r, t.clone()) {
            Inserted::Fresh(id) => id,
            _ => panic!("first insert must be fresh"),
        };
        assert_eq!(s.insert(r, t.clone()), Inserted::Duplicate(id));
        assert_eq!(s.live_count(), 1);
        // Same values, different annotation: distinct tuple.
        let t2 = at(
            vec![Value::c("a"), Value::null(1)],
            vec![Ann::Open, Ann::Closed],
        );
        assert!(matches!(s.insert(r, t2), Inserted::Fresh(_)));
        assert_eq!(s.live_count(), 2);
        s.check_invariants().unwrap();
        assert_eq!(s.retract(id), Some((r, t)));
        assert_eq!(s.retract(id), None, "double retract is a no-op");
        assert_eq!(s.live_count(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn probes_and_matching() {
        let r = RelSym::new("StoreP");
        let mut s = IndexedInstance::new();
        let cl2 = vec![Ann::Closed, Ann::Closed];
        s.insert(r, at(vec![Value::c("a"), Value::c("x")], cl2.clone()));
        s.insert(r, at(vec![Value::c("a"), Value::c("y")], cl2.clone()));
        s.insert(r, at(vec![Value::c("b"), Value::c("x")], cl2.clone()));
        assert_eq!(s.probe(r, 0, Value::c("a")).count(), 2);
        assert_eq!(
            s.matching(r, &[Some(Value::c("a")), Some(Value::c("x"))])
                .len(),
            1
        );
        assert_eq!(s.matching(r, &[None, None]).len(), 3);
        assert_eq!(s.selectivity(r, &[Some(Value::c("b")), None]), 1);
        assert_eq!(s.selectivity(r, &[None, None]), 3);
        assert_eq!(s.matching(RelSym::new("Absent"), &[None]).len(), 0);
    }

    #[test]
    fn replace_value_merges_and_reindexes() {
        let r = RelSym::new("StoreM");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut s = IndexedInstance::new();
        s.insert(r, at(vec![Value::c("a"), Value::null(1)], cl2.clone()));
        s.insert(r, at(vec![Value::c("a"), Value::c("k")], cl2.clone()));
        s.insert(r, at(vec![Value::c("b"), Value::null(1)], cl2.clone()));
        // ⊥1 → k: first tuple merges into the existing (a, k); third rewrites.
        let rewrites = s.replace_value(Value::null(1), Value::c("k"));
        assert_eq!(rewrites.len(), 2);
        assert_eq!(s.live_count(), 2);
        assert!(s.ids_with_value(Value::null(1)).is_empty());
        assert_eq!(s.probe(r, 1, Value::c("k")).count(), 2);
        let merged = rewrites
            .iter()
            .filter(|rw| matches!(rw.new, Inserted::Duplicate(_)))
            .count();
        assert_eq!(merged, 1, "exactly one rewrite hits the existing tuple");
        s.check_invariants().unwrap();
    }

    #[test]
    fn ann_roundtrip_preserves_everything() {
        let r = RelSym::new("StoreRT");
        let mut inst = AnnInstance::new();
        inst.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(3)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        inst.insert_empty_mark(r, Annotation::all_open(2));
        let s = IndexedInstance::from_ann(&inst);
        assert_eq!(s.to_ann(), inst);
        s.check_invariants().unwrap();
    }

    #[test]
    fn ids_stay_dead_after_retraction() {
        let r = RelSym::new("StoreDead");
        let mut s = IndexedInstance::new();
        let id = s.insert(r, at(vec![Value::c("a")], vec![Ann::Closed])).id();
        s.retract(id);
        // Re-inserting the same tuple allocates a new id; the old stays dead.
        let id2 = s.insert(r, at(vec![Value::c("a")], vec![Ann::Closed])).id();
        assert_ne!(id, id2);
        assert!(s.get(id).is_none());
        assert!(s.get(id2).is_some());
        assert_eq!(s.slot_count(), 2);
        s.check_invariants().unwrap();
    }
}
