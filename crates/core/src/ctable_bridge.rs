//! The c-table route to certain answers under the CWA.
//!
//! For an **all-closed** annotated mapping, Lemma 1 gives
//! `Rep_A(CSol_A(S)) = Rep(CSol(S))` and Corollary 2 gives
//! `certain_Σcl(Q, S) = □Q(CSol(S))`. Since `CSol(S)` is a naive table — a
//! conditional table whose guards are all `⊤` — the Imieliński–Lipski
//! machinery of [`dx_ctables`] computes `□Q` **exactly and search-free** for
//! full relational algebra: evaluate `Q` conditionally, then extract the
//! tuples whose support disjunction is valid.
//!
//! This module is the bridge; it cross-validates the coNP valuation-search
//! engine of [`crate::certain`] (same answers, different algorithm — see
//! `tests/ctables_cross.rs` at the workspace root), and is also the natural
//! representation-level justification for the Theorem 3(1) coNP bound:
//! support-condition validity is a coNP question.

use dx_chase::{canonical_solution, Mapping};
use dx_ctables::{certain_answers_ra, possible_answers_ra, CInstance, RaExpr};
use dx_query::PlanCatalog;
use dx_relation::{Instance, Relation};

/// Build the conditional-table representation of the canonical solution:
/// `CSol(S)` as a c-table with all guards `⊤`.
///
/// Only meaningful for all-closed mappings (for open annotations,
/// `Rep_A(CSol_A)` admits extra tuples that no c-table over the same rows
/// represents); callers wanting the mixed semantics must use the search
/// engines in [`crate::certain`].
pub fn csol_as_ctable(mapping: &Mapping, source: &Instance) -> CInstance {
    let csol = canonical_solution(mapping, source);
    CInstance::from_naive(&csol.rel_part())
}

/// `certain_Σcl(Q, S)` for a relational-algebra query, via conditional
/// tables. Exact; panics if the mapping is not all-closed (the route is
/// only sound under the CWA — see [`csol_as_ctable`]).
///
/// Execution runs on a `dx-query` compiled plan in conditional mode
/// (equality selections over products unified into joins), drawn from the
/// shared [`PlanCatalog`] — repeated queries over the same scenario
/// compile once; the interpreting [`RaExpr::eval_conditional`] route
/// remains as the fallback for expressions the planner rejects, with
/// identical answers either way (cross-validated in
/// `tests/query_differential.rs`).
pub fn certain_answers_cwa_ra(mapping: &Mapping, source: &Instance, query: &RaExpr) -> Relation {
    assert!(
        mapping.is_all_closed(),
        "the c-table route computes certain_Σcl; re-annotate with all_closed() \
         or use certain::certain_contains for mixed annotations"
    );
    let cinst = csol_as_ctable(mapping, source);
    match PlanCatalog::shared().ra_in(query, &mapping.target) {
        Ok(compiled) => compiled.certain_answers(&cinst),
        Err(_) => certain_answers_ra(query, &cinst),
    }
}

/// `certain_Σcl(Q, S)` for a **first-order** query, via the Codd-theorem
/// translation to relational algebra ([`dx_ctables::translate`]) and the
/// conditional-table engine. Exact; an alternative to the coNP valuation
/// search of [`crate::certain::certain_contains`] with identical answers
/// (cross-validated in `tests/ctables_cross.rs`).
pub fn certain_answers_cwa_fo(
    mapping: &Mapping,
    source: &Instance,
    query: &dx_logic::Query,
) -> Result<Relation, dx_ctables::TranslateError> {
    assert!(
        mapping.is_all_closed(),
        "the c-table route computes certain_Σcl; re-annotate with all_closed() \
         or use certain::certain_contains for mixed annotations"
    );
    let cinst = csol_as_ctable(mapping, source);
    // Safe-range queries skip the Codd translation entirely: the formula
    // lowers straight to a plan (cached in the shared catalog) and
    // executes in conditional mode (answers are domain independent, so the
    // active-domain relativization of `fo_to_ra` is unnecessary).
    if let Some(compiled) = PlanCatalog::shared()
        .eval_in(query, &mapping.target)
        .compiled()
    {
        return Ok(compiled.certain_answers_conditional(&cinst));
    }
    let schema: Vec<_> = mapping.target.iter().collect();
    let ra = dx_ctables::fo_to_ra(&query.formula, &query.head, &schema)?;
    Ok(certain_answers_ra(&ra, &cinst))
}

/// Possible answers `◇Q(CSol(S))` under the CWA (tuples appearing in at
/// least one `Rep(CSol(S))` member's answer), over the mentioned-constant
/// palette.
pub fn possible_answers_cwa_ra(mapping: &Mapping, source: &Instance, query: &RaExpr) -> Relation {
    assert!(
        mapping.is_all_closed(),
        "the c-table route computes possible answers under the CWA only"
    );
    let cinst = csol_as_ctable(mapping, source);
    match PlanCatalog::shared().ra_in(query, &mapping.target) {
        Ok(compiled) => compiled.possible_answers(&cinst),
        Err(_) => possible_answers_ra(query, &cinst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_ctables::RaPred;
    use dx_relation::Tuple;

    fn source() -> Instance {
        let mut s = Instance::new();
        s.insert_names("CbSrc", &["p1", "alice"]);
        s.insert_names("CbSrc", &["p2", "bob"]);
        s
    }

    /// Copy-with-null mapping: Sub(x, ⊥) per source row. The RA query
    /// "first columns of Sub rows whose second column is 'alice'" has NO
    /// certain answers (the nulls are unconstrained), while the copying
    /// mapping keeps (p1).
    #[test]
    fn selection_on_dropped_attribute() {
        let q = RaExpr::rel("CbSub")
            .select(RaPred::col_is(1, "alice"))
            .project([0]);
        let dropped = Mapping::parse("CbSub(x:cl, z:cl) <- CbSrc(x, y)").unwrap();
        assert!(certain_answers_cwa_ra(&dropped, &source(), &q).is_empty());
        // The author value is possible though.
        let poss = possible_answers_cwa_ra(&dropped, &source(), &q);
        assert!(poss.contains(&Tuple::from_names(&["p1"])));
        assert!(
            poss.contains(&Tuple::from_names(&["p2"])),
            "⊥2 = alice is possible too"
        );

        let copied = Mapping::parse("CbSub(x:cl, y:cl) <- CbSrc(x, y)").unwrap();
        let certain = certain_answers_cwa_ra(&copied, &source(), &q);
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::from_names(&["p1"])));
    }

    /// Difference across two target relations: certain answers reflect the
    /// CWA ("no unjustified tuples").
    #[test]
    fn difference_under_cwa() {
        let m = Mapping::parse("CbAll(x:cl) <- CbSrc(x, y); CbPicked(x:cl) <- CbSrc(x, 'alice')")
            .unwrap();
        let q = RaExpr::rel("CbAll").diff(RaExpr::rel("CbPicked"));
        let certain = certain_answers_cwa_ra(&m, &source(), &q);
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::from_names(&["p2"])));
    }

    #[test]
    #[should_panic(expected = "certain_Σcl")]
    fn open_annotations_rejected() {
        let m = Mapping::parse("CbSub(x:cl, z:op) <- CbSrc(x, y)").unwrap();
        certain_answers_cwa_ra(&m, &source(), &RaExpr::rel("CbSub"));
    }
}
