//! Non-monotonic query-answering **regimes** on compiled plans: GCWA\* and
//! approximation semantics.
//!
//! The paper's certain-answer pipelines ([`crate::certain`]) quantify over
//! *all* of `Rep_A(CSol_A(S))` — under which non-monotonic queries behave
//! badly (the §1 anomaly: "every paper has exactly one author" is certainly
//! TRUE under the CWA). Two ROADMAP-named follow-up works refine the
//! solution space instead of the query class; this module ships both as
//! first-class regimes over the same substrate:
//!
//! * **GCWA\*-answers** (Hernich, *Answering Non-Monotonic Queries in
//!   Relational Data Exchange*, LMCS 2011 / arXiv:1107.1456): certain
//!   answers over the **GCWA\*-solutions** — the unions of ⊆-minimal
//!   solutions. Minimal solutions ignore spurious replication, and unions
//!   re-introduce exactly the uncertainty the source justifies: the §1
//!   anomaly flips to FALSE because two minimal solutions with different
//!   authors union into a two-author solution. See
//!   [`gcwa_star_answers`] / [`gcwa_star_contains`].
//! * **Approximation semantics** (after Calautti, Greco, Molinaro &
//!   Trubitsyna, *Querying Data Exchange Settings Beyond Positive
//!   Queries*): for queries outside the positive fragment, bracket the
//!   exact certain answers between a **sound under-approximation** and a
//!   **complete over-approximation**, both obtained by monotone query
//!   surgery ([`dx_logic::classify::monotone_under_approx`] /
//!   [`dx_logic::classify::monotone_over_approx`]) plus an indexed sample
//!   intersection. See [`approx_certain_answers`].
//!
//! ## Complexity boundaries
//!
//! GCWA\*-answering is **coNP-hard** already for universal queries over
//! CWA-style mappings (Hernich); here the cost splits into (a) the minimal-
//! solution sweep — one valuation DFS, polynomial per valuation, and
//! PTIME in total for Codd-table canonical solutions whose null count is
//! bounded — and (b) the union walk, `Σ_{i≤k} C(m, i)` unions for `m`
//! minimal solutions under a union-size cap `k` (exponential in `m` when
//! uncapped — the source of the coNP lower bound). The approximation
//! regime is the PTIME counterpoint: the under/over rewritings land in the
//! Proposition 3/4 classes (naive evaluation / `□Q(CSol)`), and the sample
//! intersection costs one plan probe per (leaf, surviving candidate) on
//! the search's incrementally maintained index.
//!
//! ## One index build per scenario
//!
//! Both regimes are **plan-first**: queries compile once through the shared
//! [`PlanCatalog`] and every candidate evaluation probes a live store —
//! [`dx_solver::union_retain_sweep`] / [`dx_solver::union_refute_sweep`]
//! compose unions by refcounted private deltas over the minimal solutions'
//! frozen common base (splitting the walk across the pool when
//! `DX_THREADS > 1`, with sequential-identical results), and the sampler
//! probes [`dx_solver::Leaf::index`]. The
//! rebuild-per-candidate baseline (an `InstanceIndex::build` per union or
//! leaf) exists only in the bench harness (`BENCH_query.json`, stages
//! `gcwa`/`approx`) to keep the speedup measured.

use crate::certain::{candidate_tuples, certain_answers_with};
use dx_chase::{canonical_solution, canonical_solution_via, ChaseStrategy, Mapping};
use dx_logic::classify;
use dx_logic::{Formula, Query, Term};
use dx_query::PlanCatalog;
use dx_relation::{ConstId, Instance, RelSym, Relation, Tuple};
use dx_solver::{
    minimal_rep_a_members, search_rep_a_indexed, union_refute_sweep, union_retain_sweep,
    Completeness, SearchBudget,
};
use std::collections::BTreeSet;

/// Budget for the GCWA\* regime.
#[derive(Clone, Debug)]
pub struct RegimeBudget {
    /// Maximum number of minimal solutions per union (Hernich's answers
    /// need unions of unbounded size in general; small caps are complete
    /// for correspondingly shaped queries and keep the walk polynomial).
    /// `usize::MAX` = all nonempty subsets.
    pub max_union_size: usize,
    /// Cap on the number of minimal solutions considered (combinatorial
    /// guard; exceeding it marks the outcome [`Completeness::Capped`]).
    pub max_minimal_solutions: usize,
    /// Cap on the valuation sweep of the minimal-solution enumeration.
    pub max_leaves: Option<u64>,
}

impl Default for RegimeBudget {
    fn default() -> Self {
        RegimeBudget {
            max_union_size: usize::MAX,
            max_minimal_solutions: 12,
            max_leaves: Some(2_000_000),
        }
    }
}

impl RegimeBudget {
    /// An explicit union-size cap with unbounded minimal-solution count —
    /// the polynomial GCWA\* slices (`k`-bounded unions).
    pub fn unions_of(k: usize) -> Self {
        RegimeBudget {
            max_union_size: k,
            max_minimal_solutions: usize::MAX,
            max_leaves: None,
        }
    }
}

/// Outcome of a GCWA\* answer-set computation.
#[derive(Clone, Debug)]
pub struct GcwaOutcome {
    /// The GCWA\*-answers over the candidate palette
    /// `(adom(S) ∪ constants(Q))^arity`.
    pub answers: Relation,
    /// Whether the minimal-solution space and the union space were covered
    /// exhaustively ([`Completeness::Exact`]), truncated by the budget
    /// ([`Completeness::Bounded`]/[`Completeness::Capped`]).
    pub completeness: Completeness,
    /// Number of ⊆-minimal solutions found (after the budget cap).
    pub minimal_solutions: usize,
    /// Number of unions evaluated.
    pub unions: u64,
}

/// Outcome of a single GCWA\* membership decision.
#[derive(Clone, Debug)]
pub struct GcwaMembership {
    /// Is the tuple a GCWA\*-answer (no falsifying union found)?
    pub certain: bool,
    /// Coverage of the minimal-solution/union spaces.
    pub completeness: Completeness,
    /// A GCWA\*-solution (union of minimal solutions) falsifying the query,
    /// when `certain == false`.
    pub counterexample: Option<Instance>,
    /// Number of ⊆-minimal solutions found (after the budget cap).
    pub minimal_solutions: usize,
    /// Number of unions evaluated.
    pub unions: u64,
}

/// The GCWA\*-answers of `query` on `(mapping, source)`: tuples `t̄` with
/// `Q(t̄)` true in **every union of ⊆-minimal members** of
/// `Rep_A(CSol_A(S))` (within `budget`). For positive queries this
/// coincides with the certain answers (Proposition 3 both ways: positive
/// queries are monotone, so truth on all minimal solutions, all unions and
/// all solutions coincide); for queries with negation it is Hernich's
/// repair of the CWA anomalies.
pub fn gcwa_star_answers(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    budget: &RegimeBudget,
) -> GcwaOutcome {
    let csol = canonical_solution(mapping, source);
    gcwa_star_answers_with(mapping, &csol, source, query, budget)
}

/// [`gcwa_star_answers`] routed end to end through a [`ChaseStrategy`]:
/// the canonical solution's body evaluation runs on the strategy's engine
/// (compiled plans for `dx_engine::IndexedChase`). Answers are strategy
/// independent (body evaluators reproduce the reference witness order).
pub fn gcwa_star_answers_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    budget: &RegimeBudget,
) -> GcwaOutcome {
    let csol = canonical_solution_via(strategy.body_eval(), mapping, source);
    gcwa_star_answers_with(mapping, &csol, source, query, budget)
}

/// [`gcwa_star_answers`] against a precomputed canonical solution. The
/// query compiles once (shared [`PlanCatalog`]); every union probes the
/// one refcounted [`dx_relation::DeltaIndex`] of
/// [`dx_solver::for_each_union`].
pub fn gcwa_star_answers_with(
    mapping: &Mapping,
    csol: &dx_chase::CanonicalSolution,
    source: &Instance,
    query: &Query,
    budget: &RegimeBudget,
) -> GcwaOutcome {
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    let palette = answer_palette(source, query);
    let (minimal, mut completeness) = minimal_solutions(csol, &palette, budget);
    if budget.max_union_size < minimal.len() {
        completeness = completeness.worse(Completeness::Bounded);
    }
    let consts: Vec<ConstId> = palette.into_iter().collect();
    let candidates = candidate_tuples(&consts, query.arity());
    let (survivors, unions) =
        union_retain_sweep(&minimal, budget.max_union_size, candidates, &|store, t| {
            ev.holds_on_indexed(store, store.instance(), t)
        });
    GcwaOutcome {
        answers: Relation::from_tuples(query.arity(), survivors),
        completeness,
        minimal_solutions: minimal.len(),
        unions,
    }
}

/// Decide `t̄ ∈ GCWA*-answers(Q, S)` directly, producing the falsifying
/// union when the answer is negative (the Hernich counterpart of
/// [`crate::certain::certain_contains`]'s counterexample).
pub fn gcwa_star_contains(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    budget: &RegimeBudget,
) -> GcwaMembership {
    assert_eq!(tuple.arity(), query.arity(), "answer-tuple arity mismatch");
    assert!(tuple.is_ground(), "GCWA*-answers are tuples over Const");
    let csol = canonical_solution(mapping, source);
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    let mut palette = answer_palette(source, query);
    palette.extend(tuple.consts());
    let (minimal, mut completeness) = minimal_solutions(&csol, &palette, budget);
    if budget.max_union_size < minimal.len() {
        completeness = completeness.worse(Completeness::Bounded);
    }
    let (counterexample, unions) = union_refute_sweep(&minimal, budget.max_union_size, &|store| {
        !ev.holds_on_indexed(store, store.instance(), tuple)
    });
    GcwaMembership {
        certain: counterexample.is_none(),
        completeness,
        counterexample,
        minimal_solutions: minimal.len(),
        unions,
    }
}

/// The budgeted minimal-solution enumeration shared by the GCWA\* entry
/// points.
fn minimal_solutions(
    csol: &dx_chase::CanonicalSolution,
    palette: &BTreeSet<ConstId>,
    budget: &RegimeBudget,
) -> (Vec<Instance>, Completeness) {
    let (mut minimal, mut completeness) =
        minimal_rep_a_members(&csol.instance, palette, budget.max_leaves);
    if minimal.len() > budget.max_minimal_solutions {
        minimal.truncate(budget.max_minimal_solutions);
        completeness = Completeness::Capped;
    }
    (minimal, completeness)
}

/// Outcome of the approximation regime: a certain-answer **bracket**
/// `lower ⊆ certain_Σα(Q, S) ⊆ upper`.
#[derive(Clone, Debug)]
pub struct ApproxOutcome {
    /// Sound under-approximation: every tuple here is a genuine certain
    /// answer (certain answers of the monotone under-rewriting, exact by
    /// Propositions 3/4).
    pub lower: Relation,
    /// Complete over-approximation: every genuine certain answer is here
    /// (certain answers of the monotone over-rewriting, intersected with
    /// the answers on every sampled `Rep_A` member).
    pub upper: Relation,
    /// Coverage of the sampling space: [`Completeness::Exact`] means the
    /// member space was exhausted, so `upper` *is* the exact answer set.
    pub completeness: Completeness,
    /// Did the bracket close (`lower == upper`)? Then both are exact.
    pub tight: bool,
    /// Number of members sampled by the intersection stage.
    pub leaves: u64,
}

/// The Calautti-style approximation of `certain_Σα(Q, S)` for queries with
/// negation: a PTIME-rewriting bracket tightened by an indexed sample
/// intersection (see the module docs). Guarantees
/// `lower ⊆ certain_Σα(Q, S) ⊆ upper` — w.r.t. both the true semantics and
/// the budget-restricted member space, provided `sample` does not cap the
/// valuation sweep.
///
/// Positive queries short-circuit to the exact Proposition 3 answers; for
/// **all-closed** mappings the exact answers are computed search-free via
/// the conditional-table route ([`crate::ctable_bridge`]) and returned as
/// a tight bracket.
pub fn approx_certain_answers(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    sample: Option<&SearchBudget>,
) -> ApproxOutcome {
    let csol = canonical_solution(mapping, source);
    approx_certain_answers_with(mapping, &csol, source, query, sample)
}

/// [`approx_certain_answers`] routed end to end through a
/// [`ChaseStrategy`] (see [`gcwa_star_answers_via`]).
pub fn approx_certain_answers_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    sample: Option<&SearchBudget>,
) -> ApproxOutcome {
    let csol = canonical_solution_via(strategy.body_eval(), mapping, source);
    approx_certain_answers_with(mapping, &csol, source, query, sample)
}

/// [`approx_certain_answers`] against a precomputed canonical solution.
pub fn approx_certain_answers_with(
    mapping: &Mapping,
    csol: &dx_chase::CanonicalSolution,
    source: &Instance,
    query: &Query,
    sample: Option<&SearchBudget>,
) -> ApproxOutcome {
    // Positive queries: naive evaluation is already exact (Proposition 3).
    if classify::is_positive(&query.formula) {
        let (rel, completeness) = certain_answers_with(mapping, csol, source, query, None);
        return ApproxOutcome {
            lower: rel.clone(),
            upper: rel,
            completeness,
            tight: true,
            leaves: 0,
        };
    }
    // The CWA route: for all-closed mappings the Imieliński–Lipski engine
    // answers full FO exactly and search-free — a closed bracket.
    if mapping.is_all_closed() {
        if let Ok(rel) = crate::ctable_bridge::certain_answers_cwa_fo(mapping, source, query) {
            return ApproxOutcome {
                lower: rel.clone(),
                upper: rel,
                completeness: Completeness::Exact,
                tight: true,
                leaves: 0,
            };
        }
    }
    // Rigid-negation tightening: negated atoms over relations whose
    // extension is pinned across the whole member space (ground + fully
    // closed in the canonical solution — `classify::rigid_relations_of`)
    // survive the monotone surgery instead of eroding to the lattice
    // corners, so strictly more of the query reaches both bounds. The
    // bounds stay exactly computable: the surgered queries are
    // monotone-modulo-rigid, which `certain_answers_with` decides on the
    // extras-free valuation-image sweep.
    let rigid = classify::rigid_relations_of(&query.formula, &csol.instance);
    let (under, over) = under_over_queries_rigid(query, &rigid);
    let (lower, _) = certain_answers_with(mapping, csol, source, &under, None);
    let (upper0, _) = certain_answers_with(mapping, csol, source, &over, None);
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    let palette = answer_palette(source, query);
    let budget = sample.cloned().unwrap_or_default();
    let mut survivors: Vec<Tuple> = upper0.iter().cloned().collect();
    let outcome = search_rep_a_indexed(&csol.instance, &palette, &budget, &mut |leaf| {
        survivors.retain(|t| ev.holds_on_indexed(leaf.index(), leaf.instance(), t));
        survivors.is_empty()
    });
    let upper = Relation::from_tuples(query.arity(), survivors);
    let tight = lower == upper;
    ApproxOutcome {
        lower,
        upper,
        completeness: outcome.completeness,
        tight,
        leaves: outcome.leaves,
    }
}

/// The monotone under/over rewritings of `query`, as queries over the same
/// head. The over-rewriting additionally keeps every constant of the
/// original formula in scope (via trivially-true `c = c` conjuncts), so the
/// candidate palette of its certain answers covers the original query's —
/// erasure must not shrink the over-approximation's candidate space.
pub fn under_over_queries(query: &Query) -> (Query, Query) {
    under_over_queries_rigid(query, &BTreeSet::new())
}

/// [`under_over_queries`] with **rigid negation kept**: negated atoms over
/// the `rigid` relations (see [`dx_logic::classify::rigid_relations_of`])
/// survive both rewritings — they are member-invariant, so keeping them is
/// sound in both directions and tightens the bracket from both sides. The
/// surgered queries satisfy [`classify::is_monotone_rigid`] for the same
/// rigid set, which keeps their certain answers exactly computable.
pub fn under_over_queries_rigid(query: &Query, rigid: &BTreeSet<RelSym>) -> (Query, Query) {
    let under = Query::new(
        query.head.clone(),
        classify::monotone_under_approx_rigid(&query.formula, rigid),
    );
    let keep_consts = query
        .formula
        .constants()
        .into_iter()
        .map(|c| Formula::eq(Term::Const(c), Term::Const(c)));
    let over = Query::new(
        query.head.clone(),
        Formula::and(
            std::iter::once(classify::monotone_over_approx_rigid(&query.formula, rigid))
                .chain(keep_consts),
        ),
    );
    (under, over)
}

/// The candidate/valuation palette of an answer computation over
/// `(mapping, source, query)`: the source's constants plus the query's —
/// by genericity no other constant can be a certain (or GCWA\*/bracket)
/// answer. Per-tuple deciders additionally extend this with the probed
/// tuple's constants.
pub fn answer_palette(source: &Instance, query: &Query) -> BTreeSet<ConstId> {
    let mut palette: BTreeSet<ConstId> = source.adom_consts();
    palette.extend(query.formula.constants());
    palette
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Value, Var};

    fn papers_source() -> Instance {
        let mut s = Instance::new();
        s.insert_names("RgPapers", &["p1", "title1"]);
        s
    }

    /// The Hernich repair of the §1 anomaly: under the CWA the one-author
    /// query is certainly TRUE (the null takes one value per solution), but
    /// under GCWA\* two minimal solutions with different authors union into
    /// a two-author GCWA\*-solution — the answer flips to FALSE, matching
    /// the intuition the paper opens with.
    #[test]
    fn gcwa_star_defeats_the_one_author_anomaly() {
        let q = Query::boolean(
            dx_logic::parse_formula("forall p a1 a2. (RgSub(p, a1) & RgSub(p, a2) -> a1 = a2)")
                .unwrap(),
        );
        let m = Mapping::parse("RgSub(x:cl, z:cl) <- RgPapers(x, y)").unwrap();
        let s = papers_source();
        let empty = Tuple::new(Vec::<Value>::new());
        // CWA certain answer: TRUE (the anomaly).
        let cwa = crate::certain::certain_contains(&m, &s, &q, &empty, None);
        assert!(cwa.certain);
        // GCWA*: FALSE, with a two-author counterexample union.
        let out = gcwa_star_contains(&m, &s, &q, &empty, &RegimeBudget::default());
        assert!(!out.certain, "unions of minimal solutions break uniqueness");
        let cex = out.counterexample.expect("falsifying union produced");
        assert!(!q.holds_boolean(&cex));
        assert!(out.minimal_solutions >= 2);
    }

    /// Positive queries: GCWA*-answers coincide with the certain answers
    /// (monotone truth on minimal solutions ⇔ on unions ⇔ on all members).
    #[test]
    fn gcwa_star_equals_certain_on_positive_queries() {
        let q = Query::new(
            vec![Var::new("x")],
            dx_logic::parse_formula("exists z. RgSub(x, z)").unwrap(),
        );
        for rules in [
            "RgSub(x:cl, z:cl) <- RgPapers(x, y)",
            "RgSub(x:cl, z:op) <- RgPapers(x, y)",
        ] {
            let m = Mapping::parse(rules).unwrap();
            let s = papers_source();
            let out = gcwa_star_answers(&m, &s, &q, &RegimeBudget::default());
            let (cert, _) = crate::certain::certain_answers(&m, &s, &q, None);
            assert_eq!(out.answers, cert, "{rules}");
            assert!(out.answers.contains(&Tuple::from_names(&["p1"])));
        }
    }

    /// Negation certain under GCWA\*: a fact never produced stays absent in
    /// every minimal solution and every union, so its negation is a
    /// GCWA\*-answer — while under the OWA it is not certain.
    #[test]
    fn gcwa_star_supports_negative_facts() {
        let q = Query::boolean(dx_logic::parse_formula("!exists x. RgSub(x, 'ghost')").unwrap());
        let m = Mapping::parse("RgSub(x:op, y:op) <- RgPapers(x, y)").unwrap();
        let s = papers_source();
        let empty = Tuple::new(Vec::<Value>::new());
        let owa = crate::certain::certain_contains(&m, &s, &q, &empty, None);
        assert!(!owa.certain, "OWA admits arbitrary extra tuples");
        let out = gcwa_star_contains(&m, &s, &q, &empty, &RegimeBudget::default());
        assert!(out.certain, "no minimal solution invents (·, ghost)");
    }

    /// The approximation bracket on the one-author query with an open
    /// author attribute: lower is empty (sound), upper is empty too once
    /// the sampler sees a replicated two-author member — a closed bracket
    /// agreeing with the exact answer.
    #[test]
    fn approx_brackets_the_open_one_author_query() {
        let q = Query::boolean(
            dx_logic::parse_formula("forall p a1 a2. (RgSub2(p, a1) & RgSub2(p, a2) -> a1 = a2)")
                .unwrap(),
        );
        let m = Mapping::parse("RgSub2(x:cl, z:op) <- RgPapers(x, y)").unwrap();
        let s = papers_source();
        let out = approx_certain_answers(&m, &s, &q, None);
        assert!(out.lower.is_empty());
        assert!(out.upper.is_empty(), "replication falsifies uniqueness");
        assert!(out.tight);
        assert!(out.leaves > 0);
    }

    /// All-closed mappings take the exact conditional-table route: the
    /// bracket closes without any sampling.
    #[test]
    fn approx_is_exact_under_the_cwa_route() {
        let q = Query::parse(&["x"], "(exists y. RgT(x, y)) & !RgU(x)").unwrap();
        let m = Mapping::parse("RgT(x:cl, y:cl) <- RgA(x, y); RgU(x:cl) <- RgB(x)").unwrap();
        let mut s = Instance::new();
        s.insert_names("RgA", &["a", "1"]);
        s.insert_names("RgA", &["b", "2"]);
        s.insert_names("RgB", &["b"]);
        let out = approx_certain_answers(&m, &s, &q, None);
        assert!(out.tight);
        assert_eq!(out.completeness, Completeness::Exact);
        assert_eq!(out.leaves, 0, "search-free c-table route");
        assert!(out.upper.contains(&Tuple::from_names(&["a"])));
        assert!(!out.upper.contains(&Tuple::from_names(&["b"])));
        // Agrees with the coNP search engine.
        let (cert, _) = crate::certain::certain_answers(&m, &s, &q, None);
        assert_eq!(out.upper, cert);
    }

    /// GCWA\* answers and membership decisions are bit-identical at every
    /// pool width — answer sets, counterexample instances, and the
    /// early-stop union counts all match the `DX_THREADS=1` walk.
    #[test]
    fn gcwa_star_bit_identical_across_widths() {
        let answers_q = Query::new(
            vec![Var::new("x")],
            dx_logic::parse_formula("exists z. (RgSub(x, z) & !RgSub(z, x))").unwrap(),
        );
        let contains_q = Query::boolean(
            dx_logic::parse_formula("forall p a1 a2. (RgSub(p, a1) & RgSub(p, a2) -> a1 = a2)")
                .unwrap(),
        );
        let m = Mapping::parse("RgSub(x:cl, z:cl) <- RgPapers(x, y)").unwrap();
        let mut s = papers_source();
        s.insert_names("RgPapers", &["p2", "title2"]);
        let empty = Tuple::new(Vec::<Value>::new());
        let budget = RegimeBudget::default();
        rayon::set_threads(1);
        let ref_answers = gcwa_star_answers(&m, &s, &answers_q, &budget);
        let ref_member = gcwa_star_contains(&m, &s, &contains_q, &empty, &budget);
        for width in [2usize, 4] {
            rayon::set_threads(width);
            let out = gcwa_star_answers(&m, &s, &answers_q, &budget);
            assert_eq!(out.answers, ref_answers.answers, "width {width}");
            assert_eq!(out.unions, ref_answers.unions, "width {width}");
            assert_eq!(out.completeness, ref_answers.completeness, "width {width}");
            let mem = gcwa_star_contains(&m, &s, &contains_q, &empty, &budget);
            assert_eq!(mem.certain, ref_member.certain, "width {width}");
            assert_eq!(
                mem.counterexample, ref_member.counterexample,
                "width {width}"
            );
            assert_eq!(mem.unions, ref_member.unions, "width {width}");
        }
        rayon::set_threads(0);
    }

    /// Constants of erased subformulas stay in the over-approximation's
    /// candidate palette (the `c = c` conjuncts of [`under_over_queries`]).
    #[test]
    fn over_rewriting_keeps_query_constants() {
        let q = Query::parse(&["x"], "RgV(x) & !RgW('k9', x)").unwrap();
        let (under, over) = under_over_queries(&q);
        assert!(classify::is_monotone(&under.formula));
        assert!(classify::is_monotone(&over.formula));
        assert!(
            over.formula.constants().contains(&ConstId::new("k9")),
            "palette constant preserved: {over}"
        );
    }
}
