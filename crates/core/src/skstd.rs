//! Skolemized STDs (SkSTDs) and their semantics (§5).
//!
//! An annotated SkSTD is `ψτ(u₁, …, u_k) :– φσ(x₁, …, x_n)` where `φ` is an
//! FO formula over `σ ∪ F` whose atomic subformulas are relational atoms or
//! equalities `y = f(z̄)`, and each head term `uᵢ` is a variable or a Skolem
//! term `f(z̄)`. Given *actual functions* `F′`, the solution `Sol_F′(S)` is
//! built by evaluating each body over `S` (functions interpreted by `F′`)
//! and instantiating the heads; the semantics is
//! `⟦S⟧ = ⋃_{F′} Rep_A(Sol_F′(S))`.
//!
//! Lemma 4 ([`SkMapping::from_mapping`]) translates every plain annotated
//! STD mapping into an equivalent SkSTD mapping: each existential variable
//! `z` becomes a Skolem term `f_(φ,ψ,z)(x̄, ȳ)` — the same body witness then
//! yields the same invented value, exactly mirroring the justification
//! bookkeeping of the canonical solution.

use dx_chase::Mapping;
use dx_logic::eval::{FuncInterp, FuncTable};
use dx_logic::{Assignment, Evaluator, Formula, ParsedRule, Query, Term};
use dx_relation::{
    Ann, AnnInstance, AnnTuple, Annotation, ConstId, FuncSym, Instance, NullGen, NullId, RelSym,
    Schema, Tuple, Value,
};
use dx_solver::repa::rep_a_membership;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One head atom of an SkSTD: relation, argument terms (possibly Skolem
/// applications), per-position annotation.
#[derive(Clone, PartialEq, Eq)]
pub struct SkAtom {
    /// The target relation.
    pub rel: RelSym,
    /// Argument terms; [`Term::App`] encodes Skolem terms.
    pub args: Vec<Term>,
    /// Per-position annotation.
    pub ann: Annotation,
}

impl SkAtom {
    /// Build an SkAtom; panics on arity mismatch.
    pub fn new(rel: RelSym, args: Vec<Term>, ann: Annotation) -> Self {
        assert_eq!(args.len(), ann.arity(), "annotation arity mismatch");
        SkAtom { rel, args, ann }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

impl fmt::Display for SkAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", t, self.ann.get(i))?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for SkAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated Skolemized STD.
#[derive(Clone, PartialEq, Eq)]
pub struct SkStd {
    /// Head atoms.
    pub head: Vec<SkAtom>,
    /// Body formula over `σ ∪ F`.
    pub body: Formula,
}

impl SkStd {
    /// Build an SkSTD; panics if the head is empty.
    pub fn new(head: Vec<SkAtom>, body: Formula) -> Self {
        assert!(!head.is_empty(), "SkSTD must have at least one head atom");
        SkStd { head, body }
    }

    /// Parse from the rule syntax (head terms may be Skolem applications,
    /// e.g. `T(f(em):cl, em:cl, g(em, proj):op) <- S(em, proj)`).
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        Ok(Self::from_parsed(dx_logic::parse_rule(src)?))
    }

    /// Convert a parsed rule.
    pub fn from_parsed(rule: ParsedRule) -> Self {
        SkStd::new(
            rule.head
                .into_iter()
                .map(|a| SkAtom::new(a.rel, a.args, Annotation::new(a.anns)))
                .collect(),
            rule.body,
        )
    }

    /// Function symbols (with arities) used anywhere in the SkSTD.
    pub fn funcs(&self) -> BTreeSet<(FuncSym, usize)> {
        let mut out = self.body.funcs();
        for a in &self.head {
            for t in &a.args {
                out.extend(t.funcs());
            }
        }
        out
    }

    /// Free variables of the body, sorted (the evaluation order for head
    /// instantiation).
    pub fn body_vars(&self) -> Vec<dx_relation::Var> {
        self.body.free_vars().into_iter().collect()
    }

    /// Max open positions per head atom.
    pub fn max_open_per_atom(&self) -> usize {
        self.head
            .iter()
            .map(|a| a.ann.count_open())
            .max()
            .unwrap_or(0)
    }

    /// Max closed positions per head atom.
    pub fn max_closed_per_atom(&self) -> usize {
        self.head
            .iter()
            .map(|a| a.ann.count_closed())
            .max()
            .unwrap_or(0)
    }

    /// Re-annotate every position.
    pub fn reannotated(&self, ann: Ann) -> SkStd {
        SkStd {
            head: self
                .head
                .iter()
                .map(|a| SkAtom {
                    rel: a.rel,
                    args: a.args.clone(),
                    ann: Annotation::new(vec![ann; a.args.len()]),
                })
                .collect(),
            body: self.body.clone(),
        }
    }
}

impl fmt::Display for SkStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " <- {}", self.body)
    }
}

impl fmt::Debug for SkStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated SkSTD mapping `(σ, τ, Σα)`.
#[derive(Clone)]
pub struct SkMapping {
    /// Source schema.
    pub source: Schema,
    /// Target schema.
    pub target: Schema,
    /// The SkSTDs.
    pub stds: Vec<SkStd>,
}

/// A total-ized function interpretation: sites missing from the table map to
/// one designated junk constant, making every evaluation well-defined. Any
/// such interpretation *is* a legitimate `F′`, so searches over tables
/// remain sound.
struct Totalized<'a> {
    table: &'a FuncTable,
    junk: ConstId,
}

impl FuncInterp for Totalized<'_> {
    fn apply(&self, f: FuncSym, args: &[Value]) -> Option<Value> {
        Some(self.table.get(f, args).unwrap_or(Value::Const(self.junk)))
    }
}

impl SkMapping {
    /// Build from SkSTDs, inferring schemas (function symbols are excluded
    /// from the source schema).
    pub fn from_stds(stds: Vec<SkStd>) -> Self {
        let mut source = Schema::new();
        let mut target = Schema::new();
        for std in &stds {
            for (rel, arity) in std.body.relations() {
                source.add(rel, arity);
            }
            for atom in &std.head {
                target.add(atom.rel, atom.arity());
            }
        }
        SkMapping {
            source,
            target,
            stds,
        }
    }

    /// Parse a `;`-separated list of Skolemized rules.
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        let rules = dx_logic::parse_rules(src)?;
        Ok(Self::from_stds(
            rules.into_iter().map(SkStd::from_parsed).collect(),
        ))
    }

    /// **Lemma 4**: translate a plain annotated STD mapping into an
    /// equivalent SkSTD mapping. Each existential head variable `z` of STD
    /// `i` becomes the Skolem term `f_i_z(x̄, ȳ)` applied to all body
    /// variables; annotations and bodies are untouched.
    pub fn from_mapping(mapping: &Mapping) -> Self {
        let stds = mapping
            .stds
            .iter()
            .enumerate()
            .map(|(i, std)| {
                let body_vars = std.body_vars();
                let exist = std.existential_vars();
                let args: Vec<Term> = body_vars.iter().map(|&v| Term::Var(v)).collect();
                let mut subst: BTreeMap<dx_relation::Var, Term> = BTreeMap::new();
                for z in exist {
                    let f = FuncSym::new(&format!("sk_{}_{}", i, z.name()));
                    subst.insert(z, Term::App(f, args.clone()));
                }
                SkStd::new(
                    std.head
                        .iter()
                        .map(|a| {
                            SkAtom::new(
                                a.rel,
                                a.args.iter().map(|t| t.subst(&subst)).collect(),
                                a.ann.clone(),
                            )
                        })
                        .collect(),
                    std.body.clone(),
                )
            })
            .collect();
        SkMapping {
            source: mapping.source.clone(),
            target: mapping.target.clone(),
            stds,
        }
    }

    /// All function symbols (with arities).
    pub fn funcs(&self) -> BTreeSet<(FuncSym, usize)> {
        self.stds.iter().flat_map(|s| s.funcs()).collect()
    }

    /// `#op` statistic (max open positions per atom).
    pub fn num_op(&self) -> usize {
        self.stds
            .iter()
            .map(|s| s.max_open_per_atom())
            .max()
            .unwrap_or(0)
    }

    /// Is every annotation open?
    pub fn is_all_open(&self) -> bool {
        self.stds
            .iter()
            .all(|s| s.head.iter().all(|a| a.ann.is_all_open()))
    }

    /// Is every annotation closed?
    pub fn is_all_closed(&self) -> bool {
        self.stds
            .iter()
            .all(|s| s.head.iter().all(|a| a.ann.is_all_closed()))
    }

    /// Re-annotate every position.
    pub fn reannotated(&self, ann: Ann) -> SkMapping {
        SkMapping {
            source: self.source.clone(),
            target: self.target.clone(),
            stds: self.stds.iter().map(|s| s.reannotated(ann)).collect(),
        }
    }

    /// Do all bodies belong to a syntactically monotone class?
    pub fn has_monotone_bodies(&self) -> bool {
        self.stds
            .iter()
            .all(|s| dx_logic::classify::is_monotone(&s.body))
    }

    /// Are all bodies conjunctive (CQ-SkSTDs, the class of [FKP&T'05])?
    pub fn has_cq_bodies(&self) -> bool {
        self.stds
            .iter()
            .all(|s| dx_logic::classify::try_cq(&s.body).is_some())
    }

    /// The solution `Sol_F′(S)`: evaluate each body over `source` with the
    /// function table `funcs` (undefined sites read as a junk constant) and
    /// instantiate the annotated heads. The result is a ground annotated
    /// instance; bodies with no satisfying assignment contribute empty
    /// annotated tuples.
    pub fn sol(&self, source: &Instance, funcs: &FuncTable) -> AnnInstance {
        assert!(source.is_ground(), "source instances are over Const");
        // The paper's S is a σ-instance: evaluate over the σ-reduct so the
        // active domain (and hence quantifier ranges and the composition
        // algorithm's adom guards) ignore foreign relations.
        let source = source.project_schema(&self.source);
        let source = &source;
        let junk = ConstId::new("⋆undef");
        let total = Totalized { table: funcs, junk };
        let mut out = AnnInstance::new();
        for std in &self.stds {
            // Evaluation domain: source adom + body constants. Bodies that
            // mention function symbols (`y = f(z̄)` atoms produced by the
            // Lemma 5 composition) additionally need the F′-range so those
            // equalities are satisfiable; function-free bodies use plain
            // active-domain semantics (matching `sol_with_site_nulls`), and
            // the composition algorithm's adom guards keep the two aligned.
            let mut dom: BTreeSet<Value> = source.active_domain();
            dom.extend(std.body.constants().into_iter().map(Value::Const));
            if !std.body.funcs().is_empty() {
                dom.extend(funcs.range_values());
            }
            let ev = Evaluator::with_domain_and_funcs(source, dom, &total);
            let vars = std.body_vars();
            let rows = ev.satisfying_assignments(&std.body, &vars);
            if rows.is_empty() {
                for atom in &std.head {
                    out.insert_empty_mark(atom.rel, atom.ann.clone());
                }
                continue;
            }
            for row in rows {
                let mut asg = Assignment::new();
                for (v, val) in vars.iter().zip(row.iter()) {
                    asg.bind(*v, *val);
                }
                for atom in &std.head {
                    let vals: Vec<Value> =
                        atom.args.iter().map(|t| ev.eval_term(t, &asg)).collect();
                    out.insert(atom.rel, AnnTuple::new(Tuple::new(vals), atom.ann.clone()));
                }
            }
        }
        out
    }

    /// `T ∈ Rep_A(Sol_F′(S))` for a *given* function table — the
    /// polynomial-time verification half of the semantics.
    pub fn in_semantics_with(&self, source: &Instance, t: &Instance, funcs: &FuncTable) -> bool {
        let sol = self.sol(source, funcs);
        rep_a_membership(&sol, t).is_some()
    }

    /// Decide `(S, T) ∈ (|Σα|)`, i.e. whether `T ∈ Rep_A(Sol_F′(S))` for
    /// *some* actual functions `F′`.
    ///
    /// For **function-free bodies** (the Lemma 4 image and hand-written
    /// SkSTDs like example (8)) this is exact: unknown Skolem values are
    /// represented as *site nulls* — one labelled null per application site
    /// `f(c̄)` — and the question becomes plain `Rep_A` membership, decided
    /// by valuation search (shared sites share a null, which is precisely
    /// the "one id per name" semantics of example (8)).
    ///
    /// Bodies that themselves mention function symbols (e.g. outputs of the
    /// Lemma 5 composition algorithm) are handled by
    /// [`crate::compose_alg`]'s verification entry points, which know the
    /// function tables; this method panics on them.
    pub fn membership(&self, source: &Instance, t: &Instance) -> Option<dx_relation::Valuation> {
        assert!(
            self.stds.iter().all(|s| s.body.funcs().is_empty()),
            "membership search requires function-free bodies; \
             use in_semantics_with for composed mappings"
        );
        let sol = self.sol_with_site_nulls(source).0;
        rep_a_membership(&sol, t)
    }

    /// Build `Sol` with unknown Skolem values as site nulls; also returns
    /// the site registry (null → application site).
    pub fn sol_with_site_nulls(
        &self,
        source: &Instance,
    ) -> (AnnInstance, BTreeMap<NullId, (FuncSym, Vec<Value>)>) {
        assert!(source.is_ground(), "source instances are over Const");
        let source = source.project_schema(&self.source);
        let source = &source;
        let mut gen = NullGen::new();
        let mut sites: BTreeMap<(FuncSym, Vec<Value>), NullId> = BTreeMap::new();
        let mut out = AnnInstance::new();
        for std in &self.stds {
            assert!(
                std.body.funcs().is_empty(),
                "site-null construction requires function-free bodies"
            );
            let ev = Evaluator::for_formula(source, &std.body);
            let vars = std.body_vars();
            let rows = ev.satisfying_assignments(&std.body, &vars);
            if rows.is_empty() {
                for atom in &std.head {
                    out.insert_empty_mark(atom.rel, atom.ann.clone());
                }
                continue;
            }
            for row in rows {
                let env: BTreeMap<dx_relation::Var, Value> =
                    vars.iter().copied().zip(row.iter().copied()).collect();
                for atom in &std.head {
                    let vals: Vec<Value> = atom
                        .args
                        .iter()
                        .map(|term| eval_head_term(term, &env, &mut sites, &mut gen))
                        .collect();
                    out.insert(atom.rel, AnnTuple::new(Tuple::new(vals), atom.ann.clone()));
                }
            }
        }
        let registry = sites.into_iter().map(|(site, n)| (n, site)).collect();
        (out, registry)
    }
}

/// Evaluate a head term under a ground environment, mapping Skolem sites to
/// canonical nulls.
fn eval_head_term(
    term: &Term,
    env: &BTreeMap<dx_relation::Var, Value>,
    sites: &mut BTreeMap<(FuncSym, Vec<Value>), NullId>,
    gen: &mut NullGen,
) -> Value {
    match term {
        Term::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("head variable {v} unbound in SkSTD")),
        Term::Const(c) => Value::Const(*c),
        Term::App(f, args) => {
            let arg_vals: Vec<Value> = args
                .iter()
                .map(|a| eval_head_term(a, env, sites, gen))
                .collect();
            let key = (*f, arg_vals);
            Value::Null(*sites.entry(key).or_insert_with(|| gen.fresh()))
        }
    }
}

impl fmt::Display for SkMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "σ = {}", self.source)?;
        writeln!(f, "τ = {}", self.target)?;
        for std in &self.stds {
            writeln!(f, "  {std}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for SkMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Proposition 7 helper: the second-order reading of an unannotated SkSTD
/// set, `Ψ_Σ = ∃f̄ ⋀ ∀x̄ (φ → ψ)`. Under the all-open annotation, `(|Σop|)`
/// coincides with `(S,T) |= Ψ_Σ`; this function checks the right-hand side
/// directly for a given function table (used in tests of Proposition 7).
pub fn satisfies_second_order_with(
    mapping: &SkMapping,
    source: &Instance,
    target: &Instance,
    funcs: &FuncTable,
) -> bool {
    let junk = ConstId::new("⋆undef");
    let total = Totalized { table: funcs, junk };
    for std in &mapping.stds {
        let mut dom: BTreeSet<Value> = source.active_domain();
        dom.extend(std.body.constants().into_iter().map(Value::Const));
        dom.extend(funcs.range_values());
        let ev = Evaluator::with_domain_and_funcs(source, dom.clone(), &total);
        let vars = std.body_vars();
        let rows = ev.satisfying_assignments(&std.body, &vars);
        // Head atoms must hold in the target, with the same interpretation.
        let tev = Evaluator::with_domain_and_funcs(target, dom, &total);
        for row in rows {
            let mut asg = Assignment::new();
            for (v, val) in vars.iter().zip(row.iter()) {
                asg.bind(*v, *val);
            }
            for atom in &std.head {
                let vals: Vec<Value> = atom.args.iter().map(|t| tev.eval_term(t, &asg)).collect();
                if !target.contains(atom.rel, &Tuple::new(vals)) {
                    return false;
                }
            }
        }
    }
    true
}

/// A convenience: build a [`Query`] over the target schema checking one
/// SkSTD head under an assignment — exposed mainly for doc-tests and the
/// examples.
pub fn head_as_query(std: &SkStd) -> Query {
    let vars: Vec<dx_relation::Var> = std
        .head
        .iter()
        .flat_map(|a| a.args.iter().flat_map(|t| t.vars()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    Query::new(
        vars,
        Formula::and(
            std.head
                .iter()
                .map(|a| Formula::Atom(a.rel, a.args.clone())),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's example (8): ids are per-name, phones per (name, proj).
    fn example8() -> SkMapping {
        SkMapping::parse("T(f(em):cl, em:cl, g(em, proj):op) <- S(em, proj)").unwrap()
    }

    #[test]
    fn sol_with_given_functions() {
        // S = {(John, P1)}, f(John)=001, g(John,P1)=1234 →
        // Sol = {(001^cl, John^cl, 1234^op)}.
        let m = example8();
        let mut s = Instance::new();
        s.insert_names("S", &["John", "P1"]);
        let mut ft = FuncTable::new();
        ft.define(FuncSym::new("f"), vec![Value::c("John")], Value::c("001"));
        ft.define(
            FuncSym::new("g"),
            vec![Value::c("John"), Value::c("P1")],
            Value::c("1234"),
        );
        let sol = m.sol(&s, &ft);
        let t = sol.relation(RelSym::new("T")).unwrap();
        assert_eq!(t.len(), 1);
        let at = t.iter().next().unwrap();
        assert_eq!(at.tuple, Tuple::from_names(&["001", "John", "1234"]));
        assert_eq!(
            at.ann,
            Annotation::new(vec![Ann::Closed, Ann::Closed, Ann::Open])
        );
    }

    /// The semantics of example (8): {(001, John, 1234), (001, John, 5678)}
    /// is a member (open phone), but two different ids for John are not.
    #[test]
    fn example8_membership() {
        let m = example8();
        let mut s = Instance::new();
        s.insert_names("S", &["John", "P1"]);
        s.insert_names("S", &["John", "P2"]);
        // Same id for both projects (f depends only on the name), distinct
        // phones per project plus an extra phone (open position).
        let mut good = Instance::new();
        good.insert_names("T", &["001", "John", "1234"]);
        good.insert_names("T", &["001", "John", "5678"]);
        good.insert_names("T", &["001", "John", "9999"]);
        assert!(m.membership(&s, &good).is_some());
        // Two different ids for John: impossible — f(John) is one value.
        let mut bad = Instance::new();
        bad.insert_names("T", &["001", "John", "1234"]);
        bad.insert_names("T", &["002", "John", "5678"]);
        assert!(m.membership(&s, &bad).is_none());
    }

    /// Lemma 4: the SkSTD translation has the same semantics as the plain
    /// STD mapping (checked by comparing membership on a batch of targets).
    #[test]
    fn lemma4_equivalence_on_samples() {
        let plain = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let sk = SkMapping::from_mapping(&plain);
        assert_eq!(sk.funcs().len(), 1);
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c1"]);
        s.insert_names("E", &["a", "c2"]);
        let targets: Vec<Instance> = vec![
            {
                // Two values for the two (x=a) justifications + replication.
                let mut t = Instance::new();
                t.insert_names("R", &["a", "v1"]);
                t.insert_names("R", &["a", "v2"]);
                t.insert_names("R", &["a", "v3"]);
                t
            },
            {
                // Single value (both nulls merged).
                let mut t = Instance::new();
                t.insert_names("R", &["a", "v"]);
                t
            },
            {
                // Wrong closed value.
                let mut t = Instance::new();
                t.insert_names("R", &["b", "v"]);
                t
            },
            Instance::new(),
        ];
        for t in &targets {
            let plain_member = crate::semantics::is_member(&plain, &s, t);
            let sk_member = sk.membership(&s, t).is_some();
            assert_eq!(plain_member, sk_member, "disagreement on {t}");
        }
    }

    /// Lemma 4 nuance: the Skolem argument tuple is (x̄, ȳ), so two source
    /// tuples sharing x get DIFFERENT nulls (unlike `f(x)`).
    #[test]
    fn skolem_args_include_all_body_vars() {
        let plain = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
        let sk = SkMapping::from_mapping(&plain);
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c1"]);
        s.insert_names("E", &["a", "c2"]);
        let (sol, registry) = sk.sol_with_site_nulls(&s);
        // Two distinct sites → two distinct nulls.
        assert_eq!(registry.len(), 2);
        assert_eq!(sol.relation(RelSym::new("R")).unwrap().len(), 2);
    }

    /// Empty bodies generate empty marks in Sol, matching CSol_A.
    #[test]
    fn empty_body_empty_marks() {
        let m = SkMapping::parse("R(f(x):op) <- E(x)").unwrap();
        let s = Instance::new();
        let sol = m.sol(&s, &FuncTable::new());
        let r = sol.relation(RelSym::new("R")).unwrap();
        assert_eq!(r.len(), 0);
        assert_eq!(r.empty_marks().count(), 1);
        // The empty instance is a member.
        assert!(m.membership(&s, &Instance::new()).is_some());
    }

    /// Proposition 7 direction check: all-open SkSTD semantics = the
    /// second-order reading, for sampled function tables.
    #[test]
    fn second_order_reading_agrees_when_open() {
        let m = example8().reannotated(Ann::Open);
        let mut s = Instance::new();
        s.insert_names("S", &["John", "P1"]);
        let mut ft = FuncTable::new();
        ft.define(FuncSym::new("f"), vec![Value::c("John")], Value::c("001"));
        ft.define(
            FuncSym::new("g"),
            vec![Value::c("John"), Value::c("P1")],
            Value::c("1234"),
        );
        let mut t = Instance::new();
        t.insert_names("T", &["001", "John", "1234"]);
        t.insert_names("T", &["junk", "junk", "junk"]); // OWA: fine
        assert!(satisfies_second_order_with(&m, &s, &t, &ft));
        assert!(m.in_semantics_with(&s, &t, &ft));
        let mut t2 = Instance::new();
        t2.insert_names("T", &["junk", "junk", "junk"]);
        assert!(!satisfies_second_order_with(&m, &s, &t2, &ft));
        assert!(!m.in_semantics_with(&s, &t2, &ft));
    }
}
