//! The Proposition 6 non-closure counterexample.
//!
//! Plain annotated STD mappings are **not** closed under composition: for
//!
//! ```text
//! Σ:  N(z) :- R(x)          (z existential: ONE null for all of R)
//!     C(x) :- P(x)
//! Δ:  D(x, y) :- C(x) ∧ N(y)
//! ```
//!
//! and the source `S₀` with `R = {0}`, `P = {1, …, n}`, the composition
//! relates `S₀` exactly to the targets containing a *rectangle*
//! `{1, …, n} × {c}` for a single shared `c` (Claim 6). No annotated
//! FO-STD mapping `Γ` can express this: any `Γ` has some bound `k` on
//! co-occurrences of one null, and for `n > k` the instance assigning
//! *distinct* constants per row is in `(|Γ|)` but not in the composition
//! (the paper's case analysis). This module builds the gadget so tests and
//! the experiment harness can replay both halves of the argument.

use crate::compose::comp_membership;
use dx_chase::Mapping;
use dx_relation::Instance;

/// The mapping `Σ` of Proposition 6 (all positions annotated `ann` — the
/// argument works for every annotation, so we default to closed).
pub fn sigma() -> Mapping {
    Mapping::parse("N(z:cl) <- R(x); C(x:cl) <- P(x)").unwrap()
}

/// The mapping `Δ` of Proposition 6.
pub fn delta() -> Mapping {
    Mapping::parse("D(x:cl, y:cl) <- C(x) & N(y)").unwrap()
}

/// The source `S₀`: `R = {0}`, `P = {1, …, n}`.
pub fn source(n: usize) -> Instance {
    let mut s = Instance::new();
    s.insert_nums("R", &[0]);
    for i in 1..=n {
        s.insert_nums("P", &[i as i64]);
    }
    s
}

/// The target `v(T₀)`: the rectangle `{1, …, n} × {c}` — in the composition
/// for every constant `c` (Claim 6, item 1).
pub fn rectangle_target(n: usize, c: &str) -> Instance {
    let mut t = Instance::new();
    for i in 1..=n {
        t.insert_names("D", &[&i.to_string(), c]);
    }
    t
}

/// The "distinct constants" target `{(i, cᵢ)}` with pairwise-distinct `cᵢ` —
/// **not** in the composition for `n ≥ 2` (it contains no rectangle), yet
/// any candidate `Γ` with fewer than `n` repeated-null positions admits it.
pub fn distinct_target(n: usize) -> Instance {
    let mut t = Instance::new();
    for i in 1..=n {
        t.insert_names("D", &[&i.to_string(), &format!("c{i}")]);
    }
    t
}

/// Replay Claim 6 for the given `n`: returns
/// `(rectangle ∈ Σ∘Δ, distinct ∈ Σ∘Δ)` — expected `(true, false)`.
pub fn demonstrate(n: usize) -> (bool, bool) {
    let sg = sigma();
    let dl = delta();
    let s = source(n);
    let rect = comp_membership(&sg, &dl, &s, &rectangle_target(n, "c"), None).member;
    let dist = comp_membership(&sg, &dl, &s, &distinct_target(n), None).member;
    (rect, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_solver::Completeness;

    #[test]
    fn claim6_rectangle_is_member() {
        for n in 1..=4 {
            let (rect, _) = demonstrate(n);
            assert!(rect, "rectangle must be a composition member for n={n}");
        }
    }

    #[test]
    fn claim6_distinct_is_not_member() {
        for n in 2..=4 {
            let (_, dist) = demonstrate(n);
            assert!(!dist, "distinct-constants target must be rejected, n={n}");
        }
    }

    #[test]
    fn rejection_is_exact() {
        // Σ is all-closed, so the composition decision is exact — the
        // non-membership half of the argument is machine-checked, not
        // budget-limited.
        let out = comp_membership(&sigma(), &delta(), &source(3), &distinct_target(3), None);
        assert!(!out.member);
        assert_eq!(out.completeness, Completeness::Exact);
    }

    #[test]
    fn every_member_contains_a_rectangle() {
        // Claim 6 item 2, checked on supersets: adding tuples to a rectangle
        // keeps membership under Δop…Σ? — here both all-closed, so instead
        // verify a NON-rectangle superset of `distinct` stays out.
        let mut t = distinct_target(3);
        t.insert_names("D", &["1", "c2"]); // still no full rectangle
        let out = comp_membership(&sigma(), &delta(), &source(3), &t, None);
        assert!(!out.member);
    }

    #[test]
    fn annotation_invariance_of_the_argument() {
        // The argument "works for any annotations α, α′" (Prop 6). Check the
        // all-open Δ variant through the monotone fast path.
        let sg = sigma();
        let dl = delta().all_open();
        let s = source(3);
        let mut rect_plus = rectangle_target(3, "c");
        rect_plus.insert_names("D", &["extra", "junk"]); // OWA: supersets OK
        assert!(comp_membership(&sg, &dl, &s, &rect_plus, None).member);
        assert!(!comp_membership(&sg, &dl, &s, &distinct_target(3), None).member);
    }
}
