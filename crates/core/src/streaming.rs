//! Streaming certain answers: incrementally maintained query results over
//! an incrementally maintained canonical solution.
//!
//! A [`StreamSession`] wraps a [`dx_engine::IncrementalExchange`] (which
//! maintains `CSol_A(S)` under source [`Update`] batches) and a set of
//! registered queries whose answer sets it keeps current. Per batch, each
//! query takes the cheapest sound path of the delta protocol
//! (`DESIGN.md §Streaming data exchange`):
//!
//! * **Skip** — the canonical-solution delta does not touch any relation
//!   the query reads (and, outside the maintained-raw representation, the
//!   candidate palette did not move): the stored answers are still exact.
//! * **Delta plan** — positive compiled queries under the `certain` regime
//!   with an *insert-only* delta on their relations: the cached
//!   [`dx_query::delta_plan`] variant (via
//!   [`PlanCatalog::delta_in`]) runs over the post-update solution with
//!   the delta tuples exposed as Δ-relations ([`DeltaStore`]), and the new
//!   null-free answers are unioned into the maintained raw set. Soundness
//!   is the classic differentiation argument: every genuinely new answer
//!   has a witness using at least one delta tuple, and positive plans are
//!   monotone, so re-derived old answers are harmless under set union.
//! * **Recompute** — everything else: retractions reaching the query's
//!   relations, non-positive queries, and the non-monotone regimes
//!   (GCWA\*, under/over approximation) re-run on the *maintained*
//!   canonical solution — still skipping the chase, which is the dominant
//!   cost — via the `*_with` entry points.
//!
//! The maintained raw set stores **unfiltered** null-free answers; the
//! genericity filter (answers range over `adom(S) ∪ constants(Q)`) is
//! applied at read time against the *current* source. This keeps the
//! maintained representation monotone under insert-only deltas even
//! though the palette itself moves with the source.

use crate::certain::certain_answers_with;
use crate::regimes::{
    approx_certain_answers_with, gcwa_star_answers_with, ApproxOutcome, GcwaOutcome, RegimeBudget,
};
use dx_chase::{CanonicalSolution, Mapping, TargetDep};
use dx_engine::{IncrementalExchange, UpdateReport};
use dx_logic::classify;
use dx_logic::Query;
use dx_query::{DeltaStore, PlanCatalog};
use dx_relation::{ConstId, DeltaIndex, Instance, RelSym, Relation, Update};
use dx_solver::{Completeness, SearchBudget};
use std::collections::BTreeSet;

/// The answering regime a registered query is maintained under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamRegime {
    /// `certain_Σα(Q, S)` — exact for positive queries (Proposition 3),
    /// search-based otherwise.
    Certain,
    /// GCWA\*-answers over unions of minimal solutions (Hernich).
    GcwaStar,
    /// The under/over approximation bracket for queries with negation.
    Approx,
}

/// How one registered query was maintained across one update batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryPath {
    /// The delta did not reach the query — stored answers still exact.
    Skipped,
    /// Delta-plan evaluation over the Δ-relations; counts the (possibly
    /// overlapping) answer rows the variant produced.
    DeltaPlan {
        /// Null-free answer tuples the delta plan yielded.
        delta_answers: usize,
    },
    /// Fallback: full re-evaluation on the maintained canonical solution.
    Recomputed,
}

/// The maintained answer state of one registered query.
enum AnswerState {
    /// Positive compiled `certain` query: the unfiltered null-free answer
    /// set, grown monotonically by delta plans (palette filter applied at
    /// read time; completeness is always exact on this path).
    MaintainedRaw(Relation),
    /// `certain` query outside the maintained representation.
    Computed(Relation, Completeness),
    /// GCWA\* outcome, recomputed when the delta reaches the query.
    Gcwa(GcwaOutcome),
    /// Approximation bracket, recomputed when the delta reaches the query.
    Approx(ApproxOutcome),
}

struct Registered {
    name: String,
    query: Query,
    regime: StreamRegime,
    /// Target relations the query reads.
    rels: BTreeSet<RelSym>,
    state: AnswerState,
}

/// Per-batch report: the engine-level [`UpdateReport`] plus the
/// maintenance path each registered query took.
pub struct SessionReport {
    /// The chase-layer report from [`IncrementalExchange::update`].
    pub update: UpdateReport,
    /// `(query name, path)` per registered query, in registration order.
    pub queries: Vec<(String, QueryPath)>,
}

/// A streaming data-exchange session: one incrementally maintained
/// canonical solution plus incrementally maintained certain-answer sets.
///
/// ```
/// use dx_chase::Mapping;
/// use dx_core::streaming::{StreamRegime, StreamSession};
/// use dx_logic::Query;
/// use dx_relation::{Instance, Update};
///
/// let mapping = Mapping::parse("T(x:cl, y:cl) <- E(x, y)").unwrap();
/// let mut source = Instance::new();
/// source.insert_names("E", &["a", "b"]);
/// let mut sess = StreamSession::new(mapping, Vec::new(), source);
/// let q = Query::parse(&["x"], "exists y. T(x, y)").unwrap();
/// sess.register("heads", q, StreamRegime::Certain);
/// assert_eq!(sess.answers("heads").unwrap().0.len(), 1);
///
/// let up = Update::new().insert_names("E", &["c", "d"]);
/// let report = sess.update(&up);
/// assert_eq!(report.update.csol_added, 1);
/// assert_eq!(sess.answers("heads").unwrap().0.len(), 2);
/// ```
pub struct StreamSession {
    inc: IncrementalExchange,
    mapping: Mapping,
    queries: Vec<Registered>,
    regime_budget: RegimeBudget,
    search_budget: Option<SearchBudget>,
    /// The canonical solution's relational part as a persistent refcounted
    /// index — the base store every delta plan executes against. One
    /// refcount per *annotated* tuple, so the report's annotated-level
    /// flips keep the set view exact when two annotations share a tuple.
    csol_idx: DeltaIndex,
}

impl StreamSession {
    /// Open a session over `source` (constraints are target tgds/egds the
    /// chased layer maintains; queries evaluate on the canonical
    /// solution, mirroring the batch `certain_*` entry points).
    pub fn new(mapping: Mapping, constraints: Vec<TargetDep>, source: Instance) -> Self {
        let inc = IncrementalExchange::new(mapping.clone(), constraints, source);
        let mut csol_idx = DeltaIndex::new();
        for (rel, r) in inc.csol().relations() {
            csol_idx.declare(rel, r.arity());
        }
        let tuples: Vec<_> = inc
            .csol()
            .relations()
            .flat_map(|(rel, _)| inc.csol().tuples(rel).map(move |t| (rel, t.tuple.clone())))
            .collect();
        for (rel, t) in tuples {
            csol_idx.insert(rel, t);
        }
        StreamSession {
            inc,
            mapping,
            queries: Vec::new(),
            regime_budget: RegimeBudget::default(),
            search_budget: None,
            csol_idx,
        }
    }

    /// The maintained incremental exchange (source, canonical solution,
    /// chased target).
    pub fn exchange(&self) -> &IncrementalExchange {
        &self.inc
    }

    /// Replace the budget used by the GCWA\* regime (applies from the
    /// next recompute).
    pub fn set_regime_budget(&mut self, budget: RegimeBudget) {
        self.regime_budget = budget;
    }

    /// Replace the search budget used by the non-positive `certain` and
    /// approximation recompute paths (applies from the next recompute;
    /// `None` = the engines' defaults).
    pub fn set_search_budget(&mut self, budget: Option<SearchBudget>) {
        self.search_budget = budget;
    }

    /// Register a query under `regime` and compute its initial answers.
    pub fn register(&mut self, name: &str, query: Query, regime: StreamRegime) {
        assert!(
            self.queries.iter().all(|r| r.name != name),
            "duplicate registered query name {name:?}"
        );
        let rels: BTreeSet<RelSym> = query.formula.relations().iter().map(|&(r, _)| r).collect();
        let csol = self.inc.canonical();
        let mut reg = Registered {
            name: name.to_string(),
            query,
            regime,
            rels,
            state: AnswerState::Computed(Relation::new(0), Completeness::Exact),
        };
        self.recompute(&mut reg, &csol);
        self.queries.push(reg);
    }

    /// The current `(answers, completeness)` of a registered query. For
    /// the approximation regime this is the sound lower bound (see
    /// [`StreamSession::approx`] for the bracket).
    pub fn answers(&self, name: &str) -> Option<(Relation, Completeness)> {
        let reg = self.queries.iter().find(|r| r.name == name)?;
        Some(match &reg.state {
            AnswerState::MaintainedRaw(raw) => {
                (self.filter_palette(raw, &reg.query), Completeness::Exact)
            }
            AnswerState::Computed(rel, c) => (rel.clone(), *c),
            AnswerState::Gcwa(o) => (o.answers.clone(), o.completeness),
            AnswerState::Approx(o) => (o.lower.clone(), o.completeness),
        })
    }

    /// The full GCWA\* outcome of a registered query, when maintained
    /// under that regime.
    pub fn gcwa(&self, name: &str) -> Option<&GcwaOutcome> {
        match &self.queries.iter().find(|r| r.name == name)?.state {
            AnswerState::Gcwa(o) => Some(o),
            _ => None,
        }
    }

    /// The full approximation bracket of a registered query, when
    /// maintained under that regime.
    pub fn approx(&self, name: &str) -> Option<&ApproxOutcome> {
        match &self.queries.iter().find(|r| r.name == name)?.state {
            AnswerState::Approx(o) => Some(o),
            _ => None,
        }
    }

    /// Apply one source update batch: maintain the canonical solution and
    /// every registered answer set, each by its cheapest sound path.
    pub fn update(&mut self, up: &Update) -> SessionReport {
        // The palette scan is O(adom(S)) per batch; only the search-based
        // states consult it for their skip decision, so a session holding
        // nothing but maintained-raw sets stays O(delta) here.
        let needs_palette = self
            .queries
            .iter()
            .any(|r| !matches!(r.state, AnswerState::MaintainedRaw(_)));
        let palette_before = if needs_palette {
            Some(self.palette())
        } else {
            None
        };
        let report = self.inc.update(up);
        // Keep the persistent base index in lockstep with the canonical
        // solution (one refcount per annotated tuple — see the field doc).
        for (rel, t) in &report.removed {
            self.csol_idx.remove(*rel, &t.tuple);
        }
        for (rel, t) in &report.added {
            self.csol_idx.declare(*rel, t.tuple.arity());
            self.csol_idx.insert(*rel, t.tuple.clone());
        }
        let palette_moved = match &palette_before {
            Some(p) => self.palette() != *p,
            None => false,
        };
        let changed = report.changed_rels();

        // Lazily materialize the maintained canonical solution only if
        // some query actually needs a recompute.
        let mut csol: Option<CanonicalSolution> = None;
        let mut paths = Vec::with_capacity(self.queries.len());
        let mut queries = std::mem::take(&mut self.queries);
        for reg in &mut queries {
            let touched: BTreeSet<RelSym> = changed.intersection(&reg.rels).copied().collect();
            // The maintained-raw representation depends only on the
            // relations the (positive) query reads, and re-filters at read
            // time — palette movement and markers are irrelevant. The
            // search-based states depend on the *whole* solution (extra
            // open tuples draw constants from the full active domain, and
            // empty markers shape `Rep_A`), so any delta at all forces a
            // recompute.
            let unaffected = if matches!(reg.state, AnswerState::MaintainedRaw(_)) {
                touched.is_empty()
            } else {
                changed.is_empty() && !palette_moved && !report.marks_changed
            };
            let path = if unaffected {
                QueryPath::Skipped
            } else if let Some(n) = self.try_delta_path(reg, &report, &touched) {
                QueryPath::DeltaPlan { delta_answers: n }
            } else {
                let csol = csol.get_or_insert_with(|| self.inc.canonical());
                self.recompute(reg, csol);
                QueryPath::Recomputed
            };
            paths.push((reg.name.clone(), path));
        }
        self.queries = queries;
        SessionReport {
            update: report,
            queries: paths,
        }
    }

    /// Attempt the delta-plan path; `Some(rows)` on success.
    fn try_delta_path(
        &self,
        reg: &mut Registered,
        report: &UpdateReport,
        touched: &BTreeSet<RelSym>,
    ) -> Option<usize> {
        let AnswerState::MaintainedRaw(raw) = &mut reg.state else {
            return None;
        };
        if touched.is_empty() {
            // Only the palette moved: the raw set is still the exact
            // null-free answer set, and reads re-filter. Nothing to do.
            return Some(0);
        }
        // Any retraction on a relation the query reads can shrink the
        // answer set, which no unioned variant expresses.
        if report.removed.iter().any(|(r, _)| reg.rels.contains(r)) {
            return None;
        }
        let dp = PlanCatalog::shared().delta_in(&reg.query, &self.mapping.target, touched)?;
        let compiled = PlanCatalog::shared()
            .eval_in(&reg.query, &self.mapping.target)
            .compiled()?
            .clone();
        let mut delta = Instance::new();
        for (rel, t) in report.added.iter().filter(|(r, _)| reg.rels.contains(r)) {
            delta.declare(*rel, t.tuple.arity());
            delta.insert(*rel, t.tuple.clone());
        }
        let store = DeltaStore::new(&self.csol_idx, &delta);
        let rows = dx_query::exec::exec(&dp, &store);
        let cols: Vec<usize> = compiled
            .head()
            .iter()
            .map(|v| rows.col(*v).expect("head variable is produced"))
            .collect();
        let mut n = 0;
        for r in &rows.rows {
            let t = dx_relation::Tuple::new(cols.iter().map(|&c| r[c]).collect::<Vec<_>>());
            if t.is_ground() {
                raw.insert(t);
                n += 1;
            }
        }
        Some(n)
    }

    /// Full re-evaluation of one query on the maintained canonical
    /// solution.
    fn recompute(&self, reg: &mut Registered, csol: &CanonicalSolution) {
        let source = self.inc.source();
        reg.state = match reg.regime {
            StreamRegime::Certain => {
                let positive = classify::is_positive(&reg.query.formula);
                let compiled = PlanCatalog::shared()
                    .eval_in(&reg.query, &self.mapping.target)
                    .is_compiled();
                if positive && compiled {
                    let raw = PlanCatalog::shared()
                        .eval_in(&reg.query, &self.mapping.target)
                        .naive_certain_answers(&csol.rel_part());
                    AnswerState::MaintainedRaw(raw)
                } else {
                    let (rel, c) = certain_answers_with(
                        &self.mapping,
                        csol,
                        source,
                        &reg.query,
                        self.search_budget.as_ref(),
                    );
                    AnswerState::Computed(rel, c)
                }
            }
            StreamRegime::GcwaStar => AnswerState::Gcwa(gcwa_star_answers_with(
                &self.mapping,
                csol,
                source,
                &reg.query,
                &self.regime_budget,
            )),
            StreamRegime::Approx => AnswerState::Approx(approx_certain_answers_with(
                &self.mapping,
                csol,
                source,
                &reg.query,
                self.search_budget.as_ref(),
            )),
        };
    }

    /// The current genericity palette: `adom(S)` (query constants are
    /// added per query at filter time).
    fn palette(&self) -> BTreeSet<ConstId> {
        self.inc.source().adom_consts()
    }

    /// Read-time genericity filter for the maintained-raw representation —
    /// replicates the positive fast path of
    /// [`crate::certain::certain_answers_with`] exactly.
    fn filter_palette(&self, raw: &Relation, query: &Query) -> Relation {
        let mut const_set = self.palette();
        const_set.extend(query.formula.constants());
        let mut rel = Relation::new(raw.arity());
        for t in raw.iter() {
            if t.consts().all(|c| const_set.contains(&c)) {
                rel.insert(t.clone());
            }
        }
        rel
    }
}

/// The target relations a source update batch can touch: the heads of
/// every STD whose body reads one of the batch's source relations. This is
/// the *static* over-approximation of [`UpdateReport::changed_rels`] —
/// what a delta-plan derivation can use before any tuple moves (the
/// `--explain` face renders delta plans against exactly this set).
pub fn affected_target_rels(mapping: &Mapping, up: &Update) -> BTreeSet<RelSym> {
    let touched = up.rels();
    mapping
        .stds
        .iter()
        .filter(|std| {
            std.body
                .relations()
                .iter()
                .any(|(rel, _)| touched.contains(rel))
        })
        .flat_map(|std| std.head.iter().map(|atom| atom.rel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certain::certain_answers;
    use crate::regimes::gcwa_star_answers;
    use dx_relation::Tuple;

    fn names(rel: &Relation) -> BTreeSet<Vec<String>> {
        rel.iter()
            .map(|t| t.iter().map(|v| format!("{v}")).collect())
            .collect()
    }

    fn oracle(mapping: &Mapping, source: &Instance, q: &Query) -> Relation {
        certain_answers(mapping, source, q, None).0
    }

    #[test]
    fn positive_query_rides_the_delta_plan() {
        let mapping = Mapping::parse("StrmT(x:cl, y:cl) <- StrmE(x, y)").unwrap();
        let mut source = Instance::new();
        source.insert_names("StrmE", &["a", "b"]);
        let mut sess = StreamSession::new(mapping.clone(), Vec::new(), source.clone());
        let q = Query::parse(&["x", "y"], "StrmT(x, y)").unwrap();
        sess.register("all", q.clone(), StreamRegime::Certain);

        let up = Update::new().insert_names("StrmE", &["b", "c"]);
        let report = sess.update(&up);
        assert!(
            matches!(
                report.queries[0].1,
                QueryPath::DeltaPlan { delta_answers: 1 }
            ),
            "insert-only delta takes the delta-plan path: {:?}",
            report.queries
        );
        up.apply(&mut source);
        assert_eq!(
            names(&sess.answers("all").unwrap().0),
            names(&oracle(&mapping, &source, &q))
        );
    }

    #[test]
    fn retraction_falls_back_to_recompute_and_matches_oracle() {
        let mapping = Mapping::parse("StrmT(x:cl, z:op) <- StrmE(x, y)").unwrap();
        let mut source = Instance::new();
        source.insert_names("StrmE", &["a", "b"]);
        source.insert_names("StrmE", &["c", "d"]);
        let mut sess = StreamSession::new(mapping.clone(), Vec::new(), source.clone());
        let q = Query::parse(&["x"], "exists z. StrmT(x, z)").unwrap();
        sess.register("left", q.clone(), StreamRegime::Certain);

        let up = Update::new().retract_names("StrmE", &["a", "b"]);
        let report = sess.update(&up);
        assert_eq!(report.queries[0].1, QueryPath::Recomputed);
        up.apply(&mut source);
        assert_eq!(
            names(&sess.answers("left").unwrap().0),
            names(&oracle(&mapping, &source, &q))
        );
    }

    #[test]
    fn untouched_query_is_skipped() {
        let mapping =
            Mapping::parse("StrmT(x:cl, y:cl) <- StrmE(x, y); StrmU(x:cl) <- StrmF(x)").unwrap();
        let mut source = Instance::new();
        source.insert_names("StrmE", &["a", "b"]);
        source.insert_names("StrmF", &["q"]);
        let mut sess = StreamSession::new(mapping, Vec::new(), source);
        let qt = Query::parse(&["x", "y"], "StrmT(x, y)").unwrap();
        let qu = Query::parse(&["x"], "StrmU(x)").unwrap();
        sess.register("t", qt, StreamRegime::Certain);
        sess.register("u", qu, StreamRegime::Certain);

        let up = Update::new().insert_names("StrmE", &["b", "c"]);
        let report = sess.update(&up);
        let by_name: std::collections::BTreeMap<_, _> = report.queries.into_iter().collect();
        assert!(matches!(by_name["t"], QueryPath::DeltaPlan { .. }));
        assert_eq!(by_name["u"], QueryPath::Skipped);
        assert_eq!(sess.answers("u").unwrap().0.len(), 1);
    }

    #[test]
    fn non_monotone_regimes_recompute_and_match_batch_entry_points() {
        let mapping = Mapping::parse("StrmT(x:cl, y:cl) <- StrmE(x, y)").unwrap();
        let mut source = Instance::new();
        source.insert_names("StrmE", &["a", "b"]);
        let mut sess = StreamSession::new(mapping.clone(), Vec::new(), source.clone());
        let q = Query::parse(&["x", "y"], "StrmT(x, y)").unwrap();
        let neg = Query::parse(&["x"], "exists y. StrmT(x, y) & !StrmT(y, x)").unwrap();
        sess.register("gcwa", q.clone(), StreamRegime::GcwaStar);
        sess.register("approx", neg.clone(), StreamRegime::Approx);

        let up = Update::new().insert_names("StrmE", &["b", "a"]);
        let report = sess.update(&up);
        for (_, path) in &report.queries {
            assert_eq!(*path, QueryPath::Recomputed, "regimes never take deltas");
        }
        up.apply(&mut source);
        let g = gcwa_star_answers(&mapping, &source, &q, &RegimeBudget::default());
        assert_eq!(
            names(&sess.gcwa("gcwa").unwrap().answers),
            names(&g.answers)
        );
        let a = crate::regimes::approx_certain_answers(&mapping, &source, &neg, None);
        assert_eq!(
            names(&sess.approx("approx").unwrap().lower),
            names(&a.lower)
        );
        assert_eq!(
            names(&sess.approx("approx").unwrap().upper),
            names(&a.upper)
        );
    }

    #[test]
    fn palette_filter_tracks_source_retractions() {
        // `b` occurs only via StrmE(a, b); retracting it must drop answers
        // mentioning `b` even though the raw set is maintained monotonically.
        let mapping = Mapping::parse("StrmT(x:cl, y:cl) <- StrmE(x, y)").unwrap();
        let mut source = Instance::new();
        source.insert_names("StrmE", &["a", "b"]);
        source.insert_names("StrmE", &["a", "c"]);
        let mut sess = StreamSession::new(mapping.clone(), Vec::new(), source.clone());
        let q = Query::parse(&["x", "y"], "StrmT(x, y)").unwrap();
        sess.register("all", q.clone(), StreamRegime::Certain);
        assert_eq!(sess.answers("all").unwrap().0.len(), 2);

        let up = Update::new().retract_names("StrmE", &["a", "b"]);
        sess.update(&up);
        up.apply(&mut source);
        let got = sess.answers("all").unwrap().0;
        assert_eq!(names(&got), names(&oracle(&mapping, &source, &q)));
        assert!(!got.contains(&Tuple::from_names(&["a", "b"])));
    }
}
