//! The syntactic composition algorithm for SkSTD mappings (Lemma 5 /
//! Theorem 5).
//!
//! Given annotated SkSTD mappings `Σα : σ → τ` and `Δα′ : τ → ω`, the
//! algorithm produces `Γα′ : σ → ω`:
//!
//! 1. rename `Σ`'s variables (and colliding function symbols) apart;
//! 2. put `Σ` in *normal form* — one head atom per SkSTD;
//! 3. replace every atom `R(ȳ)` in a `Δ` body by
//!    `β_R(ȳ) = ⋁_j ∃z̄_j (φ_j(z̄_j) ∧ ȳ = ū_j)`, where
//!    `R(ū_j) :– φ_j(z̄_j)` ranges over `Σ`'s normal-form rules for `R`
//!    (each occurrence gets freshly renamed `z̄_j`);
//! 4. if both inputs are CQ-SkSTDs, re-normalize: distribute the
//!    disjunctions, split into one SkSTD per disjunct, and drop the
//!    existential quantifiers (sound for SkSTDs — invented values are
//!    function terms, so the quantifiers are inert).
//!
//! **Theorem 5**: the classes *all-open CQ-SkSTDs* (= the second-order tgds
//! of [FKP&T'05]) and *all-closed FO-SkSTDs* are closed under this
//! composition. `Γα′` always inherits `Δα′`'s heads and annotations.
//!
//! Finite-semantics note: our `Sol_F′(S)` evaluates bodies under
//! *active-domain* semantics. To keep `β_R` faithful when a `φ_j` is not a
//! safe CQ (e.g. contains negation), the algorithm relativizes each
//! quantified `z̄_j` variable not guarded by a positive atom to the source
//! active domain (the same `adom(·)` relativization the paper itself uses in
//! Theorem 4's reduction).

use crate::skstd::{SkMapping, SkStd};

use dx_logic::{Formula, Term};
use dx_relation::{FuncSym, RelSym, Schema, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors from the composition algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// A `Δ` body mentions a relation `Σ` does not produce.
    SchemaMismatch(String),
    /// CQ re-normalization would exceed the disjunct budget.
    DisjunctExplosion {
        /// Number of disjuncts that would have been produced.
        disjuncts: usize,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            ComposeError::DisjunctExplosion { disjuncts } => {
                write!(f, "CQ re-normalization would produce {disjuncts} disjuncts")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

/// The result of composing two SkSTD mappings.
#[derive(Clone)]
pub struct Composition {
    /// The composed mapping `Γα′ : σ → ω`.
    pub mapping: SkMapping,
    /// Function symbols of `Σ` that had to be renamed (old → new) to avoid
    /// collisions with `Δ`'s; apply this when combining `F′` and `G′` into
    /// an `H′` table for `Γ` (Claim 7).
    pub sigma_func_renames: BTreeMap<FuncSym, FuncSym>,
    /// Whether CQ re-normalization was applied (both inputs were
    /// CQ-SkSTDs).
    pub cq_normalized: bool,
}

/// Which composition-closed class of Theorem 5 a pair of mappings falls in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClosureClass {
    /// All-open annotations with CQ-SkSTDs (Theorem 5(1), = [FKP&T'05]).
    AllOpenCq,
    /// `Σ` all-closed with arbitrary FO-SkSTDs (Theorem 5(2)).
    AllClosedFo,
}

/// Determine whether Lemma 5 guarantees `compose_skstd(Σ, Δ)` captures the
/// semantic composition.
pub fn closure_class(sigma: &SkMapping, delta: &SkMapping) -> Option<ClosureClass> {
    if sigma.is_all_closed() {
        return Some(ClosureClass::AllClosedFo);
    }
    if sigma.is_all_open() && delta.is_all_open() && sigma.has_cq_bodies() && delta.has_cq_bodies()
    {
        return Some(ClosureClass::AllOpenCq);
    }
    // Lemma 5's first case actually only needs Δ all-open + monotone.
    if delta.is_all_open() && delta.has_monotone_bodies() {
        return Some(ClosureClass::AllOpenCq);
    }
    None
}

/// Maximum number of CQ disjuncts produced before bailing out.
const MAX_DISJUNCTS: usize = 4096;

/// Compose two annotated SkSTD mappings per Lemma 5.
pub fn compose_skstd(sigma: &SkMapping, delta: &SkMapping) -> Result<Composition, ComposeError> {
    // Schema check: Δ's body relations must be produced by Σ.
    for std in &delta.stds {
        for (rel, arity) in std.body.relations() {
            if sigma.target.arity(rel) != Some(arity) {
                return Err(ComposeError::SchemaMismatch(format!(
                    "Δ body uses {rel}/{arity}, absent from Σ's target"
                )));
            }
        }
    }

    // Step 1a: rename Σ's function symbols that collide with Δ's.
    let delta_funcs: BTreeSet<FuncSym> = delta.funcs().into_iter().map(|(f, _)| f).collect();
    let mut func_renames: BTreeMap<FuncSym, FuncSym> = BTreeMap::new();
    for (f, _) in sigma.funcs() {
        if delta_funcs.contains(&f) {
            func_renames.insert(f, FuncSym::new(&format!("{}__sg", f.name())));
        }
    }

    // Step 1b + 2: rename Σ's variables apart and split heads.
    let mut normal: BTreeMap<RelSym, Vec<(Vec<Term>, Formula)>> = BTreeMap::new();
    for (i, std) in sigma.stds.iter().enumerate() {
        let var_map: BTreeMap<Var, Var> = std
            .body
            .all_vars()
            .into_iter()
            .chain(
                std.head
                    .iter()
                    .flat_map(|a| a.args.iter().flat_map(|t| t.vars()).collect::<Vec<_>>()),
            )
            .map(|v| (v, Var::new(&format!("sg{i}_{}", v.name()))))
            .collect();
        let body = rename_funcs_formula(&std.body.rename_vars(&var_map), &func_renames);
        for atom in &std.head {
            let args: Vec<Term> = atom
                .args
                .iter()
                .map(|t| rename_funcs_term(&t.rename(&var_map), &func_renames))
                .collect();
            normal
                .entry(atom.rel)
                .or_default()
                .push((args, body.clone()));
        }
    }

    // Step 3: rewrite Δ bodies.
    let cq_inputs = sigma.has_cq_bodies() && delta.has_cq_bodies();
    let mut out_stds: Vec<SkStd> = Vec::new();
    let mut occurrence = 0usize;
    for dstd in &delta.stds {
        let body = dstd.body.rewrite_atoms(&mut |rel, args| {
            sigma.target.arity(rel)?;
            Some(beta_r(
                &normal,
                &sigma.source,
                rel,
                args,
                &mut occurrence,
                cq_inputs,
            ))
        });
        out_stds.push(SkStd::new(dstd.head.clone(), body));
    }

    // Step 4: CQ re-normalization.
    let mut cq_normalized = false;
    if cq_inputs {
        let mut renorm: Vec<SkStd> = Vec::new();
        for std in &out_stds {
            let ds = disjuncts(&std.body)?;
            for d in ds {
                renorm.push(SkStd::new(std.head.clone(), drop_exists(&d)));
            }
        }
        out_stds = renorm;
        cq_normalized = true;
    }

    Ok(Composition {
        mapping: SkMapping {
            source: sigma.source.clone(),
            target: delta.target.clone(),
            stds: out_stds,
        },
        sigma_func_renames: func_renames,
        cq_normalized,
    })
}

/// Build `β_R(args)` for one occurrence of `R(args)` in a `Δ` body.
fn beta_r(
    normal: &BTreeMap<RelSym, Vec<(Vec<Term>, Formula)>>,
    sigma_source: &Schema,
    rel: RelSym,
    args: &[Term],
    occurrence: &mut usize,
    cq_inputs: bool,
) -> Formula {
    let rules = match normal.get(&rel) {
        Some(r) => r,
        None => return Formula::False, // Σ never produces R: the atom is unsatisfiable.
    };
    let mut disjuncts_out = Vec::with_capacity(rules.len());
    for (u_j, phi_j) in rules {
        *occurrence += 1;
        let occ = *occurrence;
        // Freshen this occurrence's copy of the rule.
        let occ_map: BTreeMap<Var, Var> = phi_j
            .all_vars()
            .into_iter()
            .chain(u_j.iter().flat_map(|t| t.vars()))
            .map(|v| (v, Var::new(&format!("{}_o{occ}", v.name()))))
            .collect();
        let phi = phi_j.rename_vars(&occ_map);
        let u: Vec<Term> = u_j.iter().map(|t| t.rename(&occ_map)).collect();
        let zvars: Vec<Var> = phi.free_vars().into_iter().collect();

        // Guards: relativize unguarded quantified variables to adom(σ)
        // (skipped for CQ inputs, whose safe bodies confine variables
        // already — and whose class must be preserved).
        let mut conjuncts: Vec<Formula> = Vec::new();
        if !cq_inputs {
            let guarded = cq_guarded_vars(&phi);
            for (gi, z) in zvars.iter().enumerate() {
                if !guarded.contains(z) {
                    conjuncts.push(adom_formula(*z, sigma_source, occ * 100 + gi));
                }
            }
        }
        conjuncts.push(phi);
        for (a, u_i) in args.iter().zip(u.iter()) {
            conjuncts.push(Formula::Eq(a.clone(), u_i.clone()));
        }
        disjuncts_out.push(Formula::exists(zvars, Formula::and(conjuncts)));
    }
    Formula::or(disjuncts_out)
}

/// Variables guarded by a positive relational atom in a conjunctive
/// context.
fn cq_guarded_vars(f: &Formula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    fn go(f: &Formula, out: &mut BTreeSet<Var>) {
        match f {
            Formula::Atom(_, args) => {
                for t in args {
                    if let Term::Var(v) = t {
                        out.insert(*v);
                    }
                }
            }
            Formula::And(fs) => {
                for g in fs {
                    go(g, out);
                }
            }
            Formula::Exists(_, inner) => go(inner, out),
            _ => {}
        }
    }
    go(f, &mut out);
    out
}

/// `adom_σ(z)`: `z` occurs in some position of some source relation.
fn adom_formula(z: Var, schema: &Schema, uniq: usize) -> Formula {
    let mut disjuncts = Vec::new();
    for (rel, arity) in schema.iter() {
        for pos in 0..arity {
            let mut args = Vec::with_capacity(arity);
            let mut others = Vec::new();
            for k in 0..arity {
                if k == pos {
                    args.push(Term::Var(z));
                } else {
                    let w = Var::new(&format!("adw{uniq}_{pos}_{k}"));
                    others.push(w);
                    args.push(Term::Var(w));
                }
            }
            disjuncts.push(Formula::exists(others, Formula::Atom(rel, args)));
        }
    }
    Formula::or(disjuncts)
}

/// Distribute disjunction over conjunction and existential quantification,
/// returning the list of disjuncts (each free of `Or`).
fn disjuncts(f: &Formula) -> Result<Vec<Formula>, ComposeError> {
    let out = match f {
        Formula::Or(fs) => {
            let mut all = Vec::new();
            for g in fs {
                all.extend(disjuncts(g)?);
            }
            all
        }
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Formula>> = vec![Vec::new()];
            for g in fs {
                let gs = disjuncts(g)?;
                let mut next = Vec::with_capacity(acc.len() * gs.len());
                for prefix in &acc {
                    for d in &gs {
                        let mut row = prefix.clone();
                        row.push(d.clone());
                        next.push(row);
                    }
                    if next.len() > MAX_DISJUNCTS {
                        return Err(ComposeError::DisjunctExplosion {
                            disjuncts: next.len(),
                        });
                    }
                }
                acc = next;
            }
            acc.into_iter().map(Formula::and).collect()
        }
        Formula::Exists(vars, inner) => disjuncts(inner)?
            .into_iter()
            .map(|d| Formula::exists(vars.clone(), d))
            .collect(),
        other => vec![other.clone()],
    };
    if out.len() > MAX_DISJUNCTS {
        return Err(ComposeError::DisjunctExplosion {
            disjuncts: out.len(),
        });
    }
    Ok(out)
}

/// Remove every existential quantifier from a (disjunction-free) formula.
/// Sound for SkSTD bodies: invented values are function terms, so the
/// variables quantified here never feed head terms (the paper's final step
/// of Lemma 5).
fn drop_exists(f: &Formula) -> Formula {
    match f {
        Formula::Exists(_, inner) => drop_exists(inner),
        Formula::And(fs) => Formula::and(fs.iter().map(drop_exists)),
        other => other.clone(),
    }
}

fn rename_funcs_term(t: &Term, map: &BTreeMap<FuncSym, FuncSym>) -> Term {
    match t {
        Term::Var(_) | Term::Const(_) => t.clone(),
        Term::App(f, args) => Term::App(
            *map.get(f).unwrap_or(f),
            args.iter().map(|a| rename_funcs_term(a, map)).collect(),
        ),
    }
}

fn rename_funcs_formula(f: &Formula, map: &BTreeMap<FuncSym, FuncSym>) -> Formula {
    if map.is_empty() {
        return f.clone();
    }
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom(r, args) => {
            Formula::Atom(*r, args.iter().map(|t| rename_funcs_term(t, map)).collect())
        }
        Formula::Eq(a, b) => Formula::Eq(rename_funcs_term(a, map), rename_funcs_term(b, map)),
        Formula::Not(inner) => Formula::Not(Box::new(rename_funcs_formula(inner, map))),
        Formula::And(fs) => Formula::And(fs.iter().map(|g| rename_funcs_formula(g, map)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| rename_funcs_formula(g, map)).collect()),
        Formula::Exists(vars, inner) => {
            Formula::Exists(vars.clone(), Box::new(rename_funcs_formula(inner, map)))
        }
        Formula::Forall(vars, inner) => {
            Formula::Forall(vars.clone(), Box::new(rename_funcs_formula(inner, map)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skstd::SkMapping;
    use dx_logic::eval::FuncTable;
    use dx_relation::{Instance, Value};

    /// σ: employees → mid, Δ: mid → final; CQ all-open — the [FKP&T'05]
    /// setting. The composed mapping must be CQ again (Theorem 5(1)).
    #[test]
    fn cq_composition_stays_cq() {
        let sigma = SkMapping::parse("M(x:op, f(x, y):op) <- E(x, y)").unwrap();
        let delta = SkMapping::parse("F(x:op, g(x, z):op) <- M(x, z)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        assert!(comp.cq_normalized);
        assert!(comp.mapping.has_cq_bodies(), "CQ class preserved");
        assert_eq!(closure_class(&sigma, &delta), Some(ClosureClass::AllOpenCq));
        // One σ-rule per atom occurrence → exactly one composed rule.
        assert_eq!(comp.mapping.stds.len(), 1);
        // Γ's head is Δ's head (annotations preserved).
        assert_eq!(comp.mapping.stds[0].head, delta.stds[0].head);
    }

    /// Claim 7(b) verified concretely: Sol_H′^Γ(S) = Sol_G′^Δ(rel Sol_F′^Σ(S))
    /// for the all-closed case.
    #[test]
    fn claim7_solution_equality_all_closed() {
        let sigma = SkMapping::parse("M(x:cl, f(x):cl) <- E(x)").unwrap();
        let delta = SkMapping::parse("F(x:cl, y:cl, g(y):cl) <- M(x, y)").unwrap();
        assert_eq!(
            closure_class(&sigma, &delta),
            Some(ClosureClass::AllClosedFo)
        );
        let comp = compose_skstd(&sigma, &delta).unwrap();

        let mut s = Instance::new();
        s.insert_names("E", &["a"]);
        s.insert_names("E", &["b"]);

        // F′: f(a) = va, f(b) = vb.
        let mut ft = FuncTable::new();
        let f = FuncSym::new("f");
        ft.define(f, vec![Value::c("a")], Value::c("va"));
        ft.define(f, vec![Value::c("b")], Value::c("vb"));
        let j = sigma.sol(&s, &ft).rel_part();
        assert_eq!(j.tuple_count(), 2);

        // G′: g on the mid values.
        let mut gt = FuncTable::new();
        let g = FuncSym::new("g");
        gt.define(g, vec![Value::c("va")], Value::c("pa"));
        gt.define(g, vec![Value::c("vb")], Value::c("pb"));
        let expected = delta.sol(&j, &gt);

        // H′ = F′ ∪ G′ (with σ-renames applied; none needed here).
        let mut h = FuncTable::new();
        for ((sym, args), val) in ft.iter().map(|(k, v)| (k.clone(), *v)) {
            let renamed = *comp.sigma_func_renames.get(&sym).unwrap_or(&sym);
            h.define(renamed, args, val);
        }
        for ((sym, args), val) in gt.iter().map(|(k, v)| (k.clone(), *v)) {
            h.define(sym, args, val);
        }
        let got = comp.mapping.sol(&s, &h);
        assert_eq!(
            got, expected,
            "Claim 7(b): Sol_H′^Γ = Sol_G′^Δ ∘ rel ∘ Sol_F′^Σ"
        );
    }

    /// Colliding function symbols between Σ and Δ are renamed apart.
    #[test]
    fn function_collisions_renamed() {
        let sigma = SkMapping::parse("M(x:cl, f(x):cl) <- E(x)").unwrap();
        let delta = SkMapping::parse("F(x:cl, f(y):cl) <- M(x, y)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        assert_eq!(comp.sigma_func_renames.len(), 1);
        let renamed = comp.sigma_func_renames[&FuncSym::new("f")];
        assert_eq!(renamed.name(), "f__sg");
        // Both symbols appear in Γ.
        let funcs: BTreeSet<_> = comp
            .mapping
            .funcs()
            .into_iter()
            .map(|(f, _)| f.name())
            .collect();
        assert!(funcs.contains("f") && funcs.contains("f__sg"));
    }

    /// Multiple σ-rules for one relation produce a disjunction — and, in the
    /// CQ case, multiple composed rules.
    #[test]
    fn multiple_rules_multiply() {
        let sigma = SkMapping::parse("M(x:op, f(x):op) <- A(x); M(x:op, h(x):op) <- B(x)").unwrap();
        let delta = SkMapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        assert_eq!(comp.mapping.stds.len(), 2, "one per disjunct");
        // With two M-atoms in the Δ body: 2 × 2 = 4 composed rules.
        let delta2 = SkMapping::parse("F(x:op, w:op) <- M(x, y) & M(y, w)").unwrap();
        let comp2 = compose_skstd(&sigma, &delta2).unwrap();
        assert_eq!(comp2.mapping.stds.len(), 4);
    }

    /// FO Δ bodies (negation) survive composition un-normalized, and the
    /// adom-relativization keeps unsafe σ-variables guarded.
    #[test]
    fn fo_delta_body_composition() {
        let sigma = SkMapping::parse("M(x:cl, f(x):cl) <- E(x)").unwrap();
        let delta = SkMapping::parse("F(x:cl) <- exists y. M(x, y) & !exists z. M(z, x)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        assert!(!comp.cq_normalized);
        assert_eq!(comp.mapping.stds.len(), 1);
        // The composed body mentions only σ-relations and functions.
        for (rel, _) in comp.mapping.stds[0].body.relations() {
            assert!(
                sigma.source.contains(rel),
                "composed body leaked non-source relation {rel}"
            );
        }
    }

    /// Claim 7(b) with an FO (negated) σ-body: the adom relativization keeps
    /// the composed body's quantifiers aligned with Sol's active-domain
    /// evaluation.
    #[test]
    fn claim7_with_negated_sigma_body() {
        // Σ: M(f(x)) for every x in E that is NOT blocked.
        let sigma = SkMapping::parse("M(fneg(x):cl) <- E(x) & !Blocked(x)").unwrap();
        let delta = SkMapping::parse("F(y:cl) <- M(y)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        assert!(!comp.cq_normalized);

        let mut s = Instance::new();
        s.insert_names("E", &["a"]);
        s.insert_names("E", &["b"]);
        s.insert_names("Blocked", &["b"]);

        let mut ft = FuncTable::new();
        let f = FuncSym::new("fneg");
        ft.define(f, vec![Value::c("a")], Value::c("va"));
        ft.define(f, vec![Value::c("b")], Value::c("vb"));
        let j = sigma.sol(&s, &ft).rel_part();
        // Only a's image: b is blocked.
        assert_eq!(j.tuple_count(), 1);
        let expected = delta.sol(&j, &FuncTable::new());

        let mut h = FuncTable::new();
        for ((sym, args), val) in ft.iter().map(|(k, v)| (k.clone(), *v)) {
            let renamed = *comp.sigma_func_renames.get(&sym).unwrap_or(&sym);
            h.define(renamed, args, val);
        }
        let got = comp.mapping.sol(&s, &h);
        assert_eq!(got, expected, "negated σ-body composes faithfully");
    }

    /// A σ-body whose variable is guarded only by a negation gets the adom
    /// relativization (and still composes faithfully).
    #[test]
    fn unguarded_sigma_variable_gets_adom_guard() {
        // x appears only under negation: without the guard, the composed
        // body's quantifier would range past Σ's active domain. A second
        // rule gives the σ-schema a domain-supplying relation D.
        let sigma = SkMapping::parse("M(gneg(x):cl) <- !Blocked(x); K(y:cl) <- D(y)").unwrap();
        let delta = SkMapping::parse("F(y:cl) <- M(y)").unwrap();
        let comp = compose_skstd(&sigma, &delta).unwrap();
        // The composed body carries the adom disjunction: it mentions D even
        // though Δ never touched K.
        let body_rels: BTreeSet<_> = comp.mapping.stds[0]
            .body
            .relations()
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        assert!(body_rels.contains(&dx_relation::RelSym::new("Blocked")));
        assert!(body_rels.contains(&dx_relation::RelSym::new("D")));

        let mut s = Instance::new();
        s.insert_names("Blocked", &["b"]);
        s.insert_names("D", &["a"]);
        s.insert_names("D", &["b"]);
        let mut ft = FuncTable::new();
        let g = FuncSym::new("gneg");
        for c in ["a", "b"] {
            ft.define(g, vec![Value::c(c)], Value::c(&format!("v{c}")));
        }
        let j = sigma.sol(&s, &ft).rel_part();
        // Only a's image: b is blocked.
        assert_eq!(
            j.tuples(dx_relation::RelSym::new("M")).count(),
            1,
            "¬Blocked fires for a only (adom = {{a, b}})"
        );
        let expected = delta.sol(&j, &FuncTable::new());
        let mut h = FuncTable::new();
        for ((sym, args), val) in ft.iter().map(|(k, v)| (k.clone(), *v)) {
            let renamed = *comp.sigma_func_renames.get(&sym).unwrap_or(&sym);
            h.define(renamed, args, val);
        }
        let got = comp.mapping.sol(&s, &h);
        assert_eq!(got, expected);
    }

    /// Δ-atoms over relations Σ never produces rewrite to `false`.
    #[test]
    fn unproduced_relation_is_false() {
        let sigma = SkMapping::parse("M(x:cl) <- E(x)").unwrap();
        // N is in Σ's target? No — so Comp must reject at schema check.
        let delta = SkMapping::parse("F(x:cl) <- N(x)").unwrap();
        assert!(matches!(
            compose_skstd(&sigma, &delta),
            Err(ComposeError::SchemaMismatch(_))
        ));
    }

    /// Disjunct explosion is reported, not silently truncated.
    #[test]
    fn disjunct_budget_enforced() {
        // 13 σ-rules for M, Δ body with 4 M-atoms → 13^4 = 28561 > 4096.
        let mut sigma_rules = String::new();
        for i in 0..13 {
            sigma_rules.push_str(&format!("M(x:op, fx{i}(x):op) <- A{i}(x);"));
        }
        let sigma = SkMapping::parse(&sigma_rules).unwrap();
        let delta = SkMapping::parse("F(a:op) <- M(a, b) & M(b, c) & M(c, d) & M(d, e)").unwrap();
        assert!(matches!(
            compose_skstd(&sigma, &delta),
            Err(ComposeError::DisjunctExplosion { .. })
        ));
    }
}
