//! Certain answers `certain_Σα(Q, S)` and the `DEQA` problem (§4).
//!
//! By Corollary 2, `certain_Σα(Q, S) = □Q(CSol_A(S))` — certain answers over
//! one polynomial-time-computable annotated instance. The decision
//! procedures below therefore all *refute*: they search `Rep_A(CSol_A(S))`
//! for an instance falsifying `φ(t̄)`, with the witness space (and hence the
//! completeness guarantee) chosen per the paper's classification:
//!
//! | Query / mapping        | Procedure                              | Result |
//! |------------------------|----------------------------------------|--------|
//! | positive               | naive evaluation on `CSol(S)` (Prop 3) | exact, PTIME |
//! | monotone (e.g. CQ≠)    | valuation search over `Rep(CSol)` (Prop 4) | exact, coNP |
//! | `∀*∃*`                 | Prop 5's polynomial witness space      | exact, coNP |
//! | FO, `#op = 0`          | valuation search (Theorem 3(1))        | exact, coNP |
//! | FO, `#op = 1`          | bounded replication (Lemma 2)          | bounded* |
//! | FO, `#op > 1`          | bounded refutation (undecidable, Thm 3(3)) | bounded |
//!
//! \* complete for the budget `(qr(φ)+arity)·2ⁿ` externals per Lemma 2 —
//! available by passing an explicit [`SearchBudget`], astronomically
//! expensive by design (the problem is coNEXPTIME-complete).

use dx_chase::{canonical_solution, canonical_solution_via, ChaseStrategy, Mapping};
use dx_logic::classify::{self, QueryClass};
use dx_logic::Query;
use dx_query::{PlanCatalog, QueryEval};
use dx_relation::{ConstId, Instance, Relation, Tuple};
use dx_solver::{search_rep_a_indexed, Completeness, Leaf, SearchBudget};
use std::collections::BTreeSet;

/// Which decision procedure handled a certain-answer query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Regime {
    /// Proposition 3: naive evaluation on the canonical solution.
    NaivePositive,
    /// Proposition 4: valuation search over `Rep(CSol)` for monotone
    /// queries.
    Monotone,
    /// Proposition 5: the exact `∀*∃*` procedure.
    UniversalExistential,
    /// Theorem 3(1): the all-closed (CWA) coNP procedure.
    ClosedWorld,
    /// Theorem 3(2)/(3): bounded open-world refutation (`#op ≥ 1`).
    OpenBounded,
}

/// Outcome of a certain-answer decision.
#[derive(Clone, Debug)]
pub struct CertainOutcome {
    /// Is the tuple certainly in the answer (no counterexample found)?
    pub certain: bool,
    /// Whether a negative search exhausted the witness space.
    pub completeness: Completeness,
    /// The procedure used.
    pub regime: Regime,
    /// A counterexample instance (member of `Rep_A(CSol_A(S))` falsifying
    /// the query), when `certain == false`.
    pub counterexample: Option<Instance>,
    /// Candidate instances examined by the search (0 for the naive path).
    pub leaves: u64,
}

/// The data-exchange query-answering problem `DEQA(Σα, Q)` of §4, bundling a
/// mapping with a target query.
#[derive(Clone)]
pub struct Deqa {
    /// The annotated mapping `(σ, τ, Σα)`.
    pub mapping: Mapping,
    /// The target query `Q`.
    pub query: Query,
}

impl Deqa {
    /// Bundle a mapping and a query; panics if the query mentions relations
    /// outside the target schema.
    pub fn new(mapping: Mapping, query: Query) -> Self {
        for (rel, arity) in query.formula.relations() {
            assert_eq!(
                mapping.target.arity(rel),
                Some(arity),
                "query relation {rel}/{arity} not in the target schema"
            );
        }
        Deqa { mapping, query }
    }

    /// Decide `t̄ ∈ certain_Σα(Q, S)` with an automatically chosen budget.
    pub fn contains(&self, source: &Instance, tuple: &Tuple) -> CertainOutcome {
        certain_contains(&self.mapping, source, &self.query, tuple, None)
    }

    /// Decide with an explicit search budget for the open regimes.
    pub fn contains_with_budget(
        &self,
        source: &Instance,
        tuple: &Tuple,
        budget: &SearchBudget,
    ) -> CertainOutcome {
        certain_contains(&self.mapping, source, &self.query, tuple, Some(budget))
    }

    /// Compute the full certain-answer relation (candidates range over the
    /// source active domain and the query constants).
    pub fn answers(&self, source: &Instance) -> (Relation, Completeness) {
        certain_answers(&self.mapping, source, &self.query, None)
    }
}

/// Decide `t̄ ∈ certain_Σα(Q, S)`.
///
/// `budget` only affects the `OpenBounded` regime (`#op ≥ 1` with a full-FO
/// query); all other regimes use their theory-exact witness spaces.
pub fn certain_contains(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    let csol = canonical_solution(mapping, source);
    certain_contains_with(mapping, &csol, query, tuple, budget)
}

/// [`certain_contains`] with the exchange routed end to end through a
/// [`ChaseStrategy`] — the canonical solution's FO body evaluation runs on
/// the strategy's [`ChaseStrategy::body_eval`] engine (compiled plans for
/// `dx_engine::IndexedChase`, the tree walker for `dx_chase::NaiveChase`).
/// Results are identical across strategies (body evaluators must reproduce
/// the reference witness order).
pub fn certain_contains_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    let csol = canonical_solution_via(strategy.body_eval(), mapping, source);
    certain_contains_with(mapping, &csol, query, tuple, budget)
}

/// [`certain_contains`] against a precomputed canonical solution —
/// answer-set computations decide many tuples over the same `CSol_A(S)`.
pub fn certain_contains_with(
    mapping: &Mapping,
    csol: &dx_chase::CanonicalSolution,
    query: &Query,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    certain_contains_eval(
        mapping,
        csol,
        &ev,
        monotone_rigid(query, csol),
        tuple,
        budget,
    )
}

/// Is the query monotone **modulo rigid relations** of this canonical
/// solution (the Proposition 4 dispatch below, extended per
/// [`classify::rigid_relations_of`])? Depends only on `(query, csol)` —
/// answer-set loops compute it once, not per candidate tuple.
fn monotone_rigid(query: &Query, csol: &dx_chase::CanonicalSolution) -> bool {
    classify::is_monotone_rigid(
        &query.formula,
        &classify::rigid_relations_of(&query.formula, &csol.instance),
    )
}

/// The worker behind [`certain_contains_with`]: query evaluation (both the
/// Proposition 3 naive path and every `Rep_A` refutation check) runs on a
/// [`QueryEval`] drawn from the shared [`PlanCatalog`] — a `dx-query`
/// compiled plan when the formula is safe-range, the tree-walking oracle
/// otherwise. Refutation checks probe the search's incrementally
/// maintained index ([`Leaf::index`]); candidate instances are never
/// re-indexed.
fn certain_contains_eval(
    mapping: &Mapping,
    csol: &dx_chase::CanonicalSolution,
    ev: &QueryEval,
    monotone_rigid: bool,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    let query = ev.query();
    assert_eq!(tuple.arity(), query.arity(), "answer-tuple arity mismatch");
    assert!(tuple.is_ground(), "certain answers are tuples over Const");

    // Proposition 3: positive queries via naive evaluation — for any
    // annotation.
    if classify::is_positive(&query.formula) {
        let certain = ev.holds_on(&csol.rel_part(), tuple);
        return CertainOutcome {
            certain,
            completeness: Completeness::Exact,
            regime: Regime::NaivePositive,
            counterexample: None,
            leaves: 0,
        };
    }

    let query_consts: BTreeSet<ConstId> = query
        .formula
        .constants()
        .into_iter()
        .chain(tuple.consts())
        .collect();

    // Proposition 4: monotone queries — certain_Σα(Q,S) = □Q(CSol(S)),
    // decided by valuation search over Rep(CSol) (all-closed Rep_A). The
    // class is taken **modulo rigid relations** (ground, fully closed, no
    // all-open marker — their extension is pinned in every member, see
    // `dx_logic::classify::rigid_relations_of`): a negated atom over a
    // rigid relation never changes value as members grow, so a query that
    // is monotone apart from such atoms still has its minimal falsifiers
    // among the extras-free valuation images, and the image sweep stays
    // exact. With no rigid negations this is exactly Proposition 4.
    if monotone_rigid {
        let closed = csol.instance.reannotate_all_closed();
        let mut check = |leaf: &Leaf| !ev.holds_on_indexed(leaf.index(), leaf.instance(), tuple);
        let outcome = search_rep_a_indexed(
            &closed,
            &query_consts,
            &SearchBudget::closed_world(),
            &mut check,
        );
        return CertainOutcome {
            certain: outcome.witness.is_none(),
            completeness: outcome.completeness,
            regime: Regime::Monotone,
            counterexample: outcome.witness.map(|(i, _)| i),
            leaves: outcome.leaves,
        };
    }

    // Pick the witness space for the general case.
    let (search_budget, regime, exact) = match classify::classify(&query.formula) {
        QueryClass::UniversalExistential => {
            // Prop 5: β = ¬φ(t̄) is ∃^l ∀* with l = the number of universal
            // variables of φ (they become β's existential block); the
            // counterexample needs at most l·arity(τ) external constants.
            let l = classify::universal_var_count(&query.formula);
            let max_arity = mapping.target.max_arity().max(1);
            let mut prop5 = SearchBudget::universal_existential(l.max(1), max_arity);
            // The Prop 5 space is exhaustive but exponential in the extras
            // pool (every subset of the replicated tuples is a member), so a
            // certain tuple over a pool of n extras costs 2^n leaves. Honor
            // the caller's leaf cap — or the default cap when none is given —
            // and let the Capped completeness report the truncation.
            prop5.max_leaves = budget.map_or(SearchBudget::default().max_leaves, |b| b.max_leaves);
            (prop5, Regime::UniversalExistential, true)
        }
        _ if mapping.is_all_closed() => (SearchBudget::closed_world(), Regime::ClosedWorld, true),
        _ => (
            budget.cloned().unwrap_or_default(),
            Regime::OpenBounded,
            false,
        ),
    };
    // An explicit caller budget always wins (e.g. exhaustive Lemma 2 runs).
    let search_budget = match (budget, regime) {
        (Some(b), Regime::OpenBounded) => b.clone(),
        _ => search_budget,
    };

    let mut check = |leaf: &Leaf| !ev.holds_on_indexed(leaf.index(), leaf.instance(), tuple);
    let outcome = search_rep_a_indexed(&csol.instance, &query_consts, &search_budget, &mut check);
    let completeness = match (outcome.completeness, exact) {
        (Completeness::Capped, _) => Completeness::Capped,
        (_, true) => Completeness::Exact,
        (c, false) => c,
    };
    CertainOutcome {
        certain: outcome.witness.is_none(),
        completeness,
        regime,
        counterexample: outcome.witness.map(|(i, _)| i),
        leaves: outcome.leaves,
    }
}

/// Compute the certain-answer relation. Candidate tuples range over
/// `(adom(S) ∪ constants(Q))^arity`; by genericity no other constant can be
/// certain.
pub fn certain_answers(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    budget: Option<&SearchBudget>,
) -> (Relation, Completeness) {
    let csol = canonical_solution(mapping, source);
    certain_answers_with(mapping, &csol, source, query, budget)
}

/// [`certain_answers`] routed end to end through a [`ChaseStrategy`] (see
/// [`certain_contains_via`]).
pub fn certain_answers_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    budget: Option<&SearchBudget>,
) -> (Relation, Completeness) {
    let csol = canonical_solution_via(strategy.body_eval(), mapping, source);
    certain_answers_with(mapping, &csol, source, query, budget)
}

/// [`certain_answers`] against a precomputed canonical solution: the query
/// compiles once (via the shared [`PlanCatalog`]) and every candidate tuple
/// reuses the plan.
///
/// Fast path: for a *positive, safe-range* query one set-valued plan
/// execution replaces the per-candidate loop — the compiled answers are
/// domain independent, so membership of each candidate in the answer set
/// coincides with the per-tuple naive check (Proposition 3), and filtering
/// to the candidate palette keeps the result identical to the loop.
pub fn certain_answers_with(
    mapping: &Mapping,
    csol: &dx_chase::CanonicalSolution,
    source: &Instance,
    query: &Query,
    budget: Option<&SearchBudget>,
) -> (Relation, Completeness) {
    let mut candidates: BTreeSet<ConstId> = source.adom_consts();
    candidates.extend(query.formula.constants());
    let consts: Vec<ConstId> = candidates.into_iter().collect();
    let arity = query.arity();
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);

    if classify::is_positive(&query.formula) && ev.is_compiled() {
        let const_set: BTreeSet<ConstId> = consts.iter().copied().collect();
        let mut rel = Relation::new(arity);
        for t in ev.naive_certain_answers(&csol.rel_part()).iter() {
            if t.consts().all(|c| const_set.contains(&c)) {
                rel.insert(t.clone());
            }
        }
        // Boolean positive queries: the loop below would still probe the
        // single empty candidate; the set computation already covers it.
        return (rel, Completeness::Exact);
    }

    let mut rel = Relation::new(arity);
    let mut completeness = Completeness::Exact;
    let mono_rigid = monotone_rigid(query, csol);
    for tuple in candidate_tuples(&consts, arity) {
        let out = certain_contains_eval(mapping, csol, &ev, mono_rigid, &tuple, budget);
        if out.certain {
            rel.insert(tuple);
        }
        completeness = completeness.worse(out.completeness);
    }
    (rel, completeness)
}

/// All candidate answer tuples over the palette (`consts^arity`; the single
/// empty tuple for Boolean queries, none when a non-Boolean query meets an
/// empty palette). Shared by the certain-answer loop above and the regime
/// engines in [`crate::regimes`].
pub(crate) fn candidate_tuples(consts: &[ConstId], arity: usize) -> Vec<Tuple> {
    if arity == 0 {
        return vec![Tuple::new(Vec::new())];
    }
    if consts.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(consts.len().pow(arity as u32));
    let mut idx = vec![0usize; arity];
    loop {
        out.push(Tuple::from_consts(
            &idx.iter().map(|&i| consts[i]).collect::<Vec<_>>(),
        ));
        let mut carry = 0usize;
        loop {
            if carry == arity {
                return out;
            }
            idx[carry] += 1;
            if idx[carry] < consts.len() {
                break;
            }
            idx[carry] = 0;
            carry += 1;
        }
    }
}

/// Certain answers under the **1-to-m** reading of open nulls (the paper's
/// §6 extension): every open position may be instantiated by at most `m`
/// distinct values. For `m = 1` this coincides with the CWA; as `m` grows
/// the answers shrink towards the fully-open semantics. The witness space
/// is finite, so the decision is **exact** for every query class — "all the
/// complexity results about CWA mappings apply to this case" (§6).
pub fn certain_contains_one_to_m(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    m: usize,
) -> CertainOutcome {
    assert!(m >= 1, "1-to-m needs m ≥ 1");
    assert_eq!(tuple.arity(), query.arity(), "answer-tuple arity mismatch");
    let csol = canonical_solution(mapping, source);
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    // Positive queries: naive evaluation is still exact (Prop 3 holds for
    // every solution notion between CWA and OWA).
    if classify::is_positive(&query.formula) {
        let certain = ev.holds_on(&csol.rel_part(), tuple);
        return CertainOutcome {
            certain,
            completeness: Completeness::Exact,
            regime: Regime::NaivePositive,
            counterexample: None,
            leaves: 0,
        };
    }
    let query_consts: BTreeSet<ConstId> = query
        .formula
        .constants()
        .into_iter()
        .chain(tuple.consts())
        .collect();
    // Count the open templates of CSol_A (tuples with an open position and
    // all-open empty markers) — they bound the extra-tuple space.
    let open_templates: usize = csol
        .instance
        .relations()
        .map(|(_, rel)| {
            rel.iter().filter(|at| at.ann.count_open() > 0).count()
                + usize::from(rel.has_all_open_empty_mark())
        })
        .sum();
    let budget = SearchBudget::one_to_m(m, open_templates, mapping.target.max_arity());
    let mut check = |leaf: &Leaf| !ev.holds_on_indexed(leaf.index(), leaf.instance(), tuple);
    let outcome = search_rep_a_indexed(&csol.instance, &query_consts, &budget, &mut check);
    CertainOutcome {
        certain: outcome.witness.is_none(),
        completeness: match outcome.completeness {
            Completeness::Capped => Completeness::Capped,
            _ => Completeness::Exact,
        },
        regime: Regime::OpenBounded,
        counterexample: outcome.witness.map(|(i, _)| i),
        leaves: outcome.leaves,
    }
}

/// Positive-query certain answers in the presence of **target
/// dependencies** (§6 / [Hernich–Schweikardt'07]): chase `CSol_A(S)` with
/// the (weakly acyclic) dependencies, then evaluate naively on the chased
/// instance. Returns `None` when the chase fails (an egd clashes on
/// constants — no solution exists, so every tuple is vacuously certain) or
/// hits its step limit.
pub fn certain_positive_with_deps(
    mapping: &Mapping,
    deps: &[dx_chase::TargetDep],
    source: &Instance,
    query: &Query,
    max_steps: usize,
) -> Option<Relation> {
    certain_positive_with_deps_via(
        &dx_chase::NaiveChase,
        mapping,
        deps,
        source,
        query,
        max_steps,
    )
}

/// [`certain_positive_with_deps`] routed end to end through a
/// [`ChaseStrategy`]: the canonical solution's body evaluation, the
/// repairing chase *and* the final naive evaluation all run on the chosen
/// architecture (`dx_engine::IndexedChase` makes the whole pipeline
/// indexed). Chase results differ across strategies only up to homomorphic
/// equivalence, which preserves ground positive answers — so the returned
/// relation is strategy independent.
pub fn certain_positive_with_deps_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    deps: &[dx_chase::TargetDep],
    source: &Instance,
    query: &Query,
    max_steps: usize,
) -> Option<Relation> {
    assert!(
        classify::is_positive(&query.formula),
        "the chased-naive pipeline is exact for positive queries only"
    );
    let chased =
        dx_chase::canonical_solution_with_deps_via(strategy, mapping, deps, source, max_steps);
    match chased.outcome {
        dx_chase::ChaseOutcome::Satisfied => Some(
            PlanCatalog::shared()
                .eval_in(query, &mapping.target)
                .naive_certain_answers(&chased.instance.rel_part()),
        ),
        _ => None,
    }
}

/// The dual of certain answers: is `t̄` a **possible** answer — in `Q(R)`
/// for at least one `R ∈ ⟦S⟧_Σα`? Decided by direct witness search over
/// the same `Rep_A(CSol_A(S))` space the certain-answer engines refute
/// over; a positive answer is always definitive, a negative one carries
/// the search's completeness (possibility is NP-hard in the same regimes
/// where certainty is coNP-hard).
pub fn possible_contains(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    assert_eq!(tuple.arity(), query.arity(), "answer-tuple arity mismatch");
    assert!(tuple.is_ground(), "possible answers are tuples over Const");
    let csol = canonical_solution(mapping, source);
    let query_consts: BTreeSet<ConstId> = query
        .formula
        .constants()
        .into_iter()
        .chain(tuple.consts())
        .collect();
    let search_budget = if mapping.is_all_closed() {
        SearchBudget::closed_world()
    } else {
        budget.cloned().unwrap_or_default()
    };
    let ev = PlanCatalog::shared().eval_in(query, &mapping.target);
    let mut check = |leaf: &Leaf| ev.holds_on_indexed(leaf.index(), leaf.instance(), tuple);
    let outcome = search_rep_a_indexed(&csol.instance, &query_consts, &search_budget, &mut check);
    CertainOutcome {
        certain: outcome.witness.is_some(),
        completeness: if mapping.is_all_closed() && outcome.completeness != Completeness::Capped {
            Completeness::Exact
        } else {
            outcome.completeness
        },
        regime: if mapping.is_all_closed() {
            Regime::ClosedWorld
        } else {
            Regime::OpenBounded
        },
        counterexample: outcome.witness.map(|(i, _)| i),
        leaves: outcome.leaves,
    }
}

/// Certain answers under the pure OWA reading (`Σop`) — Proposition 2's
/// first extreme.
pub fn certain_owa(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    certain_contains(&mapping.all_open(), source, query, tuple, budget)
}

/// Certain answers under the pure CWA reading (`Σcl`) — Proposition 2's
/// second extreme.
pub fn certain_cwa(
    mapping: &Mapping,
    source: &Instance,
    query: &Query,
    tuple: &Tuple,
) -> CertainOutcome {
    certain_contains(&mapping.all_closed(), source, query, tuple, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::{Formula, Term};
    use dx_relation::{Value, Var};

    fn papers_source() -> Instance {
        let mut s = Instance::new();
        s.insert_names("Papers", &["p1", "title1"]);
        s.insert_names("Papers", &["p2", "title2"]);
        s
    }

    /// The paper's §1 anomaly: "does every paper have exactly one author?"
    /// Under the CWA the certain answer is (counterintuitively) TRUE; with
    /// the author attribute opened it becomes FALSE.
    #[test]
    fn one_author_anomaly() {
        let one_author = Query::boolean(
            dx_logic::parse_formula(
                "forall p a1 a2. (Submissions(p, a1) & Submissions(p, a2) -> a1 = a2)",
            )
            .unwrap(),
        );
        let empty = Tuple::new(Vec::<Value>::new());

        // CWA: paper# and author both closed.
        let cwa = Mapping::parse("Submissions(x:cl, z:cl) <- Papers(x, y)").unwrap();
        let out = certain_contains(&cwa, &papers_source(), &one_author, &empty, None);
        assert!(out.certain, "CWA certain answer is true (the anomaly)");
        assert_eq!(out.regime, Regime::UniversalExistential);
        assert_eq!(out.completeness, Completeness::Exact);

        // Mixed: author open — replication gives a paper two authors.
        let mixed = Mapping::parse("Submissions(x:cl, z:op) <- Papers(x, y)").unwrap();
        let out = certain_contains(&mixed, &papers_source(), &one_author, &empty, None);
        assert!(!out.certain, "open author attribute defeats the anomaly");
        let cex = out.counterexample.expect("counterexample produced");
        // The counterexample is a genuine Rep_A member with a two-author paper.
        assert!(!one_author.holds_boolean(&cex));
    }

    /// Proposition 3: positive queries — naive evaluation, any annotation.
    #[test]
    fn positive_queries_use_naive_evaluation() {
        let q = Query::new(
            vec![Var::new("x")],
            dx_logic::parse_formula("exists z. Submissions(x, z)").unwrap(),
        );
        for rules in [
            "Submissions(x:cl, z:cl) <- Papers(x, y)",
            "Submissions(x:cl, z:op) <- Papers(x, y)",
            "Submissions(x:op, z:op) <- Papers(x, y)",
        ] {
            let m = Mapping::parse(rules).unwrap();
            let out = certain_contains(&m, &papers_source(), &q, &Tuple::from_names(&["p1"]), None);
            assert!(out.certain, "p1 has a submission under {rules}");
            assert_eq!(out.regime, Regime::NaivePositive);
            let out2 = certain_contains(
                &m,
                &papers_source(),
                &q,
                &Tuple::from_names(&["nope"]),
                None,
            );
            assert!(!out2.certain);
        }
    }

    /// Certain answers of a copying mapping with a negative query: the CWA
    /// answers definitely, the OWA cannot (certain answer false since
    /// arbitrary tuples may be added).
    #[test]
    fn copying_negation_cwa_vs_owa() {
        let q = Query::boolean(dx_logic::parse_formula("!exists x. Ep(x, 'c1')").unwrap());
        let m = Mapping::parse("Ep(x:cl, y:cl) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let empty = Tuple::new(Vec::<Value>::new());
        // CWA: the target is exactly a copy, so no (·, c1) tuple exists.
        let out = certain_contains(&m, &s, &q, &empty, None);
        assert!(out.certain);
        // OWA: solutions may contain (x, c1) — not certain.
        let out = certain_contains(&m.all_open(), &s, &q, &empty, None);
        assert!(!out.certain);
    }

    /// Proposition 4: a CQ with an inequality is monotone; its certain
    /// answers reduce to □Q(CSol) — and nulls make a difference.
    #[test]
    fn monotone_inequality_query() {
        // Q(x): exists y z. R(x,y) & R(x,z) & y != z — "x has two values".
        let q = Query::new(
            vec![Var::new("x")],
            dx_logic::parse_formula("exists y z. R(x, y) & R(x, z) & y != z").unwrap(),
        );
        // Source with two facts for a (distinct constants) and one for b.
        let m = Mapping::parse("R(x:cl, y:cl) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "v1"]);
        s.insert_names("E", &["a", "v2"]);
        s.insert_names("E", &["b", "w"]);
        let out = certain_contains(&m, &s, &q, &Tuple::from_names(&["a"]), None);
        assert!(out.certain, "copied constants v1 ≠ v2 are certain");
        assert_eq!(out.regime, Regime::Monotone);
        // With nulls: R(x, z) :- E(x, y) creates two nulls for a, but a
        // valuation may merge them, so 'a' is NOT certain.
        let m2 = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
        let out2 = certain_contains(&m2, &s, &q, &Tuple::from_names(&["a"]), None);
        assert!(!out2.certain, "nulls may collapse to one value");
    }

    /// Theorem 3(1): #op = 0 with a full-FO query — exact coNP decision.
    #[test]
    fn closed_world_full_fo_exact() {
        // Q: exists x y. Ep(x,y) & forall u v. (Ep(u,v) -> u = x) —
        // "all edges share one source" (not prenex ∀*∃*: full FO).
        let q = Query::boolean(
            dx_logic::parse_formula("exists x y. (Ep(x, y) & forall u v. (Ep(u, v) -> u = x))")
                .unwrap(),
        );
        let m = Mapping::parse("Ep(x:cl, z:cl) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "1"]);
        s.insert_names("E", &["a", "2"]);
        let empty = Tuple::new(Vec::<Value>::new());
        let out = certain_contains(&m, &s, &q, &empty, None);
        assert!(out.certain);
        assert_eq!(out.regime, Regime::ClosedWorld);
        assert_eq!(out.completeness, Completeness::Exact);
        // Two distinct sources: false.
        s.insert_names("E", &["b", "3"]);
        let out2 = certain_contains(&m, &s, &q, &empty, None);
        assert!(!out2.certain);
    }

    /// #op = 1 with a full-FO query: the bounded regime reports its
    /// completeness honestly.
    #[test]
    fn open_regime_reports_bounded() {
        let q = Query::boolean(
            dx_logic::parse_formula("exists x y. (R(x, y) & forall u v. (R(u, v) -> v = y))")
                .unwrap(),
        );
        let m = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let empty = Tuple::new(Vec::<Value>::new());
        let out = certain_contains(&m, &s, &q, &empty, None);
        assert_eq!(out.regime, Regime::OpenBounded);
        // Replication refutes the query: two R-tuples with different seconds.
        assert!(!out.certain);
    }

    /// Full certain-answer relation on the conference example.
    #[test]
    fn certain_answer_sets() {
        let m = Mapping::parse("Submissions(x:cl, z:op) <- Papers(x, y)").unwrap();
        let q = Query::new(
            vec![Var::new("x")],
            Formula::exists(
                vec![Var::new("z")],
                Formula::atom("Submissions", vec![Term::var("x"), Term::var("z")]),
            ),
        );
        let (rel, comp) = certain_answers(&m, &papers_source(), &q, None);
        assert_eq!(comp, Completeness::Exact);
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&Tuple::from_names(&["p1"])));
        assert!(rel.contains(&Tuple::from_names(&["p2"])));
    }

    /// Possible answers: certain ⇒ possible; a dropped attribute's value
    /// is possible but not certain; an unproducible value is neither.
    #[test]
    fn possible_answers_bracket_certain() {
        let m = Mapping::parse("Sub2(x:cl, z:cl) <- Papers(x, y)").unwrap();
        let q = Query::parse(&["a"], "exists p. Sub2(p, a)").unwrap();
        let s = papers_source();
        // "alice" is a possible author (the null can be valued to it)...
        let possible = possible_contains(&m, &s, &q, &Tuple::from_names(&["alice"]), None);
        assert!(possible.certain, "possible witness exists");
        assert_eq!(possible.completeness, Completeness::Exact);
        // ...but not a certain one.
        let certain = certain_contains(&m, &s, &q, &Tuple::from_names(&["alice"]), None);
        assert!(!certain.certain);
        // A paper id in the first column IS certain — and hence possible.
        let q_keys = Query::parse(&["p"], "exists a. Sub2(p, a)").unwrap();
        let t = Tuple::from_names(&["p1"]);
        assert!(certain_contains(&m, &s, &q_keys, &t, None).certain);
        assert!(possible_contains(&m, &s, &q_keys, &t, None).certain);
        // An id never exchanged is not even possible (closed key column).
        let bad = Tuple::from_names(&["ghost"]);
        let out = possible_contains(&m, &s, &q_keys, &bad, None);
        assert!(!out.certain);
        assert_eq!(out.completeness, Completeness::Exact);
    }

    /// Proposition 2 sanity: certain_Σop ⊆ certain_Σα ⊆ certain_Σcl on a
    /// query where they differ.
    #[test]
    fn certain_monotone_in_annotation() {
        let q = Query::boolean(
            dx_logic::parse_formula(
                "forall p a1 a2. (Submissions(p, a1) & Submissions(p, a2) -> a1 = a2)",
            )
            .unwrap(),
        );
        let empty = Tuple::new(Vec::<Value>::new());
        let mixed = Mapping::parse("Submissions(x:cl, z:op) <- Papers(x, y)").unwrap();
        let s = papers_source();
        let owa = certain_owa(&mixed, &s, &q, &empty, None).certain;
        let mid = certain_contains(&mixed, &s, &q, &empty, None).certain;
        let cwa = certain_cwa(&mixed, &s, &q, &empty).certain;
        assert!(!owa && !mid && cwa);
        // Inclusions: owa ⇒ mid ⇒ cwa.
        assert!(!owa || mid);
        assert!(!mid || cwa);
    }
}
