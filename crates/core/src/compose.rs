//! Semantic composition of annotated mappings (§5, Theorem 4, Table 1).
//!
//! `Σα ∘ Δα′ = {(S, W) | ∃J : J ∈ ⟦S⟧_Σα and W ∈ ⟦J⟧_Δα′}` — the
//! composition of the binary relations the two mappings denote, restricted
//! to instances over `Const` exactly as in [FKP&T'05] and §5.
//!
//! The decision procedure enumerates intermediate instances
//! `J ∈ Rep_A(CSol_A^Σα(S))` and checks `W ∈ ⟦J⟧_Δα′`, with the witness
//! space chosen per Table 1:
//!
//! * `Δ` monotone with all-open annotation — Lemma 3 / Corollary 4: only the
//!   *minimal* intermediates `J = v(CSol(S))` need checking (NP, exact, for
//!   any `Σα`);
//! * `#op(Σα) = 0` — `⟦S⟧_Σα` is exactly the valuation images (NP, exact);
//! * `#op(Σα) ≥ 1` — bounded open-position replication (NEXPTIME-complete
//!   at `#op = 1`, undecidable beyond; answers carry their completeness).

use crate::semantics;
use dx_chase::{canonical_solution_via, is_owa_solution, ChaseStrategy, Mapping, NaiveChase};
use dx_relation::{AnnInstance, AnnTuple, Annotation, ConstId, Instance, Tuple};
use dx_solver::{search_rep_a_indexed, Completeness, Leaf, SearchBudget};
use std::collections::BTreeSet;

/// Which path decided a composition query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompPath {
    /// Lemma 3 / Corollary 4: minimal intermediates suffice (`Δ` monotone,
    /// all-open).
    MonotoneOpen,
    /// Theorem 4, `#op(Σα) = 0`: valuation images are the whole semantics.
    ClosedIntermediate,
    /// The §6 remark: `Δ` with existential bodies — a witness intermediate
    /// can be restricted to `adom(v(CSol)) ∪ adom(W) ∪ consts(Δ)`, so the
    /// zero-external-constant search is exhaustive (NP for every
    /// annotation).
    ExistentialDelta,
    /// Theorem 4, `#op(Σα) ≥ 1`: bounded enumeration of intermediates.
    BoundedIntermediate,
}

/// Outcome of a composition-membership query.
#[derive(Clone, Debug)]
pub struct CompOutcome {
    /// Is `(S, W)` in `Σα ∘ Δα′` (within the explored space)?
    pub member: bool,
    /// Completeness of a negative answer.
    pub completeness: Completeness,
    /// The path taken.
    pub path: CompPath,
    /// A witnessing intermediate instance `J`, when `member`.
    pub intermediate: Option<Instance>,
    /// Intermediate instances examined.
    pub leaves: u64,
}

/// Decide `(S, W) ∈ Σα ∘ Δα′` — the problem `Comp(Σα, Δα′)` of §5.
///
/// `budget` only affects the `#op(Σα) ≥ 1` regime.
pub fn comp_membership(
    sigma: &Mapping,
    delta: &Mapping,
    source: &Instance,
    w: &Instance,
    budget: Option<&SearchBudget>,
) -> CompOutcome {
    comp_membership_via(&NaiveChase, sigma, delta, source, w, budget)
}

/// [`comp_membership`] routed end to end through a [`ChaseStrategy`]: both
/// the `Σ`-side canonical solution and every per-intermediate `Δ`
/// membership check evaluate their FO bodies on the strategy's engine
/// (compiled plans for `dx_engine::IndexedChase`). The verdict is strategy
/// independent.
pub fn comp_membership_via(
    strategy: &dyn ChaseStrategy,
    sigma: &Mapping,
    delta: &Mapping,
    source: &Instance,
    w: &Instance,
    budget: Option<&SearchBudget>,
) -> CompOutcome {
    assert!(source.is_ground() && w.is_ground(), "instances over Const");
    // Δ's source vocabulary must live in Σ's target.
    for std in &delta.stds {
        for (rel, arity) in std.body.relations() {
            assert_eq!(
                sigma.target.arity(rel),
                Some(arity),
                "Δ body relation {rel} not produced by Σ"
            );
        }
    }

    let csol = canonical_solution_via(strategy.body_eval(), sigma, source);

    // Constants the intermediate may need: everything W or Δ can "see".
    let mut extra: BTreeSet<ConstId> = w.adom_consts();
    for std in &delta.stds {
        extra.extend(std.body.constants());
    }

    // Lemma 3 fast path: Δ monotone + all-open ⇒ minimal intermediates
    // (valuation images of CSol) suffice, regardless of Σ's annotation.
    if delta.has_monotone_bodies() && delta.is_all_open() {
        // Copy-like Δ (single-atom bodies, frontier-only heads): the whole
        // condition "∃v: (v(CSol), W) ⊨ Δ" collapses to embedding the
        // Δ-image of CSol into W — a pruned CSP instead of leaf-checked
        // valuation enumeration.
        if let Some(pre) = delta_preimage(delta, &csol.rel_part()) {
            let v = dx_solver::find_embedding_valuation(&pre, w);
            let intermediate = v.map(|mut val| {
                // Nulls Δ never looks at are unconstrained; ground them so
                // the reported intermediate is a Const-instance.
                for n in csol.instance.nulls() {
                    if !val.is_defined(n) {
                        val.set(n, ConstId::new("⋆free"));
                    }
                }
                csol.rel_part().apply(&val)
            });
            return CompOutcome {
                member: intermediate.is_some(),
                completeness: Completeness::Exact,
                path: CompPath::MonotoneOpen,
                intermediate,
                leaves: 1,
            };
        }
        let closed = all_closed_view(&csol.instance);
        let mut check = |leaf: &Leaf| is_owa_solution(delta, leaf.instance(), w);
        let out = search_rep_a_indexed(&closed, &extra, &SearchBudget::closed_world(), &mut check);
        return CompOutcome {
            member: out.witness.is_some(),
            completeness: Completeness::Exact,
            path: CompPath::MonotoneOpen,
            intermediate: out.witness.map(|(j, _)| j),
            leaves: out.leaves,
        };
    }

    let (search_budget, path, exact) = if sigma.is_all_closed() {
        (
            SearchBudget::closed_world(),
            CompPath::ClosedIntermediate,
            true,
        )
    } else if let Some(b) = budget {
        // An explicit caller budget always wins (callers that want the
        // exhaustive existential-Δ space can pass None or build it via
        // SearchBudget::existential_delta themselves).
        (b.clone(), CompPath::BoundedIntermediate, false)
    } else if delta
        .stds
        .iter()
        .all(|std| dx_logic::classify::is_existential(&std.body))
    {
        // §6 remark: existential Δ-bodies — a witness J shrinks to the
        // values of `v(CSol) ∪ adom(W) ∪ consts(Δ)` plus the values of one
        // kept supporting body-match per W-tuple (restriction preserves
        // positive atoms of kept matches, only improves negated atoms, and
        // removes — never adds — obligations). That is ≤ |W| · (Δ body
        // variables) external values, realizable as canonical fresh
        // constants by genericity: NP, exact, for every annotation of Σ.
        let max_body_vars = delta
            .stds
            .iter()
            .map(|std| std.body.all_vars().len())
            .max()
            .unwrap_or(0);
        (
            SearchBudget::existential_delta(w.tuple_count(), max_body_vars),
            CompPath::ExistentialDelta,
            true,
        )
    } else {
        (
            budget.cloned().unwrap_or_default(),
            CompPath::BoundedIntermediate,
            false,
        )
    };

    // The per-intermediate membership check chases `J` as a source, so it
    // consumes the materialized instance view (maintained in lock-step with
    // the index — no per-leaf clone).
    let mut check = |leaf: &Leaf| semantics::is_member_via(strategy, delta, leaf.instance(), w);
    let out = search_rep_a_indexed(&csol.instance, &extra, &search_budget, &mut check);
    let completeness = match (out.completeness, exact) {
        (Completeness::Capped, _) => Completeness::Capped,
        (_, true) => Completeness::Exact,
        (c, false) => c,
    };
    CompOutcome {
        member: out.witness.is_some(),
        completeness,
        path,
        intermediate: out.witness.map(|(j, _)| j),
        leaves: out.leaves,
    }
}

/// For *copy-like* Δ (every STD has a single positive-atom body with
/// variable-only arguments, and head atoms using only body variables),
/// compute the Δ-image of the (null-carrying) intermediate `j`: the exact
/// set of head tuples `(J, W) |= Δ` requires in `W`, with `j`'s nulls
/// flowing through. Returns `None` when Δ is not copy-like.
///
/// Soundness of the fast path: for a single-atom body, the matches of the
/// body over `v(J)` are exactly the `v`-images of the matches over `J`
/// (no null-merging can create new single-atom matches — merging only
/// collapses tuples), so `(v(J), W) |= Δ  ⟺  v(pre) ⊆ W`.
fn delta_preimage(delta: &Mapping, j: &Instance) -> Option<Instance> {
    use dx_logic::{Formula, Term};
    let mut pre = Instance::new();
    for std in &delta.stds {
        // Single positive atom body with *distinct* variable arguments.
        // (A repeated variable, e.g. M(x, x), matches more tuples once a
        // valuation merges nulls — the naive preimage would under-apply Δ.)
        let (body_rel, body_args) = match &std.body {
            Formula::Atom(r, args)
                if args.iter().all(|t| matches!(t, Term::Var(_)))
                    && args.iter().collect::<std::collections::BTreeSet<_>>().len()
                        == args.len() =>
            {
                (*r, args)
            }
            _ => return None,
        };
        // Heads: variables drawn from the body only (no existential nulls —
        // those would need fresh nulls per witness; keep the fast path
        // simple and fall back otherwise).
        if !std.existential_vars().is_empty() {
            return None;
        }
        let positions: std::collections::BTreeMap<dx_relation::Var, usize> = body_args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().map(|v| (v, i)))
            .collect();
        for atom in &std.head {
            for tuple in j.tuples(body_rel) {
                let vals: Vec<dx_relation::Value> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => tuple.get(positions[v]),
                        Term::Const(c) => dx_relation::Value::Const(*c),
                        Term::App(_, _) => unreachable!("plain STDs are function-free"),
                    })
                    .collect();
                pre.insert(atom.rel, Tuple::new(vals));
            }
            // Repeated body variables would make the single-atom match
            // conditional; they are fine (they only filter j's tuples).
        }
    }
    Some(pre)
}

/// View an annotated instance with every annotation closed (so `Rep_A`
/// degenerates to `Rep(rel(T))` — Lemma 1).
fn all_closed_view(t: &AnnInstance) -> AnnInstance {
    let mut out = AnnInstance::new();
    for (r, rel) in t.relations() {
        for at in rel.iter() {
            out.insert(
                r,
                AnnTuple::new(at.tuple.clone(), Annotation::all_closed(at.tuple.arity())),
            );
        }
        for m in rel.empty_marks() {
            out.insert_empty_mark(r, Annotation::all_closed(m.arity()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-hop copy: σ {E} → τ {M} → ω {F}. Under all-CWA the composition
    /// is exactly "F is a copy of E".
    #[test]
    fn closed_copy_chain() {
        let sigma = Mapping::parse("M(x:cl, y:cl) <- E(x, y)").unwrap();
        let delta = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let mut w = Instance::new();
        w.insert_names("F", &["a", "b"]);
        let out = comp_membership(&sigma, &delta, &s, &w, None);
        assert!(out.member);
        assert_eq!(out.path, CompPath::ClosedIntermediate);
        assert_eq!(out.completeness, Completeness::Exact);
        // Extra tuple: rejected under CWA end-to-end.
        let mut w2 = w.clone();
        w2.insert_names("F", &["p", "q"]);
        assert!(!comp_membership(&sigma, &delta, &s, &w2, None).member);
    }

    /// Monotone all-open Δ takes the Lemma 3 fast path, and supersets are
    /// members.
    #[test]
    fn monotone_open_fast_path() {
        let sigma = Mapping::parse("M(x:cl, z:cl) <- E(x, y)").unwrap();
        let delta = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        // W must contain (a, c) for some c — the null's value is free.
        let mut w = Instance::new();
        w.insert_names("F", &["a", "anything"]);
        w.insert_names("F", &["extra", "junk"]);
        let out = comp_membership(&sigma, &delta, &s, &w, None);
        assert!(out.member);
        assert_eq!(out.path, CompPath::MonotoneOpen);
        // But W without any a-tuple is not a member.
        let mut w2 = Instance::new();
        w2.insert_names("F", &["b", "c"]);
        assert!(!comp_membership(&sigma, &delta, &s, &w2, None).member);
    }

    /// The null introduced by Σ flows through Δ: the composition constrains
    /// W to use ONE shared value where the intermediate had one null
    /// (the essence of the Proposition 6 gadget).
    #[test]
    fn shared_null_rectangle() {
        // Σ: N(z) :- R(x); C(x:cl) :- P(x)   (z existential: one null)
        let sigma = Mapping::parse("N(z:cl) <- R(x); C(x:cl) <- P(x)").unwrap();
        // Δ: D(x,y) :- C(x) & N(y)
        let delta = Mapping::parse("D(x:cl, y:cl) <- C(x) & N(y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("R", &["0"]);
        s.insert_names("P", &["1"]);
        s.insert_names("P", &["2"]);
        // Shared value: member.
        let mut w_good = Instance::new();
        w_good.insert_names("D", &["1", "c"]);
        w_good.insert_names("D", &["2", "c"]);
        assert!(comp_membership(&sigma, &delta, &s, &w_good, None).member);
        // Distinct values: not a member (no single valuation of the N-null).
        let mut w_bad = Instance::new();
        w_bad.insert_names("D", &["1", "c1"]);
        w_bad.insert_names("D", &["2", "c2"]);
        assert!(!comp_membership(&sigma, &delta, &s, &w_bad, None).member);
    }

    /// #op(Σ) = 1: open intermediates can be replicated, changing the
    /// verdict relative to the all-closed annotation.
    #[test]
    fn open_intermediate_replication() {
        // Σ: M(x:cl, z:op) :- E(x);  Δ: F(x:cl,y:cl) :- M(x, y) (all-closed Δ).
        let sigma_open = Mapping::parse("M(x:cl, z:op) <- E(x)").unwrap();
        let sigma_closed = sigma_open.all_closed();
        let delta = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a"]);
        // W with two F-tuples for a: needs an intermediate with two M-tuples.
        let mut w = Instance::new();
        w.insert_names("F", &["a", "v1"]);
        w.insert_names("F", &["a", "v2"]);
        let open_out = comp_membership(&sigma_open, &delta, &s, &w, None);
        assert!(open_out.member, "open annotation lets M replicate");
        // Δ's body is a single atom — existential — so the §6 NP fast path
        // applies even though #op(Σ) = 1.
        assert_eq!(open_out.path, CompPath::ExistentialDelta);
        assert_eq!(open_out.completeness, Completeness::Exact);
        let closed_out = comp_membership(&sigma_closed, &delta, &s, &w, None);
        assert!(!closed_out.member, "closed annotation forbids replication");
        assert_eq!(closed_out.completeness, Completeness::Exact);
    }

    /// The §6 remark end to end: existential Δ-bodies (with a negated atom)
    /// keep composition exact for open Σ — both the member and the
    /// non-member verdicts are definitive.
    #[test]
    fn existential_delta_exact_for_open_sigma() {
        let sigma = Mapping::parse("M(x:cl, z:op) <- E(x); Blocked(b:cl) <- BadSrc(b)").unwrap();
        // Existential body with safe negation: ∃y (M(x,y) ∧ ¬Blocked(y)).
        let delta = Mapping::parse("F(x:cl) <- M(x, y) & !Blocked(y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a"]);
        s.insert_names("BadSrc", &["q"]);
        // W = {F(a)}: member — value the open null to something unblocked.
        let mut w = Instance::new();
        w.insert_names("F", &["a"]);
        let out = comp_membership(&sigma, &delta, &s, &w, None);
        assert!(out.member);
        assert_eq!(out.path, CompPath::ExistentialDelta);
        // W = {F(a), F(zzz)}: zzz is never produced by Σ — definitively out.
        let mut w_bad = w.clone();
        w_bad.insert_names("F", &["zzz"]);
        let out_bad = comp_membership(&sigma, &delta, &s, &w_bad, None);
        assert!(!out_bad.member);
        assert_eq!(out_bad.completeness, Completeness::Exact, "no hedging");
    }

    /// Regression for the existential-Δ witness bound: when Σ creates no
    /// nulls (it copies with an open position) and Δ's negation blocks
    /// every already-mentioned value, the witness needs a *fresh* value at
    /// an open position — only the `|W| · vars(Δ)` external-constant
    /// allowance finds it.
    #[test]
    fn existential_delta_needs_external_values() {
        let sigma = Mapping::parse("M(x:cl, y:op) <- E(x, y); G(w:cl) <- H(w)").unwrap();
        let delta = Mapping::parse("F(x:cl) <- M(x, y) & !G(y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        // G blocks BOTH palette values a and b.
        s.insert_names("H", &["a"]);
        s.insert_names("H", &["b"]);
        let mut w = Instance::new();
        w.insert_names("F", &["a"]);
        let out = comp_membership(&sigma, &delta, &s, &w, None);
        assert_eq!(out.path, CompPath::ExistentialDelta);
        assert!(
            out.member,
            "J = {{M(a,b), M(a,fresh), G(a), G(b)}} witnesses membership"
        );
        // And the fresh value really is external: the witnessing
        // intermediate contains a constant outside adom(S) ∪ adom(W).
        let j = out.intermediate.expect("witness");
        let known: BTreeSet<ConstId> = s.adom_consts().union(&w.adom_consts()).copied().collect();
        assert!(j.adom_consts().iter().any(|c| !known.contains(c)));
    }

    /// A non-existential Δ (∀ in NNF) with an open Σ still lands in the
    /// bounded regime.
    #[test]
    fn universal_delta_stays_bounded() {
        let sigma = Mapping::parse("M(x:cl, z:op) <- E(x)").unwrap();
        let delta =
            Mapping::parse("AllSame(x:cl) <- M(x, y) & !exists u. !exists w. M(u, w)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a"]);
        let w = Instance::new();
        let out = comp_membership(&sigma, &delta, &s, &w, None);
        assert_eq!(out.path, CompPath::BoundedIntermediate);
    }

    /// Composition with FO (negation) in Δ's bodies.
    #[test]
    fn fo_delta_bodies() {
        let sigma = Mapping::parse("M(x:cl, y:cl) <- E(x, y)").unwrap();
        // Δ copies M-sources that have no outgoing M-edge from their target.
        let delta = Mapping::parse("Sink(x:cl) <- M(y, x) & !exists z. M(x, z)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        s.insert_names("E", &["b", "c"]);
        let mut w = Instance::new();
        w.insert_names("Sink", &["c"]);
        assert!(comp_membership(&sigma, &delta, &s, &w, None).member);
        let mut w2 = Instance::new();
        w2.insert_names("Sink", &["b"]);
        assert!(!comp_membership(&sigma, &delta, &s, &w2, None).member);
    }
}
