//! # dx-core — data exchange in open and closed worlds
//!
//! The primary contribution of the reproduced paper (Libkin & Sirangelo,
//! *Data exchange and schema mappings in open and closed worlds*, PODS'08 /
//! JCSS'11), built on the substrates `dx-relation`/`dx-logic`/`dx-chase`/
//! `dx-solver`:
//!
//! * [`semantics`] — the mixed open/closed-world semantics `⟦S⟧_Σα`:
//!   membership (Theorem 2: PTIME when all-open, NP otherwise), the
//!   OWA/CWA extremes (Theorem 1(1–2), Proposition 2) and the annotation
//!   order (Theorem 1(3));
//! * [`certain`] — certain answers `certain_Σα(Q, S)` and the `DEQA`
//!   problem: naive evaluation for positive/monotone queries
//!   (Proposition 3/4), the exact coNP procedures for `#op = 0` and for
//!   `∀*∃*` queries (Proposition 5), the bounded-replication procedure for
//!   `#op = 1` (Lemma 2), and budget-bounded refutation in the undecidable
//!   regime (`#op > 1`);
//! * [`compose`] — semantic composition `Comp(Σα, Δα′)` (Theorem 4 /
//!   Table 1) with the monotone-`Δop` fast path (Lemma 3, Corollary 4);
//! * [`skstd`] — Skolemized STDs, their semantics `Sol_F′(S)` (§5),
//!   membership, and the Lemma 4 STD→SkSTD translation;
//! * [`compose_alg`] — the Lemma 5 syntactic composition algorithm with CQ
//!   re-normalization, giving the two composition-closed classes of
//!   Theorem 5;
//! * [`non_closure`] — the Proposition 6 counterexample: plain annotated
//!   STD mappings do *not* compose;
//! * [`ptime_lang`] — the §6 extension: certain answers for black-box PTIME
//!   query languages beyond FO (instantiated for stratified Datalog);
//! * [`ctable_bridge`] — exact, search-free CWA certain answers for full
//!   relational algebra via the conditional tables of [`dx_ctables`]
//!   (the §2-cited Imieliński–Lipski mechanism);
//! * [`streaming`] — streaming data exchange: [`streaming::StreamSession`]
//!   keeps registered queries' answers current under source update batches
//!   (delta plans where sound, recompute-on-maintained-csol elsewhere);
//! * [`regimes`] — the non-monotonic query-answering regimes of the
//!   follow-up literature: GCWA\*-answers over unions of minimal solutions
//!   (Hernich) and the under/over approximation bracket for queries with
//!   negation (after Calautti et al.), both on compiled plans over one
//!   incrementally maintained index.

#![warn(missing_docs)]

pub mod certain;
pub mod compose;
pub mod compose_alg;
pub mod ctable_bridge;
pub mod non_closure;
pub mod ptime_lang;
pub mod regimes;
pub mod semantics;
pub mod skstd;
pub mod streaming;

pub use certain::{
    certain_answers, certain_answers_via, certain_answers_with, certain_contains,
    certain_contains_via, certain_contains_with, certain_positive_with_deps_via, possible_contains,
    CertainOutcome, Deqa,
};
pub use compose::{comp_membership, comp_membership_via, CompOutcome};
pub use compose_alg::{compose_skstd, ComposeError};
pub use ctable_bridge::{certain_answers_cwa_ra, csol_as_ctable, possible_answers_cwa_ra};
pub use ptime_lang::{certain_answers_ptime, certain_contains_ptime, CompiledFoQuery, PtimeQuery};
pub use regimes::{
    approx_certain_answers, approx_certain_answers_via, approx_certain_answers_with,
    gcwa_star_answers, gcwa_star_answers_via, gcwa_star_answers_with, gcwa_star_contains,
    under_over_queries, ApproxOutcome, GcwaMembership, GcwaOutcome, RegimeBudget,
};
pub use semantics::{in_semantics, in_semantics_via, is_member_via, MembershipOutcome};
pub use skstd::{SkAtom, SkMapping, SkStd};
pub use streaming::{affected_target_rels, QueryPath, SessionReport, StreamRegime, StreamSession};
