//! The mixed-world semantics `⟦S⟧_Σα` and its membership problem.
//!
//! By Theorem 1(4), `⟦S⟧_Σα = Rep_A(CSol_A(S))`, so membership `T ∈ ⟦S⟧_Σα`
//! reduces to `Rep_A` membership against the annotated canonical solution —
//! the NP procedure of Theorem 2. When every annotation is open, Theorem 1(2)
//! gives the PTIME alternative: `T ∈ ⟦S⟧_Σop` iff `(S, T) |= Σ`.

use dx_chase::{
    canonical_solution, canonical_solution_via, is_owa_solution, ChaseStrategy, Mapping,
};
use dx_relation::{Instance, Valuation};
use dx_solver::repa::rep_a_membership;

/// How a membership query was decided.
#[derive(Clone, Debug)]
pub enum MembershipOutcome {
    /// Decided by the PTIME all-open path (`(S,T) |= Σ`, Theorem 2 case 1).
    OpenWorldCheck {
        /// The verdict.
        member: bool,
    },
    /// Decided by valuation search against `CSol_A(S)` (the NP witness of
    /// Theorem 2); carries the witnessing valuation when positive.
    ValuationSearch {
        /// The witnessing valuation, if `T ∈ ⟦S⟧_Σα`.
        witness: Option<Valuation>,
    },
}

impl MembershipOutcome {
    /// The boolean verdict.
    pub fn is_member(&self) -> bool {
        match self {
            MembershipOutcome::OpenWorldCheck { member } => *member,
            MembershipOutcome::ValuationSearch { witness } => witness.is_some(),
        }
    }
}

/// Decide `T ∈ ⟦S⟧_Σα` (the recognition problem of Theorem 2).
///
/// * All-open annotation → polynomial time, via `(S, T) |= Σ`.
/// * Otherwise → NP, by guessing a valuation of the nulls of `CSol_A(S)`
///   (backtracking search; both conditions of `Rep_A` are verified).
///
/// `T` must be a ground instance (solutions' semantics are sets of
/// `Const`-instances).
pub fn in_semantics(mapping: &Mapping, source: &Instance, t: &Instance) -> MembershipOutcome {
    assert!(t.is_ground(), "⟦S⟧ members are instances over Const");
    if mapping.is_all_open() {
        MembershipOutcome::OpenWorldCheck {
            member: is_owa_solution(mapping, source, t),
        }
    } else {
        let csol = canonical_solution(mapping, source);
        MembershipOutcome::ValuationSearch {
            witness: rep_a_membership(&csol.instance, t),
        }
    }
}

/// [`in_semantics`] with the canonical solution's body evaluation routed
/// through a [`ChaseStrategy`]'s engine (`dx_engine::IndexedChase` runs it
/// on `dx-query` compiled plans); the verdict is strategy independent.
pub fn in_semantics_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    t: &Instance,
) -> MembershipOutcome {
    assert!(t.is_ground(), "⟦S⟧ members are instances over Const");
    if mapping.is_all_open() {
        MembershipOutcome::OpenWorldCheck {
            member: is_owa_solution(mapping, source, t),
        }
    } else {
        let csol = canonical_solution_via(strategy.body_eval(), mapping, source);
        MembershipOutcome::ValuationSearch {
            witness: rep_a_membership(&csol.instance, t),
        }
    }
}

/// Boolean [`in_semantics_via`].
pub fn is_member_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    source: &Instance,
    t: &Instance,
) -> bool {
    in_semantics_via(strategy, mapping, source, t).is_member()
}

/// Plain boolean membership (see [`in_semantics`]).
pub fn is_member(mapping: &Mapping, source: &Instance, t: &Instance) -> bool {
    in_semantics(mapping, source, t).is_member()
}

/// Force the general (valuation-search) path even for all-open mappings —
/// used by tests validating that both paths agree (Theorem 1(2) /
/// Lemma 1), and by benches contrasting PTIME vs NP behaviour.
pub fn is_member_via_repa(mapping: &Mapping, source: &Instance, t: &Instance) -> bool {
    let csol = canonical_solution(mapping, source);
    rep_a_membership(&csol.instance, t).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_e3() -> Instance {
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c1"]);
        s.insert_names("E", &["a", "c2"]);
        s.insert_names("E", &["b", "c3"]);
        s
    }

    /// All-closed copy mapping: the only member is a copy of S (the paper's
    /// §1 motivating observation for the CWA).
    #[test]
    fn closed_copy_is_rigid() {
        let m = Mapping::parse("Ep(x:cl, y:cl) <- E(x, y)").unwrap();
        let s = source_e3();
        let mut copy = Instance::new();
        copy.insert_names("Ep", &["a", "c1"]);
        copy.insert_names("Ep", &["a", "c2"]);
        copy.insert_names("Ep", &["b", "c3"]);
        assert!(is_member(&m, &s, &copy));
        // Any extra tuple breaks membership under the CWA…
        let mut bigger = copy.clone();
        bigger.insert_names("Ep", &["x", "y"]);
        assert!(!is_member(&m, &s, &bigger));
        // …but is fine under the OWA.
        let mo = m.all_open();
        assert!(is_member(&mo, &s, &bigger));
        assert!(is_member(&mo, &s, &copy));
    }

    /// Theorem 1(2): the PTIME OWA check agrees with the Rep_A path.
    #[test]
    fn open_paths_agree() {
        let m = Mapping::parse("R(x:op, z:op) <- E(x, y)").unwrap();
        let s = source_e3();
        let mut t = Instance::new();
        t.insert_names("R", &["a", "k"]);
        t.insert_names("R", &["b", "k"]);
        t.insert_names("R", &["junk", "junk"]);
        assert_eq!(is_member(&m, &s, &t), is_member_via_repa(&m, &s, &t));
        assert!(is_member(&m, &s, &t));
        let mut missing_b = Instance::new();
        missing_b.insert_names("R", &["a", "k"]);
        assert_eq!(
            is_member(&m, &s, &missing_b),
            is_member_via_repa(&m, &s, &missing_b)
        );
        assert!(!is_member(&m, &s, &missing_b));
    }

    /// Mixed annotation: R(x:cl, z:op) — first attribute closed to source
    /// values, second open to replication.
    #[test]
    fn mixed_annotation_membership() {
        let m = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let s = source_e3();
        // Multiple values for a's null, one for b's: fine.
        let mut t = Instance::new();
        t.insert_names("R", &["a", "v1"]);
        t.insert_names("R", &["a", "v2"]);
        t.insert_names("R", &["b", "w"]);
        assert!(is_member(&m, &s, &t));
        // A tuple with a first attribute not in the source: rejected.
        let mut bad = t.clone();
        bad.insert_names("R", &["zzz", "v"]);
        assert!(!is_member(&m, &s, &bad));
        // Missing b entirely: rejected (v(rel CSol) ⊈ T).
        let mut missing = Instance::new();
        missing.insert_names("R", &["a", "v1"]);
        assert!(!is_member(&m, &s, &missing));
    }

    /// Theorem 1(3) on a bounded universe: ⟦S⟧_Σcl ⊆ ⟦S⟧_Σα ⊆ ⟦S⟧_Σop for
    /// α between the extremes — checked on an enumeration of small targets.
    #[test]
    fn semantics_monotone_in_annotation_on_small_universe() {
        let mid = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let cl = mid.all_closed();
        let op = mid.all_open();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        // Enumerate all targets over constants {a, u, w} with ≤ 2 tuples.
        let consts = ["a", "u", "w"];
        let mut all_pairs = Vec::new();
        for x in consts {
            for y in consts {
                all_pairs.push((x, y));
            }
        }
        let mut checked = 0;
        for i in 0..all_pairs.len() {
            for j in i..all_pairs.len() {
                let mut t = Instance::new();
                let (x1, y1) = all_pairs[i];
                t.insert_names("R", &[x1, y1]);
                let (x2, y2) = all_pairs[j];
                t.insert_names("R", &[x2, y2]);
                let in_cl = is_member(&cl, &s, &t);
                let in_mid = is_member(&mid, &s, &t);
                let in_op = is_member(&op, &s, &t);
                assert!(!in_cl || in_mid, "cl ⊆ mid violated on {t}");
                assert!(!in_mid || in_op, "mid ⊆ op violated on {t}");
                checked += 1;
            }
        }
        assert!(checked > 30);
    }
}
