//! Certain answers for **PTIME query languages beyond FO** — the paper's
//! first §6 extension.
//!
//! > "The first trichotomy theorem is true for any query language of PTIME
//! > data complexity that contains FO."
//!
//! The decision procedures of [`crate::certain`] only use the query as a
//! black-box evaluator over ground instances plus two one-bit
//! classifications (hom-preservation, monotonicity); nothing in the witness
//! spaces is FO-specific except the `∀*∃*` and Lemma 2 *bounds*. This module
//! instantiates the machinery for [stratified Datalog](dx_logic::datalog)
//! (transitive closure and friends — properly more expressive than positive
//! FO) and, more generally, for any [`PtimeQuery`] implementor:
//!
//! * **hom-preserved** queries (negation- and inequality-free programs):
//!   naive evaluation on `CSol(S)` is exact for every annotation — the
//!   monotone generalization of Proposition 3;
//! * **monotone** queries: exact by valuation search over `Rep(CSol)`
//!   (Proposition 4's regime — its proof only uses monotonicity);
//! * general stratified queries: exact valuation search when `#op = 0`
//!   (Theorem 3(1) relies on the CWA witness space, not on FO), and
//!   budget-bounded refutation when `#op ≥ 1` (the Lemma 2 bound is proved
//!   by an Ehrenfeucht–Fraïssé argument that is FO-specific, so beyond FO
//!   the search is capped by the caller's [`SearchBudget`] and reported as
//!   such in [`CertainOutcome::completeness`]).

use crate::certain::{CertainOutcome, Regime};
use dx_chase::{canonical_solution, Mapping};
use dx_logic::datalog::DatalogQuery;
use dx_logic::Query;
use dx_query::{PlanCatalog, QueryEval, QueryStore};
use dx_relation::{ConstId, Instance, Relation, Tuple};
use dx_solver::{search_rep_a_indexed, Completeness, Leaf, SearchBudget};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The per-leaf membership check returned by [`PtimeQuery::prepared_holds`]:
/// invoked once per candidate of a refutation search, with the solver's
/// incremental index and its materialized instance view.
pub type PreparedHolds<'a> = Box<dyn FnMut(&dyn QueryStore, &Instance) -> bool + 'a>;

/// A query in some language of PTIME data complexity, as seen by the
/// certain-answer engines: an evaluator over ground instances plus the two
/// semantic classifications that select a decision regime.
///
/// Implementors must guarantee that `answers` runs in time polynomial in the
/// instance (the trichotomy's "PTIME data complexity" hypothesis) and treats
/// nulls as atomic values (the naive semantics of §2).
pub trait PtimeQuery {
    /// Output arity.
    fn out_arity(&self) -> usize;

    /// Evaluate on an instance, nulls as atomic values.
    fn eval(&self, instance: &Instance) -> Relation;

    /// Does `t` belong to the answers on `instance`?
    fn holds(&self, instance: &Instance, t: &Tuple) -> bool {
        self.eval(instance).contains(t)
    }

    /// [`PtimeQuery::holds`] against an already-indexed store (the
    /// refutation loops' per-leaf check: `store` is the solver's
    /// incrementally maintained candidate index, `instance` its
    /// materialized view). The default ignores the index; implementors
    /// with compiled plans override it to probe the store directly.
    fn holds_indexed(&self, store: &dyn QueryStore, instance: &Instance, t: &Tuple) -> bool {
        let _ = store;
        self.holds(instance, t)
    }

    /// A per-search membership check for `t`: called **once** before a
    /// refutation loop, invoked once per candidate leaf. The default
    /// delegates to [`PtimeQuery::holds_indexed`] per call; implementors
    /// whose `holds_indexed` performs per-call setup (e.g. a catalog
    /// lookup) override this to hoist that setup out of the — potentially
    /// exponential — leaf loop.
    fn prepared_holds<'a>(&'a self, t: &'a Tuple) -> PreparedHolds<'a> {
        Box::new(move |store, instance| self.holds_indexed(store, instance, t))
    }

    /// Is the query preserved under homomorphisms of instances? (Then naive
    /// evaluation on the canonical solution is exact for every annotation.)
    /// Implementations must be *conservative*: `false` when unknown.
    fn hom_preserved(&self) -> bool;

    /// Is the query monotone (answers only grow when tuples are added)?
    /// Conservative: `false` when unknown.
    fn monotone(&self) -> bool;

    /// Constants mentioned by the query (they seed the counterexample
    /// palette).
    fn query_constants(&self) -> BTreeSet<ConstId>;
}

impl PtimeQuery for Query {
    fn out_arity(&self) -> usize {
        self.arity()
    }

    /// Routed through the shared [`PlanCatalog`]: compiled plan when
    /// safe-range, tree walker otherwise — one lowering per distinct
    /// query per process, hash-lookup cheap afterwards.
    fn eval(&self, instance: &Instance) -> Relation {
        PlanCatalog::shared().eval(self).answers(instance)
    }

    /// Also catalog-backed: inside `search_rep_a_indexed` refutation loops
    /// this runs once per candidate instance, and the catalog makes the
    /// repeated lookups a structural-hash probe rather than a re-compile.
    /// [`CompiledFoQuery`] remains as the zero-lookup variant (it holds
    /// its catalog entry directly).
    fn holds(&self, instance: &Instance, t: &Tuple) -> bool {
        PlanCatalog::shared().eval(self).holds_on(instance, t)
    }

    fn holds_indexed(&self, store: &dyn QueryStore, instance: &Instance, t: &Tuple) -> bool {
        PlanCatalog::shared()
            .eval(self)
            .holds_on_indexed(store, instance, t)
    }

    /// One catalog lookup per search, not per leaf: the `Arc<QueryEval>`
    /// is hoisted into the returned closure.
    fn prepared_holds<'a>(&'a self, t: &'a Tuple) -> PreparedHolds<'a> {
        let ev = PlanCatalog::shared().eval(self);
        Box::new(move |store, instance| ev.holds_on_indexed(store, instance, t))
    }

    fn hom_preserved(&self) -> bool {
        dx_logic::classify::is_positive(&self.formula)
    }

    fn monotone(&self) -> bool {
        dx_logic::classify::is_monotone(&self.formula)
    }

    fn query_constants(&self) -> BTreeSet<ConstId> {
        self.formula.constants()
    }
}

/// A first-order query holding its shared-catalog plan entry directly —
/// the [`PtimeQuery`] to use inside refutation loops, where
/// [`PtimeQuery::holds`] runs once per candidate instance: no per-call
/// catalog lookup, and the per-leaf check probes the solver's incremental
/// index through [`PtimeQuery::holds_indexed`].
pub struct CompiledFoQuery {
    query: Query,
    eval: Arc<QueryEval>,
}

impl CompiledFoQuery {
    /// Wrap, drawing the compiled plan from the shared [`PlanCatalog`]
    /// (the tree walker remains the internal fallback when the formula is
    /// not safe-range).
    pub fn new(query: Query) -> Self {
        let eval = PlanCatalog::shared().eval(&query);
        CompiledFoQuery { query, eval }
    }

    /// Did the formula compile to a plan?
    pub fn is_compiled(&self) -> bool {
        self.eval.is_compiled()
    }
}

impl PtimeQuery for CompiledFoQuery {
    fn out_arity(&self) -> usize {
        self.query.arity()
    }

    fn eval(&self, instance: &Instance) -> Relation {
        self.eval.answers(instance)
    }

    fn holds(&self, instance: &Instance, t: &Tuple) -> bool {
        self.eval.holds_on(instance, t)
    }

    fn holds_indexed(&self, store: &dyn QueryStore, instance: &Instance, t: &Tuple) -> bool {
        self.eval.holds_on_indexed(store, instance, t)
    }

    fn hom_preserved(&self) -> bool {
        dx_logic::classify::is_positive(&self.query.formula)
    }

    fn monotone(&self) -> bool {
        dx_logic::classify::is_monotone(&self.query.formula)
    }

    fn query_constants(&self) -> BTreeSet<ConstId> {
        self.query.formula.constants()
    }
}

impl PtimeQuery for DatalogQuery {
    fn out_arity(&self) -> usize {
        self.arity()
    }

    fn eval(&self, instance: &Instance) -> Relation {
        self.answers(instance)
    }

    fn hom_preserved(&self) -> bool {
        self.program.is_hom_preserved()
    }

    fn monotone(&self) -> bool {
        self.program.is_monotone()
    }

    fn query_constants(&self) -> BTreeSet<ConstId> {
        self.program.constants()
    }
}

/// Decide `t̄ ∈ certain_Σα(Q, S)` for a black-box PTIME query.
///
/// Regime selection mirrors [`crate::certain::certain_contains`], minus the
/// FO-specific `∀*∃*` and Lemma 2 bounds (see the module docs).
pub fn certain_contains_ptime(
    mapping: &Mapping,
    source: &Instance,
    query: &dyn PtimeQuery,
    tuple: &Tuple,
    budget: Option<&SearchBudget>,
) -> CertainOutcome {
    assert_eq!(
        tuple.arity(),
        query.out_arity(),
        "answer-tuple arity mismatch"
    );
    assert!(tuple.is_ground(), "certain answers are tuples over Const");
    let csol = canonical_solution(mapping, source);

    if query.hom_preserved() {
        let certain = query.holds(&csol.rel_part(), tuple);
        return CertainOutcome {
            certain,
            completeness: Completeness::Exact,
            regime: Regime::NaivePositive,
            counterexample: None,
            leaves: 0,
        };
    }

    let query_consts: BTreeSet<ConstId> = query
        .query_constants()
        .into_iter()
        .chain(tuple.consts())
        .collect();

    if query.monotone() {
        let closed = csol.instance.reannotate_all_closed();
        let mut holds = query.prepared_holds(tuple);
        let mut check = |leaf: &Leaf| !holds(leaf.index(), leaf.instance());
        let outcome = search_rep_a_indexed(
            &closed,
            &query_consts,
            &SearchBudget::closed_world(),
            &mut check,
        );
        return CertainOutcome {
            certain: outcome.witness.is_none(),
            completeness: outcome.completeness,
            regime: Regime::Monotone,
            counterexample: outcome.witness.map(|(i, _)| i),
            leaves: outcome.leaves,
        };
    }

    let (search_budget, regime, exact) = if mapping.is_all_closed() {
        (SearchBudget::closed_world(), Regime::ClosedWorld, true)
    } else {
        (
            budget.cloned().unwrap_or_default(),
            Regime::OpenBounded,
            false,
        )
    };
    let mut holds = query.prepared_holds(tuple);
    let mut check = |leaf: &Leaf| !holds(leaf.index(), leaf.instance());
    let outcome = search_rep_a_indexed(&csol.instance, &query_consts, &search_budget, &mut check);
    CertainOutcome {
        certain: outcome.witness.is_none(),
        completeness: match (outcome.completeness, exact) {
            (Completeness::Capped, _) => Completeness::Capped,
            (_, true) => Completeness::Exact,
            (c, false) => c,
        },
        regime,
        counterexample: outcome.witness.map(|(i, _)| i),
        leaves: outcome.leaves,
    }
}

/// The full certain-answer relation for a black-box PTIME query (candidates
/// range over `adom(S)` and the query constants, by genericity).
pub fn certain_answers_ptime(
    mapping: &Mapping,
    source: &Instance,
    query: &dyn PtimeQuery,
    budget: Option<&SearchBudget>,
) -> (Relation, Completeness) {
    // Hom-preserved queries: one naive evaluation of the program on the
    // canonical solution gives the whole certain-answer relation (its
    // ground tuples) — no per-candidate loop.
    if query.hom_preserved() {
        let csol = canonical_solution(mapping, source);
        let mut rel = Relation::new(query.out_arity());
        for t in query.eval(&csol.rel_part()).iter() {
            if t.is_ground() {
                rel.insert(t.clone());
            }
        }
        return (rel, Completeness::Exact);
    }
    let mut cands: BTreeSet<ConstId> = source.adom_consts();
    cands.extend(query.query_constants());
    let consts: Vec<ConstId> = cands.into_iter().collect();
    let arity = query.out_arity();
    let mut rel = Relation::new(arity);
    let mut completeness = Completeness::Exact;
    let total = consts.len().checked_pow(arity as u32).unwrap_or(0);
    for mut code in 0..total {
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(consts[code % consts.len()]);
            code /= consts.len();
        }
        let tuple = Tuple::from_consts(&vals);
        let out = certain_contains_ptime(mapping, source, query, &tuple, budget);
        if out.certain {
            rel.insert(tuple);
        }
        completeness = match (completeness, out.completeness) {
            (Completeness::Capped, _) | (_, Completeness::Capped) => Completeness::Capped,
            (Completeness::Bounded, _) | (_, Completeness::Bounded) => Completeness::Bounded,
            _ => Completeness::Exact,
        };
    }
    if arity == 0 && total == 1 {
        // Boolean query: the loop above ran exactly once with the empty
        // tuple; nothing more to do.
    }
    (rel, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::datalog::DatalogQuery;
    use dx_relation::Value;

    const TC: &str = "PlPath(x, y) <- PlEdge(x, y); PlPath(x, z) <- PlPath(x, y) & PlEdge(y, z)";

    fn chain_source() -> Instance {
        let mut s = Instance::new();
        s.insert_names("SrcE", &["a", "b"]);
        s.insert_names("SrcE", &["b", "c"]);
        s
    }

    /// Transitive closure is hom-preserved: certain answers = naive
    /// evaluation on CSol for EVERY annotation (monotone Prop 3), including
    /// through invented nulls.
    #[test]
    fn reachability_certain_answers_any_annotation() {
        let q = DatalogQuery::parse("PlPath", TC).unwrap();
        for rules in [
            "PlEdge(x:cl, y:cl) <- SrcE(x, y)",
            "PlEdge(x:cl, y:op) <- SrcE(x, y)",
            "PlEdge(x:op, y:op) <- SrcE(x, y)",
        ] {
            let m = Mapping::parse(rules).unwrap();
            let out = certain_contains_ptime(
                &m,
                &chain_source(),
                &q,
                &Tuple::from_names(&["a", "c"]),
                None,
            );
            assert!(out.certain, "a reaches c under {rules}");
            assert_eq!(out.regime, Regime::NaivePositive);
            assert_eq!(out.completeness, Completeness::Exact);
        }
    }

    /// Paths through invented nulls are NOT certain (the null could be
    /// anything), but the endpoints joined by a two-step null path are —
    /// reachability composes through the null whatever its value.
    #[test]
    fn reachability_through_nulls() {
        // E'(x,⊥) and E'(⊥,y) per source tuple: Link(x,z) & Link(z,y).
        let m = Mapping::parse(
            "PlEdge(x:cl, z:cl) <- SrcHop(x, y); PlEdge(z:cl, y:cl) <- SrcHop(x, y)",
        )
        .unwrap();
        let mut s = Instance::new();
        s.insert_names("SrcHop", &["a", "b"]);
        let q = DatalogQuery::parse("PlPath", TC).unwrap();
        // Each SrcHop tuple gets ONE justification per STD, so the two STDs
        // invent two different nulls — a and b are not certainly connected.
        let out = certain_contains_ptime(&m, &s, &q, &Tuple::from_names(&["a", "b"]), None);
        assert!(!out.certain, "two distinct nulls do not certainly chain");
        // With a single STD producing both atoms, the null is shared:
        let m2 = Mapping::parse("PlEdge(x:cl, z:cl), PlEdge(z:cl, y:cl) <- SrcHop(x, y)").unwrap();
        let out2 = certain_contains_ptime(&m2, &s, &q, &Tuple::from_names(&["a", "b"]), None);
        assert!(out2.certain, "shared null chains a → ⊥ → b certainly");
        assert_eq!(out2.regime, Regime::NaivePositive);
    }

    /// A stratified (non-monotone) program on a copy mapping: under the CWA
    /// the answer is exact and certain; opening the target defeats it.
    #[test]
    fn stratified_negation_cwa_vs_open() {
        let prog = "PlReach(x) <- PlStart(x); \
                    PlReach(y) <- PlReach(x) & PlEdge(x, y); \
                    PlDead(x) <- PlNode(x) & !PlReach(x)";
        let q = DatalogQuery::parse("PlDead", prog).unwrap();
        let m = Mapping::parse(
            "PlEdge(x:cl, y:cl) <- SrcE(x, y); \
             PlNode(x:cl) <- SrcN(x); \
             PlStart(x:cl) <- SrcS(x)",
        )
        .unwrap();
        let mut s = Instance::new();
        s.insert_names("SrcE", &["a", "b"]);
        s.insert_names("SrcN", &["a"]);
        s.insert_names("SrcN", &["b"]);
        s.insert_names("SrcN", &["z"]);
        s.insert_names("SrcS", &["a"]);
        // z is an isolated node: not reachable from a — certainly dead under
        // the CWA.
        let out = certain_contains_ptime(&m, &s, &q, &Tuple::from_names(&["z"]), None);
        assert!(out.certain);
        assert_eq!(out.regime, Regime::ClosedWorld);
        assert_eq!(out.completeness, Completeness::Exact);
        // b IS reachable: not dead.
        let out_b = certain_contains_ptime(&m, &s, &q, &Tuple::from_names(&["b"]), None);
        assert!(!out_b.certain);
        // Open the edge relation: new edges may reach z — not certain,
        // and the engine reports the bounded regime.
        let m_open = Mapping::parse(
            "PlEdge(x:op, y:op) <- SrcE(x, y); \
             PlNode(x:cl) <- SrcN(x); \
             PlStart(x:cl) <- SrcS(x)",
        )
        .unwrap();
        let out_open = certain_contains_ptime(&m_open, &s, &q, &Tuple::from_names(&["z"]), None);
        assert!(!out_open.certain, "an added edge a→z defeats deadness");
        assert_eq!(out_open.regime, Regime::OpenBounded);
    }

    /// Cross-validation on an enumerable space: the Datalog TC result
    /// matches the FO 2-step-reachability query wherever both apply.
    #[test]
    fn datalog_agrees_with_fo_on_bounded_diameter() {
        let fo = Query::parse(
            &["x", "y"],
            "PlEdge(x, y) | (exists z. PlEdge(x, z) & PlEdge(z, y))",
        )
        .unwrap();
        let dl = DatalogQuery::parse("PlPath", TC).unwrap();
        let m = Mapping::parse("PlEdge(x:cl, z:cl) <- SrcE(x, y)").unwrap();
        // Diameter ≤ 2 instance: nulls in second position.
        let mut s = Instance::new();
        s.insert_names("SrcE", &["a", "b"]);
        s.insert_names("SrcE", &["c", "d"]);
        let (fo_rel, _) = crate::certain::certain_answers(&m, &s, &fo, None);
        let (dl_rel, comp) = certain_answers_ptime(&m, &s, &dl, None);
        assert_eq!(comp, Completeness::Exact);
        assert_eq!(fo_rel, dl_rel);
    }

    /// The full answer set for a hom-preserved program: only null-free
    /// tuples survive.
    #[test]
    fn answer_sets_drop_nulls() {
        let q = DatalogQuery::parse("PlPath", TC).unwrap();
        let m = Mapping::parse("PlEdge(x:cl, z:op) <- SrcE(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("SrcE", &["a", "b"]);
        let (rel, comp) = certain_answers_ptime(&m, &s, &q, None);
        assert_eq!(comp, Completeness::Exact);
        assert!(rel.is_empty(), "all paths end in an invented null");
    }

    /// Nulls in the answer tuple are rejected (certain answers are over
    /// Const).
    #[test]
    #[should_panic(expected = "over Const")]
    fn null_answer_tuple_panics() {
        let q = DatalogQuery::parse("PlPath", TC).unwrap();
        let m = Mapping::parse("PlEdge(x:cl, z:op) <- SrcE(x, y)").unwrap();
        let t = Tuple::new(vec![Value::c("a"), Value::null(1)]);
        certain_contains_ptime(&m, &Instance::new(), &q, &t, None);
    }
}
