//! Open/closed annotations and annotated instances (§3 of the paper).
//!
//! An *annotated tuple* is a pair `(t, α)` where `α` assigns `op` or `cl` to
//! every position. An *annotated relation* is a finite set of annotated
//! tuples, plus (for purely technical reasons, to deal with empty tables)
//! *empty annotated tuples* `(_, α)`.
//!
//! The semantics `Rep_A(T)` (implemented in `dx-solver`) reads annotations as
//! follows: after applying a valuation `v`, a relation `R` over `Const` is in
//! `Rep_A(T)` iff `R` contains the non-empty tuples of `v(T)` and every tuple
//! of `R` coincides with some `v(tᵢ)` on all positions annotated **closed**
//! by `αᵢ`. An all-open empty tuple `(_, α)` licenses arbitrary tuples; empty
//! tuples with a closed position license nothing (but still permit the empty
//! table).

use crate::instance::Instance;
use crate::intern::{ConstId, RelSym};
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{NullId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single-position annotation: open (`op`) or closed (`cl`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Ann {
    /// `cl`: one-to-one; the position admits exactly the value chosen by the
    /// valuation (CWA behaviour).
    Closed,
    /// `op`: one-to-many; the position may be replicated with arbitrary
    /// constants (OWA behaviour).
    Open,
}

impl Ann {
    /// The annotation order used by Theorem 1(3): `a ⪯ a′` iff both are `cl`
    /// or `a′` is `op` (closed annotations may be relaxed to open).
    pub fn le(self, other: Ann) -> bool {
        other == Ann::Open || self == Ann::Closed
    }
}

impl fmt::Display for Ann {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ann::Open => write!(f, "op"),
            Ann::Closed => write!(f, "cl"),
        }
    }
}

/// A per-position annotation vector for one atom/tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Annotation(Box<[Ann]>);

impl Annotation {
    /// Build from a vector of per-position annotations.
    pub fn new(anns: impl Into<Vec<Ann>>) -> Self {
        Annotation(anns.into().into_boxed_slice())
    }

    /// The all-open annotation of the given arity (OWA semantics of \[FKMP\]).
    pub fn all_open(arity: usize) -> Self {
        Annotation(vec![Ann::Open; arity].into_boxed_slice())
    }

    /// The all-closed annotation of the given arity (CWA semantics of
    /// [Libkin'06]).
    pub fn all_closed(arity: usize) -> Self {
        Annotation(vec![Ann::Closed; arity].into_boxed_slice())
    }

    /// Number of positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The annotation at position `i`.
    pub fn get(&self, i: usize) -> Ann {
        self.0[i]
    }

    /// Iterate over the per-position annotations.
    pub fn iter(&self) -> impl Iterator<Item = Ann> + '_ {
        self.0.iter().copied()
    }

    /// Positions annotated open.
    pub fn open_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.0.len()).filter(|&i| self.0[i] == Ann::Open)
    }

    /// Positions annotated closed.
    pub fn closed_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.0.len()).filter(|&i| self.0[i] == Ann::Closed)
    }

    /// Number of open positions (the per-atom quantity behind `#op(Σα)`).
    pub fn count_open(&self) -> usize {
        self.open_positions().count()
    }

    /// Number of closed positions (the per-atom quantity behind `#cl(Σα)`).
    pub fn count_closed(&self) -> usize {
        self.closed_positions().count()
    }

    /// Is every position open?
    pub fn is_all_open(&self) -> bool {
        self.0.iter().all(|&a| a == Ann::Open)
    }

    /// Is every position closed?
    pub fn is_all_closed(&self) -> bool {
        self.0.iter().all(|&a| a == Ann::Closed)
    }

    /// Pointwise annotation order `α ⪯ α′` (Theorem 1(3)): closed positions
    /// may open up, open positions must stay open.
    pub fn le(&self, other: &Annotation) -> bool {
        self.arity() == other.arity() && self.0.iter().zip(other.0.iter()).all(|(&a, &b)| a.le(b))
    }

    /// Does `candidate` coincide with `reference` on every position this
    /// annotation marks closed? This is the coincidence test used throughout
    /// `Rep_A`, expansions and `|=_cl`.
    pub fn coincide_on_closed(&self, candidate: &Tuple, reference: &Tuple) -> bool {
        debug_assert_eq!(candidate.arity(), self.arity());
        debug_assert_eq!(reference.arity(), self.arity());
        self.closed_positions()
            .all(|i| candidate.get(i) == reference.get(i))
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated tuple `(t, α)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnnTuple {
    /// The underlying tuple of values.
    pub tuple: Tuple,
    /// The per-position annotation.
    pub ann: Annotation,
}

impl AnnTuple {
    /// Build an annotated tuple; panics if arities disagree.
    pub fn new(tuple: Tuple, ann: Annotation) -> Self {
        assert_eq!(tuple.arity(), ann.arity(), "annotation arity mismatch");
        AnnTuple { tuple, ann }
    }

    /// Apply a valuation to the tuple part, keeping the annotation.
    pub fn apply(&self, v: &Valuation) -> AnnTuple {
        AnnTuple {
            tuple: self.tuple.apply(v),
            ann: self.ann.clone(),
        }
    }
}

impl fmt::Display for AnnTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.tuple.arity() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}^{}", self.tuple.get(i), self.ann.get(i))?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for AnnTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated relation: annotated tuples plus empty markers `(_, α)`.
#[derive(Clone, PartialEq, Eq)]
pub struct AnnRelation {
    arity: usize,
    tuples: BTreeSet<AnnTuple>,
    empty_marks: BTreeSet<Annotation>,
}

impl AnnRelation {
    /// An empty annotated relation of the given arity.
    pub fn new(arity: usize) -> Self {
        AnnRelation {
            arity,
            tuples: BTreeSet::new(),
            empty_marks: BTreeSet::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert an annotated tuple.
    pub fn insert(&mut self, t: AnnTuple) -> bool {
        assert_eq!(t.tuple.arity(), self.arity, "arity mismatch");
        self.tuples.insert(t)
    }

    /// Record an empty annotated tuple `(_, α)`.
    pub fn insert_empty_mark(&mut self, ann: Annotation) -> bool {
        assert_eq!(ann.arity(), self.arity, "arity mismatch");
        self.empty_marks.insert(ann)
    }

    /// Remove an annotated tuple; `true` if it was present. Used by the
    /// incrementally maintained canonical solution when a tuple's last
    /// derivation dies.
    pub fn remove(&mut self, t: &AnnTuple) -> bool {
        self.tuples.remove(t)
    }

    /// Remove an empty marker `(_, α)`; `true` if it was present (the
    /// streaming counterpart of [`AnnRelation::insert_empty_mark`], fired
    /// when an STD's witness set transitions from empty to non-empty).
    pub fn remove_empty_mark(&mut self, ann: &Annotation) -> bool {
        self.empty_marks.remove(ann)
    }

    /// Is the annotated tuple present?
    pub fn contains(&self, t: &AnnTuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over the (non-empty) annotated tuples.
    pub fn iter(&self) -> impl Iterator<Item = &AnnTuple> + '_ {
        self.tuples.iter()
    }

    /// Iterate over the empty markers.
    pub fn empty_marks(&self) -> impl Iterator<Item = &Annotation> + '_ {
        self.empty_marks.iter()
    }

    /// Number of (non-empty) annotated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// No tuples and no empty markers?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty() && self.empty_marks.is_empty()
    }

    /// Does some empty marker have the all-open annotation (licensing
    /// arbitrary tuples in `Rep_A`)?
    pub fn has_all_open_empty_mark(&self) -> bool {
        self.empty_marks.iter().any(|a| a.is_all_open())
    }

    /// The paper's `rel(T)` for this relation: the set of non-empty tuples.
    pub fn rel_part(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter().map(|t| &t.tuple)
    }

    /// Does `candidate` coincide with some annotated tuple on that tuple's
    /// closed positions, or is it licensed by an all-open empty marker?
    ///
    /// This is the *coverage* condition of `Rep_A` (applied to a valued
    /// relation).
    pub fn covers(&self, candidate: &Tuple) -> bool {
        self.has_all_open_empty_mark() || self.matches_closed(candidate)
    }

    /// Does `candidate` coincide with some annotated **tuple** (empty markers
    /// excluded) on that tuple's closed positions?
    ///
    /// This is the *expansion* condition of Proposition 1: an expansion of
    /// `T` may only add tuples coinciding with an existing tuple of `T` on
    /// that tuple's closed positions.
    pub fn matches_closed(&self, candidate: &Tuple) -> bool {
        self.tuples
            .iter()
            .any(|at| at.ann.coincide_on_closed(candidate, &at.tuple))
    }

    /// Apply a valuation to every tuple.
    pub fn apply(&self, v: &Valuation) -> AnnRelation {
        AnnRelation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.apply(v)).collect(),
            empty_marks: self.empty_marks.clone(),
        }
    }

    /// All nulls in the relation.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.tuples.iter().flat_map(|t| t.tuple.nulls()).collect()
    }
}

impl fmt::Display for AnnRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for t in &self.tuples {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        for m in &self.empty_marks {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "(_,{m})")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for AnnRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated instance: one [`AnnRelation`] per relation symbol.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct AnnInstance {
    rels: BTreeMap<RelSym, AnnRelation>,
}

impl AnnInstance {
    /// The empty annotated instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an annotated tuple into `rel`.
    pub fn insert(&mut self, rel: RelSym, t: AnnTuple) -> bool {
        self.rels
            .entry(rel)
            .or_insert_with(|| AnnRelation::new(t.tuple.arity()))
            .insert(t)
    }

    /// Record an empty marker `(_, α)` in `rel`.
    pub fn insert_empty_mark(&mut self, rel: RelSym, ann: Annotation) -> bool {
        self.rels
            .entry(rel)
            .or_insert_with(|| AnnRelation::new(ann.arity()))
            .insert_empty_mark(ann)
    }

    /// Remove an annotated tuple from `rel`; `true` if it was present. The
    /// (possibly now-empty) relation stays declared so arities survive —
    /// matching [`AnnInstance::rel_part`]'s declaration behaviour.
    pub fn remove(&mut self, rel: RelSym, t: &AnnTuple) -> bool {
        self.rels.get_mut(&rel).is_some_and(|r| r.remove(t))
    }

    /// Remove an empty marker `(_, α)` from `rel`; `true` if present.
    pub fn remove_empty_mark(&mut self, rel: RelSym, ann: &Annotation) -> bool {
        self.rels
            .get_mut(&rel)
            .is_some_and(|r| r.remove_empty_mark(ann))
    }

    /// Is the annotated tuple present in `rel`?
    pub fn contains(&self, rel: RelSym, t: &AnnTuple) -> bool {
        self.rels.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// The annotated relation for `rel`, if present.
    pub fn relation(&self, rel: RelSym) -> Option<&AnnRelation> {
        self.rels.get(&rel)
    }

    /// Iterate over `(relation symbol, annotated relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (RelSym, &AnnRelation)> + '_ {
        self.rels.iter().map(|(&r, rel)| (r, rel))
    }

    /// Annotated tuples of `rel` (empty iterator when absent).
    pub fn tuples(&self, rel: RelSym) -> impl Iterator<Item = &AnnTuple> + '_ {
        self.rels.get(&rel).into_iter().flat_map(|r| r.iter())
    }

    /// Total number of (non-empty) annotated tuples.
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// The paper's `rel(T)`: the pure relational part (non-empty tuples,
    /// annotations stripped). Declared relations are kept so arities survive.
    pub fn rel_part(&self) -> Instance {
        let mut out = Instance::new();
        for (&r, rel) in &self.rels {
            out.declare(r, rel.arity());
            for t in rel.rel_part() {
                out.insert(r, t.clone());
            }
        }
        out
    }

    /// All nulls in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.rels.values().flat_map(|r| r.nulls()).collect()
    }

    /// The constants occurring in (non-empty) tuples.
    pub fn adom_consts(&self) -> BTreeSet<ConstId> {
        self.rels
            .values()
            .flat_map(|r| r.iter())
            .flat_map(|t| t.tuple.consts())
            .collect()
    }

    /// All values occurring in (non-empty) tuples.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.rels
            .values()
            .flat_map(|r| r.iter())
            .flat_map(|t| t.tuple.iter())
            .collect()
    }

    /// Apply a valuation relation-wise, keeping annotations (`v(T)` on
    /// annotated instances).
    pub fn apply(&self, v: &Valuation) -> AnnInstance {
        AnnInstance {
            rels: self
                .rels
                .iter()
                .map(|(&r, rel)| (r, rel.apply(v)))
                .collect(),
        }
    }

    /// Re-annotate every tuple and empty marker as closed: `Rep(T)` as the
    /// all-closed `Rep_A(T)` (Lemma 1).
    pub fn reannotate_all_closed(&self) -> AnnInstance {
        let mut out = AnnInstance::new();
        for (r, rel) in self.relations() {
            for at in rel.iter() {
                out.insert(
                    r,
                    AnnTuple::new(at.tuple.clone(), Annotation::all_closed(at.tuple.arity())),
                );
            }
            for m in rel.empty_marks() {
                out.insert_empty_mark(r, Annotation::all_closed(m.arity()));
            }
        }
        out
    }

    /// Re-annotate every tuple and empty marker as open (the OWA reading of
    /// the same tuple set, Lemma 1).
    pub fn reannotate_all_open(&self) -> AnnInstance {
        let mut out = AnnInstance::new();
        for (r, rel) in self.relations() {
            for at in rel.iter() {
                out.insert(
                    r,
                    AnnTuple::new(at.tuple.clone(), Annotation::all_open(at.tuple.arity())),
                );
            }
            for m in rel.empty_marks() {
                out.insert_empty_mark(r, Annotation::all_open(m.arity()));
            }
        }
        out
    }

    /// Is every annotation (on tuples and empty markers) all-open?
    pub fn is_all_open(&self) -> bool {
        self.rels.values().all(|r| {
            r.iter().all(|t| t.ann.is_all_open()) && r.empty_marks().all(|a| a.is_all_open())
        })
    }

    /// Is every annotation all-closed?
    pub fn is_all_closed(&self) -> bool {
        self.rels.values().all(|r| {
            r.iter().all(|t| t.ann.is_all_closed()) && r.empty_marks().all(|a| a.is_all_closed())
        })
    }

    /// Coverage test lifted to instances: every tuple of `ground` must be
    /// covered by the corresponding annotated relation (see
    /// [`AnnRelation::covers`]); tuples of relations this instance does not
    /// even declare are uncovered.
    pub fn covers_instance(&self, ground: &Instance) -> bool {
        ground.relations().all(|(r, rel)| {
            rel.is_empty()
                || self
                    .rels
                    .get(&r)
                    .is_some_and(|ar| rel.iter().all(|t| ar.covers(t)))
        })
    }
}

impl fmt::Display for AnnInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rels.is_empty() {
            return write!(f, "∅");
        }
        for (i, (r, rel)) in self.rels.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r} = {rel}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for AnnInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    #[test]
    fn ann_order() {
        assert!(Ann::Closed.le(Ann::Open));
        assert!(Ann::Closed.le(Ann::Closed));
        assert!(Ann::Open.le(Ann::Open));
        assert!(!Ann::Open.le(Ann::Closed));
    }

    #[test]
    fn annotation_order_pointwise() {
        let a = Annotation::new(vec![Ann::Closed, Ann::Closed]);
        let b = Annotation::new(vec![Ann::Closed, Ann::Open]);
        let c = Annotation::all_open(2);
        assert!(a.le(&b) && b.le(&c) && a.le(&c));
        assert!(!b.le(&a));
        assert!(!c.le(&b));
        // arity mismatch is never ≤
        assert!(!a.le(&Annotation::all_open(3)));
    }

    #[test]
    fn open_closed_counting() {
        let a = Annotation::new(vec![Ann::Open, Ann::Closed, Ann::Open]);
        assert_eq!(a.count_open(), 2);
        assert_eq!(a.count_closed(), 1);
        assert_eq!(a.open_positions().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!a.is_all_open() && !a.is_all_closed());
    }

    #[test]
    fn coincidence_on_closed_positions() {
        // (a^cl, ⊥^op): any tuple agreeing on position 0 coincides.
        let ann = Annotation::new(vec![Ann::Closed, Ann::Open]);
        let refr = Tuple::new(vec![Value::c("a"), Value::c("x")]);
        assert!(ann.coincide_on_closed(&Tuple::from_names(&["a", "whatever"]), &refr));
        assert!(!ann.coincide_on_closed(&Tuple::from_names(&["b", "x"]), &refr));
    }

    #[test]
    fn covers_via_open_positions() {
        // Rep_A({(a^cl, ⊥^op)}): first attribute must be a.
        let mut r = AnnRelation::new(2);
        r.insert(at(
            vec![Value::c("a"), Value::c("v")], // valued open null
            vec![Ann::Closed, Ann::Open],
        ));
        assert!(r.covers(&Tuple::from_names(&["a", "anything"])));
        assert!(!r.covers(&Tuple::from_names(&["b", "v"])));
    }

    #[test]
    fn all_open_empty_mark_licenses_everything() {
        let mut r = AnnRelation::new(2);
        r.insert_empty_mark(Annotation::all_open(2));
        assert!(r.covers(&Tuple::from_names(&["q", "r"])));
        let mut r2 = AnnRelation::new(2);
        r2.insert_empty_mark(Annotation::new(vec![Ann::Closed, Ann::Open]));
        assert!(!r2.covers(&Tuple::from_names(&["q", "r"])));
    }

    #[test]
    fn rel_part_strips_annotations_and_empties() {
        let mut t = AnnInstance::new();
        let r = RelSym::new("R_annot");
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert_empty_mark(r, Annotation::all_open(2));
        let rp = t.rel_part();
        assert_eq!(rp.tuple_count(), 1);
        assert!(rp.contains(r, &Tuple::new(vec![Value::c("a"), Value::null(0)])));
    }

    #[test]
    fn same_tuple_different_annotations_coexist() {
        // CSol_A can contain (a^op, ⊥1^cl) and (a^cl, ⊥2^op) in one relation.
        let mut t = AnnInstance::new();
        let r = RelSym::new("R_coexist");
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Open, Ann::Closed],
            ),
        );
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(2)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        assert_eq!(t.tuple_count(), 2);
    }

    #[test]
    fn covers_instance_checks_all_relations() {
        let mut t = AnnInstance::new();
        let r = RelSym::new("CovR");
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::c("b")],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let mut good = Instance::new();
        good.insert(r, Tuple::from_names(&["a", "zzz"]));
        assert!(t.covers_instance(&good));
        let mut bad = good.clone();
        bad.insert_names("Undeclared", &["u"]);
        assert!(!t.covers_instance(&bad));
    }

    #[test]
    fn valuation_preserves_annotations() {
        let mut t = AnnInstance::new();
        let r = RelSym::new("ValR");
        t.insert(
            r,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let v = Valuation::from_pairs([
            (NullId(0), ConstId::new("p")),
            (NullId(1), ConstId::new("q")),
        ]);
        let tv = t.apply(&v);
        let at0 = tv.tuples(r).next().unwrap();
        assert_eq!(at0.tuple, Tuple::from_names(&["p", "q"]));
        assert_eq!(at0.ann, Annotation::new(vec![Ann::Closed, Ann::Open]));
    }

    #[test]
    fn display_annotated_tuple() {
        let t = at(
            vec![Value::c("a"), Value::null(0)],
            vec![Ann::Closed, Ann::Open],
        );
        assert_eq!(t.to_string(), "(a^cl, ⊥0^op)");
    }
}
