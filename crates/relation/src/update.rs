//! Source-delta batches for streaming data exchange.
//!
//! An [`Update`] is a *batch* of insertions and retractions against a ground
//! source instance — the unit of work the incremental exchange pipeline
//! (`dx-engine`'s `IncrementalExchange`, `dx-core`'s `StreamSession`)
//! propagates through the chase and the compiled query plans. Batches are
//! **sets**, not sequences: applying an update to a source `S` produces
//! `S' = (S \ retracts) ∪ inserts`, so a tuple listed on both sides is
//! present afterwards (the insert wins), and listing a tuple twice is the
//! same as listing it once.
//!
//! [`Update::apply`] reports the *effective* delta — the tuples whose
//! membership actually changed — which is what the incremental maintenance
//! layers key their work off: a retraction of an absent tuple, or an insert
//! of a present one, is a no-op and triggers no propagation.

use crate::instance::Instance;
use crate::intern::RelSym;
use crate::tuple::Tuple;
use std::collections::BTreeSet;
use std::fmt;

/// A batch of source insertions and retractions (set semantics; see the
/// module docs for how overlapping inserts and retracts resolve).
///
/// ```
/// use dx_relation::{Instance, RelSym, Tuple, Update};
///
/// let mut source = Instance::new();
/// source.insert_names("E", &["a", "b"]);
///
/// let mut up = Update::new();
/// up.insert(RelSym::new("E"), Tuple::from_names(&["b", "c"]));
/// up.retract(RelSym::new("E"), Tuple::from_names(&["a", "b"]));
///
/// let applied = up.apply(&mut source);
/// assert_eq!(applied.inserted.len(), 1);
/// assert_eq!(applied.retracted.len(), 1);
/// assert!(source.contains(RelSym::new("E"), &Tuple::from_names(&["b", "c"])));
/// assert!(!source.contains(RelSym::new("E"), &Tuple::from_names(&["a", "b"])));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Update {
    /// Tuples to insert, as a set of `(relation, tuple)` pairs.
    inserts: BTreeSet<(RelSym, Tuple)>,
    /// Tuples to retract, as a set of `(relation, tuple)` pairs.
    retracts: BTreeSet<(RelSym, Tuple)>,
}

/// The effective delta an [`Update::apply`] call produced: only the tuples
/// whose source membership actually flipped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// Tuples newly present after the batch (absent before).
    pub inserted: Vec<(RelSym, Tuple)>,
    /// Tuples newly absent after the batch (present before).
    pub retracted: Vec<(RelSym, Tuple)>,
}

impl AppliedUpdate {
    /// Did the batch change anything at all?
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.retracted.is_empty()
    }

    /// The source relations touched by the effective delta, deduplicated.
    pub fn touched_rels(&self) -> BTreeSet<RelSym> {
        self.inserted
            .iter()
            .chain(self.retracted.iter())
            .map(|(r, _)| *r)
            .collect()
    }
}

impl Update {
    /// The empty batch.
    pub fn new() -> Update {
        Update::default()
    }

    /// Queue a tuple for insertion. If the same `(rel, tuple)` pair is also
    /// queued for retraction, the insert wins (the tuple is present after
    /// the batch).
    pub fn insert(&mut self, rel: RelSym, t: Tuple) -> &mut Update {
        self.inserts.insert((rel, t));
        self
    }

    /// Queue a tuple for retraction (see [`Update::insert`] for how
    /// overlapping inserts resolve).
    pub fn retract(&mut self, rel: RelSym, t: Tuple) -> &mut Update {
        self.retracts.insert((rel, t));
        self
    }

    /// Builder-style [`Update::insert`] taking names.
    pub fn insert_names(mut self, rel: &str, names: &[&str]) -> Update {
        self.inserts
            .insert((RelSym::new(rel), Tuple::from_names(names)));
        self
    }

    /// Builder-style [`Update::retract`] taking names.
    pub fn retract_names(mut self, rel: &str, names: &[&str]) -> Update {
        self.retracts
            .insert((RelSym::new(rel), Tuple::from_names(names)));
        self
    }

    /// The queued insertions, in `(relation, tuple)` order.
    pub fn inserts(&self) -> impl Iterator<Item = &(RelSym, Tuple)> + '_ {
        self.inserts.iter()
    }

    /// The queued retractions, in `(relation, tuple)` order. Pairs that are
    /// also queued for insertion are reported here too, but never take
    /// effect (the insert wins at [`Update::apply`] time).
    pub fn retracts(&self) -> impl Iterator<Item = &(RelSym, Tuple)> + '_ {
        self.retracts.iter()
    }

    /// Number of queued operations (inserts + retracts, before
    /// cancellation).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    /// Is the batch syntactically empty (no queued operations)?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }

    /// Every source relation named by a queued operation.
    pub fn rels(&self) -> BTreeSet<RelSym> {
        self.inserts
            .iter()
            .chain(self.retracts.iter())
            .map(|(r, _)| *r)
            .collect()
    }

    /// Apply the batch to `source` with set semantics (retractions first,
    /// then insertions, so an overlapping pair nets to "present") and
    /// return the effective delta.
    pub fn apply(&self, source: &mut Instance) -> AppliedUpdate {
        let mut out = AppliedUpdate::default();
        for (rel, t) in &self.retracts {
            if self.inserts.contains(&(*rel, t.clone())) {
                continue; // the insert wins; membership cannot flip to absent
            }
            if source.remove(*rel, t) {
                out.retracted.push((*rel, t.clone()));
            }
        }
        for (rel, t) in &self.inserts {
            if !source.contains(*rel, t) {
                source.insert(*rel, t.clone());
                out.inserted.push((*rel, t.clone()));
            }
        }
        out
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kw, set) in [("-", &self.retracts), ("+", &self.inserts)] {
            for (rel, t) in set {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                write!(f, "{kw}{rel}{t}")?;
            }
        }
        if first {
            write!(f, "(empty update)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: &str, b: &str) -> (RelSym, Tuple) {
        (RelSym::new("UpE"), Tuple::from_names(&[a, b]))
    }

    #[test]
    fn apply_reports_effective_delta_only() {
        let mut s = Instance::new();
        let (r, ab) = e("a", "b");
        s.insert(r, ab.clone());
        let up = Update::new()
            .insert_names("UpE", &["a", "b"]) // already present → no-op
            .insert_names("UpE", &["b", "c"]) // fresh → inserted
            .retract_names("UpE", &["x", "y"]); // absent → no-op
        let applied = up.apply(&mut s);
        assert_eq!(applied.inserted, vec![e("b", "c")]);
        assert!(applied.retracted.is_empty());
        assert_eq!(applied.touched_rels().len(), 1);
    }

    #[test]
    fn insert_wins_over_retract_of_same_tuple() {
        let mut s = Instance::new();
        let (r, ab) = e("a", "b");
        s.insert(r, ab.clone());
        let up = Update::new()
            .insert_names("UpE", &["a", "b"])
            .retract_names("UpE", &["a", "b"]);
        let applied = up.apply(&mut s);
        assert!(applied.is_noop(), "present before, present after");
        assert!(s.contains(r, &ab));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut s = Instance::new();
        s.insert(e("a", "b").0, e("a", "b").1);
        let before = s.clone();
        assert!(Update::new().apply(&mut s).is_noop());
        assert_eq!(s, before);
    }

    #[test]
    fn display_lists_retracts_then_inserts() {
        let up = Update::new()
            .insert_names("UpE", &["b", "c"])
            .retract_names("UpE", &["a", "b"]);
        let txt = up.to_string();
        assert!(
            txt.contains("-UpE(a, b)") && txt.contains("+UpE(b, c)"),
            "{txt}"
        );
    }
}
