//! Finite relations: sets of equal-arity tuples.

use crate::intern::ConstId;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{NullId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A finite relation: a set of tuples of a fixed arity.
///
/// Backed by a `BTreeSet` so iteration order (and therefore every derived
/// artifact: canonical solutions, displays, test expectations) is
/// deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build from tuples; panics if arities disagree.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// The arity of this relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert a tuple. Panics if the tuple's arity differs — arity errors are
    /// construction bugs, not runtime conditions.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.arity(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Remove a tuple.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Set inclusion `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// In-place union with another relation of the same arity.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
    }

    /// All values occurring in the relation.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter()).collect()
    }

    /// All nulls occurring in the relation.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.tuples.iter().flat_map(|t| t.nulls()).collect()
    }

    /// All constants occurring in the relation.
    pub fn consts(&self) -> BTreeSet<ConstId> {
        self.tuples.iter().flat_map(|t| t.consts()).collect()
    }

    /// Does every tuple consist of constants only?
    pub fn is_ground(&self) -> bool {
        self.tuples.iter().all(|t| t.is_ground())
    }

    /// Apply a valuation to every tuple (tuples may merge).
    pub fn apply(&self, v: &Valuation) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.apply(v)).collect(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Relation {
        Relation::from_tuples(
            2,
            [
                Tuple::from_names(&["a", "b"]),
                Tuple::from_names(&["a", "c"]),
            ],
        )
    }

    #[test]
    fn insert_dedups() {
        let mut r = abc();
        assert_eq!(r.len(), 2);
        assert!(!r.insert(Tuple::from_names(&["a", "b"])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from_names(&["only-one"]));
    }

    #[test]
    fn subset_and_union() {
        let r = abc();
        let mut s = Relation::new(2);
        s.insert(Tuple::from_names(&["a", "b"]));
        assert!(s.is_subset(&r));
        assert!(!r.is_subset(&s));
        s.union_with(&r);
        assert_eq!(s, r);
    }

    #[test]
    fn groundness_and_nulls() {
        let mut r = abc();
        assert!(r.is_ground());
        r.insert(Tuple::new(vec![Value::c("a"), Value::null(9)]));
        assert!(!r.is_ground());
        assert_eq!(r.nulls().len(), 1);
    }

    #[test]
    fn valuation_can_merge_tuples() {
        // {(a,⊥0), (a,⊥1)} under ⊥0,⊥1 ↦ b collapses to one tuple.
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![Value::c("a"), Value::null(0)]));
        r.insert(Tuple::new(vec![Value::c("a"), Value::null(1)]));
        let v = Valuation::from_pairs([
            (NullId(0), ConstId::new("b")),
            (NullId(1), ConstId::new("b")),
        ]);
        let rv = r.apply(&v);
        assert_eq!(rv.len(), 1);
        assert!(rv.contains(&Tuple::from_names(&["a", "b"])));
    }

    #[test]
    fn active_domain() {
        let r = abc();
        assert_eq!(r.active_domain().len(), 3);
        assert_eq!(r.consts().len(), 3);
    }
}
