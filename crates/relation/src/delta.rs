//! An incrementally maintained instance index with O(delta) apply/undo.
//!
//! [`InstanceIndex`](crate::index::InstanceIndex) is an immutable snapshot:
//! consumers that probe many *slightly different* instances (the `Rep_A`
//! valuation search in `dx-solver` walks thousands of candidate instances
//! that differ from each other by a handful of tuples) pay a full rebuild
//! per candidate. [`DeltaIndex`] is the mutable alternative:
//!
//! * tuples are **reference counted**, so the store keeps set semantics
//!   while callers apply and undo overlapping deltas in any (LIFO) order —
//!   two search branches valuing distinct nulls onto the same ground tuple
//!   simply bump the count;
//! * each relation keeps the same per-column hash postings as
//!   [`RelationIndex`](crate::index::RelationIndex) (slot ids instead of
//!   build-time ids), so pattern probes and selectivity estimates behave
//!   identically on identical tuple sets;
//! * a plain [`Instance`] is maintained in lock-step, giving fallback
//!   consumers (tree-walking evaluators, witness extraction) a zero-cost
//!   materialized view: [`DeltaIndex::instance`] is always exactly the set
//!   of live tuples.
//!
//! Removal assumes the backtracking discipline of its consumers: deltas are
//! undone newest-first, so posting-list removals probe from the tail (an
//! O(1) hit on the LIFO path, linear only on out-of-order removals).

use crate::fxmap::FastMap;
use crate::instance::Instance;
use crate::intern::RelSym;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;

/// One relation's mutable index: refcounted tuples in insertion-ordered
/// slots plus per-column postings of slot ids.
struct DeltaRelation {
    arity: usize,
    /// Slot id → live tuple (`None` = freed slot, reusable).
    slots: Vec<Option<Tuple>>,
    /// Freed slot ids (reused newest-first).
    free: Vec<u32>,
    /// Live tuple → (slot id, reference count).
    refs: FastMap<Tuple, (u32, u32)>,
    /// `by_col[c][v]` = slot ids of live tuples with value `v` at column
    /// `c`, in insertion order.
    by_col: Vec<FastMap<Value, Vec<u32>>>,
}

impl DeltaRelation {
    fn new(arity: usize) -> Self {
        DeltaRelation {
            arity,
            slots: Vec::new(),
            free: Vec::new(),
            refs: FastMap::default(),
            by_col: vec![FastMap::default(); arity],
        }
    }

    /// Number of live (distinct) tuples.
    fn len(&self) -> usize {
        self.refs.len()
    }

    /// Bump or insert; returns `true` when the tuple became visible
    /// (count 0 → 1).
    fn insert(&mut self, t: Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity, "tuple arity");
        if let Some((_, count)) = self.refs.get_mut(&t) {
            *count += 1;
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(t.clone());
                s
            }
            None => {
                self.slots.push(Some(t.clone()));
                (self.slots.len() - 1) as u32
            }
        };
        for (c, v) in t.iter().enumerate() {
            self.by_col[c].entry(v).or_default().push(slot);
        }
        self.refs.insert(t, (slot, 1));
        true
    }

    /// Unbump or remove; returns `true` when the tuple became invisible
    /// (count 1 → 0). Panics if the tuple is not live (an unmatched undo is
    /// a caller bug, not a runtime condition).
    fn remove(&mut self, t: &Tuple) -> bool {
        let (slot, count) = self
            .refs
            .get_mut(t)
            .expect("DeltaRelation::remove of a tuple that is not live");
        if *count > 1 {
            *count -= 1;
            return false;
        }
        let slot = *slot;
        self.refs.remove(t);
        for (c, v) in t.iter().enumerate() {
            let posting = self.by_col[c]
                .get_mut(&v)
                .expect("posting list exists for a live tuple");
            // LIFO discipline: the undone tuple is almost always the newest
            // entry of its posting lists.
            let pos = posting
                .iter()
                .rposition(|&s| s == slot)
                .expect("slot posted for a live tuple");
            posting.remove(pos);
            if posting.is_empty() {
                self.by_col[c].remove(&v);
            }
        }
        self.slots[slot as usize] = None;
        self.free.push(slot);
        true
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.refs.contains_key(t)
    }

    /// Posting list of `(col, value)` (empty when absent).
    fn probe(&self, col: usize, value: Value) -> &[u32] {
        self.by_col[col]
            .get(&value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The selectivity estimate of [`RelationIndex`]: the tightest bound
    /// column's posting length, or the live count when nothing is bound.
    fn selectivity(&self, pattern: &[Option<Value>]) -> usize {
        debug_assert_eq!(pattern.len(), self.arity);
        pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| self.probe(c, v).len()))
            .min()
            .unwrap_or_else(|| self.len())
    }

    fn for_each_matching(&self, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        debug_assert_eq!(pattern.len(), self.arity);
        let matches = |t: &Tuple| {
            pattern
                .iter()
                .enumerate()
                .all(|(c, p)| p.is_none_or(|pv| t.get(c) == pv))
        };
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (self.probe(c, v).len(), c, v)))
            .min();
        match best {
            None => {
                for t in self.slots.iter().flatten() {
                    f(t);
                }
            }
            Some((_, col, v)) => {
                for &slot in self.probe(col, v) {
                    let t = self.slots[slot as usize]
                        .as_ref()
                        .expect("posted slots are live");
                    if matches(t) {
                        f(t);
                    }
                }
            }
        }
    }
}

/// A mutable, incrementally indexed instance (see the module docs).
#[derive(Default)]
pub struct DeltaIndex {
    instance: Instance,
    rels: BTreeMap<RelSym, DeltaRelation>,
}

impl DeltaIndex {
    /// The empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index every relation of `inst` (each tuple at count 1).
    pub fn from_instance(inst: &Instance) -> Self {
        let mut d = DeltaIndex::new();
        for (rel, r) in inst.relations() {
            d.declare(rel, r.arity());
            for t in r.iter() {
                d.insert(rel, t.clone());
            }
        }
        d
    }

    /// Declare a relation (so its arity is known even while it is empty) —
    /// the counterpart of [`Instance::declare`].
    pub fn declare(&mut self, rel: RelSym, arity: usize) {
        self.rels
            .entry(rel)
            .or_insert_with(|| DeltaRelation::new(arity));
        self.instance.declare(rel, arity);
    }

    /// Apply a `+tuple` delta: bump the reference count, making the tuple
    /// visible on count 0 → 1 (the return value).
    pub fn insert(&mut self, rel: RelSym, t: Tuple) -> bool {
        let arity = t.arity();
        let entry = self
            .rels
            .entry(rel)
            .or_insert_with(|| DeltaRelation::new(arity));
        if entry.insert(t.clone()) {
            self.instance.insert(rel, t);
            true
        } else {
            false
        }
    }

    /// Undo a `+tuple` delta: unbump, removing the tuple from view on
    /// count 1 → 0 (the return value). Panics when the tuple is not live.
    pub fn remove(&mut self, rel: RelSym, t: &Tuple) -> bool {
        let entry = self
            .rels
            .get_mut(&rel)
            .expect("DeltaIndex::remove from an undeclared relation");
        if entry.remove(t) {
            self.instance.remove(rel, t);
            true
        } else {
            false
        }
    }

    /// Is `t` currently visible in `rel`?
    pub fn contains(&self, rel: RelSym, t: &Tuple) -> bool {
        self.rels.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// The materialized view: exactly the set of live tuples, with declared
    /// relations preserved.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arity of `rel`, if declared.
    pub fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.rels.get(&rel).map(|r| r.arity)
    }

    /// Number of live tuples in `rel` (0 when absent).
    pub fn rel_len(&self, rel: RelSym) -> usize {
        self.rels.get(&rel).map_or(0, |r| r.len())
    }

    /// Selectivity estimate for a partially bound pattern (see
    /// [`RelationIndex::selectivity`](crate::index::RelationIndex::selectivity)).
    pub fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        self.rels.get(&rel).map_or(0, |r| r.selectivity(pattern))
    }

    /// Invoke `f` on every live tuple of `rel` matching `pattern` on all
    /// bound positions.
    pub fn for_each_matching(
        &self,
        rel: RelSym,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&Tuple),
    ) {
        if let Some(r) = self.rels.get(&rel) {
            r.for_each_matching(pattern, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InstanceIndex;

    fn rel() -> RelSym {
        RelSym::new("DlR")
    }

    fn sample() -> Instance {
        let mut i = Instance::new();
        i.insert_names("DlR", &["a", "x"]);
        i.insert_names("DlR", &["a", "y"]);
        i.insert(rel(), Tuple::new(vec![Value::c("b"), Value::null(3)]));
        i
    }

    /// The delta store built from an instance answers probes exactly like a
    /// snapshot index of the same instance.
    #[test]
    fn matches_snapshot_index_after_build() {
        let inst = sample();
        let delta = DeltaIndex::from_instance(&inst);
        let snap = InstanceIndex::build(&inst);
        assert_eq!(delta.instance(), &inst);
        for pattern in [
            vec![Some(Value::c("a")), None],
            vec![None, Some(Value::c("x"))],
            vec![None, Some(Value::null(3))],
            vec![None, None],
            vec![Some(Value::c("zzz")), None],
        ] {
            assert_eq!(
                delta.selectivity(rel(), &pattern),
                crate::index::RelationIndex::build(inst.relation(rel()).unwrap())
                    .selectivity(&pattern)
            );
            let mut via_delta = Vec::new();
            delta.for_each_matching(rel(), &pattern, &mut |t| via_delta.push(t.clone()));
            let mut via_snap = Vec::new();
            if let Some(ri) = snap.relation(rel()) {
                for id in ri.matching(&pattern) {
                    via_snap.push(ri.get(id).clone());
                }
            }
            via_delta.sort();
            via_snap.sort();
            assert_eq!(via_delta, via_snap, "pattern {pattern:?}");
        }
    }

    /// Insert/remove round-trips restore the exact previous state, at any
    /// nesting depth (the backtracking protocol).
    #[test]
    fn lifo_apply_undo_restores_state() {
        let inst = sample();
        let mut delta = DeltaIndex::from_instance(&inst);
        let t1 = Tuple::from_names(&["c", "z"]);
        let t2 = Tuple::from_names(&["c", "w"]);
        assert!(delta.insert(rel(), t1.clone()));
        assert!(delta.insert(rel(), t2.clone()));
        assert_eq!(delta.rel_len(rel()), 5);
        assert_eq!(delta.selectivity(rel(), &[Some(Value::c("c")), None]), 2);
        assert!(delta.remove(rel(), &t2));
        assert!(delta.remove(rel(), &t1));
        assert_eq!(delta.instance(), &inst);
        assert_eq!(delta.selectivity(rel(), &[Some(Value::c("c")), None]), 0);
    }

    /// Reference counting: overlapping deltas keep set semantics.
    #[test]
    fn refcounts_keep_set_semantics() {
        let mut delta = DeltaIndex::new();
        delta.declare(rel(), 2);
        let t = Tuple::from_names(&["a", "b"]);
        assert!(delta.insert(rel(), t.clone()));
        assert!(!delta.insert(rel(), t.clone()), "second insert only bumps");
        assert_eq!(delta.rel_len(rel()), 1);
        assert_eq!(delta.instance().tuple_count(), 1);
        assert!(!delta.remove(rel(), &t), "first remove only unbumps");
        assert!(delta.contains(rel(), &t));
        assert!(delta.remove(rel(), &t));
        assert!(!delta.contains(rel(), &t));
        assert!(delta.instance().is_empty());
        // The relation stays declared (mirrors `rel_part` semantics).
        assert_eq!(delta.rel_arity(rel()), Some(2));
        assert_eq!(delta.instance().relation(rel()).map(|r| r.arity()), Some(2));
    }

    /// Out-of-order removal still works (linear posting scan).
    #[test]
    fn non_lifo_removal_is_correct() {
        let mut delta = DeltaIndex::new();
        delta.declare(rel(), 1);
        let ts: Vec<Tuple> = ["p", "q", "r"]
            .iter()
            .map(|n| Tuple::from_names(&[n]))
            .collect();
        for t in &ts {
            delta.insert(rel(), t.clone());
        }
        delta.remove(rel(), &ts[0]);
        let mut seen = Vec::new();
        delta.for_each_matching(rel(), &[None], &mut |t| seen.push(t.clone()));
        seen.sort();
        assert_eq!(seen, vec![ts[1].clone(), ts[2].clone()]);
        // Freed slot is reused.
        delta.insert(rel(), Tuple::from_names(&["s"]));
        assert_eq!(delta.rel_len(rel()), 3);
    }
}
