//! An incrementally maintained instance index with O(delta) apply/undo.
//!
//! [`InstanceIndex`](crate::index::InstanceIndex) is an immutable snapshot:
//! consumers that probe many *slightly different* instances (the `Rep_A`
//! valuation search in `dx-solver` walks thousands of candidate instances
//! that differ from each other by a handful of tuples) pay a full rebuild
//! per candidate. [`DeltaIndex`] is the mutable alternative:
//!
//! * tuples are **reference counted**, so the store keeps set semantics
//!   while callers apply and undo overlapping deltas in any (LIFO) order —
//!   two search branches valuing distinct nulls onto the same ground tuple
//!   simply bump the count;
//! * each relation keeps the same per-column hash postings as
//!   [`RelationIndex`](crate::index::RelationIndex) (slot ids instead of
//!   build-time ids), so pattern probes and selectivity estimates behave
//!   identically on identical tuple sets;
//! * a plain [`Instance`] is maintained in lock-step, giving fallback
//!   consumers (tree-walking evaluators, witness extraction) a zero-cost
//!   materialized view: [`DeltaIndex::instance`] is always exactly the set
//!   of live tuples.
//!
//! Removal assumes the backtracking discipline of its consumers: deltas are
//! undone newest-first, so posting-list removals probe from the tail (an
//! O(1) hit on the LIFO path, linear only on out-of-order removals).
//!
//! Work metrics (`DX_OBS=1`): `relation.delta.applies` / `.undos` count
//! apply/undo deltas, `.refcount_churn` the bumps that did not change
//! visibility, `.postings_touched` the per-column posting updates, and
//! `.probes` the indexed pattern probes.

use crate::fxmap::FastMap;
use crate::instance::Instance;
use crate::intern::RelSym;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One relation's mutable index: refcounted tuples in insertion-ordered
/// slots plus per-column postings of slot ids.
struct DeltaRelation {
    arity: usize,
    /// Slot id → live tuple (`None` = freed slot, reusable).
    slots: Vec<Option<Tuple>>,
    /// Freed slot ids (reused newest-first).
    free: Vec<u32>,
    /// Live tuple → (slot id, reference count).
    refs: FastMap<Tuple, (u32, u32)>,
    /// `by_col[c][v]` = slot ids of live tuples with value `v` at column
    /// `c`, in insertion order.
    by_col: Vec<FastMap<Value, Vec<u32>>>,
}

impl DeltaRelation {
    fn new(arity: usize) -> Self {
        DeltaRelation {
            arity,
            slots: Vec::new(),
            free: Vec::new(),
            refs: FastMap::default(),
            by_col: vec![FastMap::default(); arity],
        }
    }

    /// Number of live (distinct) tuples.
    fn len(&self) -> usize {
        self.refs.len()
    }

    /// Bump or insert; returns `true` when the tuple became visible
    /// (count 0 → 1).
    fn insert(&mut self, t: Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity, "tuple arity");
        if let Some((_, count)) = self.refs.get_mut(&t) {
            *count += 1;
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(t.clone());
                s
            }
            None => {
                self.slots.push(Some(t.clone()));
                (self.slots.len() - 1) as u32
            }
        };
        for (c, v) in t.iter().enumerate() {
            self.by_col[c].entry(v).or_default().push(slot);
        }
        self.refs.insert(t, (slot, 1));
        true
    }

    /// Unbump or remove; returns `true` when the tuple became invisible
    /// (count 1 → 0). Panics if the tuple is not live (an unmatched undo is
    /// a caller bug, not a runtime condition).
    fn remove(&mut self, t: &Tuple) -> bool {
        let (slot, count) = self
            .refs
            .get_mut(t)
            .expect("DeltaRelation::remove of a tuple that is not live");
        if *count > 1 {
            *count -= 1;
            return false;
        }
        let slot = *slot;
        self.refs.remove(t);
        for (c, v) in t.iter().enumerate() {
            let posting = self.by_col[c]
                .get_mut(&v)
                .expect("posting list exists for a live tuple");
            // LIFO discipline: the undone tuple is almost always the newest
            // entry of its posting lists.
            let pos = posting
                .iter()
                .rposition(|&s| s == slot)
                .expect("slot posted for a live tuple");
            posting.remove(pos);
            if posting.is_empty() {
                self.by_col[c].remove(&v);
            }
        }
        self.slots[slot as usize] = None;
        self.free.push(slot);
        true
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.refs.contains_key(t)
    }

    /// Posting list of `(col, value)` (empty when absent).
    fn probe(&self, col: usize, value: Value) -> &[u32] {
        self.by_col[col]
            .get(&value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The selectivity estimate of [`RelationIndex`]: the tightest bound
    /// column's posting length, or the live count when nothing is bound.
    fn selectivity(&self, pattern: &[Option<Value>]) -> usize {
        debug_assert_eq!(pattern.len(), self.arity);
        pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| self.probe(c, v).len()))
            .min()
            .unwrap_or_else(|| self.len())
    }

    fn for_each_matching(&self, pattern: &[Option<Value>], f: &mut dyn FnMut(&Tuple)) {
        debug_assert_eq!(pattern.len(), self.arity);
        let matches = |t: &Tuple| {
            pattern
                .iter()
                .enumerate()
                .all(|(c, p)| p.is_none_or(|pv| t.get(c) == pv))
        };
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (self.probe(c, v).len(), c, v)))
            .min();
        match best {
            None => {
                for t in self.slots.iter().flatten() {
                    f(t);
                }
            }
            Some((_, col, v)) => {
                for &slot in self.probe(col, v) {
                    let t = self.slots[slot as usize]
                        .as_ref()
                        .expect("posted slots are live");
                    if matches(t) {
                        f(t);
                    }
                }
            }
        }
    }
}

/// A [`DeltaIndex`] footprint reading (see [`DeltaIndex::mem_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaMemStats {
    /// Live (distinct) tuples across all relations.
    pub live_slots: u64,
    /// Posting-list entries across all per-column maps (= live tuples ×
    /// arity, summed per relation).
    pub posting_entries: u64,
    /// Sum of tuple reference counts (≥ `live_slots`; the excess is
    /// overlap between un-undone deltas).
    pub refcount_total: u64,
}

/// A mutable, incrementally indexed instance (see the module docs).
#[derive(Default)]
pub struct DeltaIndex {
    instance: Instance,
    rels: BTreeMap<RelSym, DeltaRelation>,
}

impl DeltaIndex {
    /// The empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index every relation of `inst` (each tuple at count 1).
    pub fn from_instance(inst: &Instance) -> Self {
        let mut d = DeltaIndex::new();
        for (rel, r) in inst.relations() {
            d.declare(rel, r.arity());
            for t in r.iter() {
                d.insert(rel, t.clone());
            }
        }
        d
    }

    /// Declare a relation (so its arity is known even while it is empty) —
    /// the counterpart of [`Instance::declare`].
    pub fn declare(&mut self, rel: RelSym, arity: usize) {
        self.rels
            .entry(rel)
            .or_insert_with(|| DeltaRelation::new(arity));
        self.instance.declare(rel, arity);
    }

    /// Apply a `+tuple` delta: bump the reference count, making the tuple
    /// visible on count 0 → 1 (the return value).
    pub fn insert(&mut self, rel: RelSym, t: Tuple) -> bool {
        dx_obs::count!("relation.delta.applies");
        let arity = t.arity();
        let entry = self
            .rels
            .entry(rel)
            .or_insert_with(|| DeltaRelation::new(arity));
        if entry.insert(t.clone()) {
            dx_obs::count!("relation.delta.postings_touched", arity);
            self.instance.insert(rel, t);
            true
        } else {
            dx_obs::count!("relation.delta.refcount_churn");
            false
        }
    }

    /// Undo a `+tuple` delta: unbump, removing the tuple from view on
    /// count 1 → 0 (the return value). Panics when the tuple is not live.
    pub fn remove(&mut self, rel: RelSym, t: &Tuple) -> bool {
        dx_obs::count!("relation.delta.undos");
        let entry = self
            .rels
            .get_mut(&rel)
            .expect("DeltaIndex::remove from an undeclared relation");
        if entry.remove(t) {
            dx_obs::count!("relation.delta.postings_touched", t.arity());
            self.instance.remove(rel, t);
            true
        } else {
            dx_obs::count!("relation.delta.refcount_churn");
            false
        }
    }

    /// Is `t` currently visible in `rel`?
    pub fn contains(&self, rel: RelSym, t: &Tuple) -> bool {
        self.rels.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// The materialized view: exactly the set of live tuples, with declared
    /// relations preserved.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arity of `rel`, if declared.
    pub fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.rels.get(&rel).map(|r| r.arity)
    }

    /// Number of live tuples in `rel` (0 when absent).
    pub fn rel_len(&self, rel: RelSym) -> usize {
        self.rels.get(&rel).map_or(0, |r| r.len())
    }

    /// Selectivity estimate for a partially bound pattern (see
    /// [`RelationIndex::selectivity`](crate::index::RelationIndex::selectivity)).
    pub fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        self.rels.get(&rel).map_or(0, |r| r.selectivity(pattern))
    }

    /// Current footprint of the index, for memory-accounting gauges
    /// (`mem.delta.*` — see `dx_obs::mem`): live (distinct) tuples
    /// across all relations, posting-list entries across all per-column
    /// maps, and the sum of reference counts. All three are O(relations
    /// + posting lists) reads of maintained state — no tuple scans.
    pub fn mem_stats(&self) -> DeltaMemStats {
        let mut stats = DeltaMemStats::default();
        for r in self.rels.values() {
            stats.live_slots += r.refs.len() as u64;
            stats.posting_entries += r
                .by_col
                .iter()
                .flat_map(|col| col.values())
                .map(|posting| posting.len() as u64)
                .sum::<u64>();
            stats.refcount_total += r.refs.values().map(|&(_, count)| count as u64).sum::<u64>();
        }
        stats
    }

    /// Invoke `f` on every live tuple of `rel` matching `pattern` on all
    /// bound positions.
    pub fn for_each_matching(
        &self,
        rel: RelSym,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&Tuple),
    ) {
        dx_obs::count!("relation.delta.probes");
        if let Some(r) = self.rels.get(&rel) {
            r.for_each_matching(pattern, f);
        }
    }

    /// Snapshot the current live set as an immutable, shareable
    /// [`FrozenIndex`]. O(live tuples) once; the result is `Arc`'d so
    /// parallel workers can each layer a private [`OverlayIndex`] on top
    /// without copying or locking the base.
    pub fn freeze(&self) -> Arc<FrozenIndex> {
        Arc::new(FrozenIndex {
            base: DeltaIndex::from_instance(self.instance()),
        })
    }
}

/// An immutable snapshot of a [`DeltaIndex`]'s live set (see
/// [`DeltaIndex::freeze`]). Shared read-only across worker threads; all
/// mutation happens in per-worker [`OverlayIndex`] layers.
pub struct FrozenIndex {
    base: DeltaIndex,
}

impl FrozenIndex {
    /// The materialized snapshot view.
    pub fn instance(&self) -> &Instance {
        self.base.instance()
    }

    /// Is `t` in the snapshot?
    pub fn contains(&self, rel: RelSym, t: &Tuple) -> bool {
        self.base.contains(rel, t)
    }

    /// The arity of `rel`, if declared at freeze time.
    pub fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.base.rel_arity(rel)
    }

    /// Number of snapshot tuples in `rel`.
    pub fn rel_len(&self, rel: RelSym) -> usize {
        self.base.rel_len(rel)
    }

    /// Selectivity estimate over the snapshot.
    pub fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        self.base.selectivity(rel, pattern)
    }

    /// Probe the snapshot (see [`DeltaIndex::for_each_matching`]).
    pub fn for_each_matching(
        &self,
        rel: RelSym,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&Tuple),
    ) {
        self.base.for_each_matching(rel, pattern, f)
    }
}

/// A private mutable layer over a shared [`FrozenIndex`].
///
/// Parallel sweeps hand every worker its own overlay over one frozen
/// base: apply/undo traffic stays worker-local while the (large) base is
/// shared by reference. The visible set is always `base ∪ over`, with
/// the two parts kept **disjoint**:
///
/// * inserting a tuple the base already contains only bumps a local
///   refcount (`base_refs`) — set semantics exactly as if the base
///   tuples had been inserted first into one [`DeltaIndex`];
/// * inserting a new tuple goes into the private `over` layer (its own
///   [`DeltaIndex`]), and into the combined materialized [`Instance`]
///   maintained in lock-step.
///
/// The LIFO backtracking discipline of [`DeltaIndex`] carries over, with
/// one extra rule: an overlay never removes a base tuple below its base
/// visibility (callers only undo their own inserts; an unmatched undo
/// panics, same as [`DeltaIndex::remove`]).
///
/// Probe results are set-equal to a sequential [`DeltaIndex`] holding
/// the same live set, but iteration *order* may differ (base tuples
/// enumerate before overlay tuples): consumers normalize by sorting, as
/// the query executor already does.
pub struct OverlayIndex {
    base: Arc<FrozenIndex>,
    /// Tuples visible here but not in the base (disjoint from it).
    over: DeltaIndex,
    /// Extra reference counts for tuples that *are* in the base.
    base_refs: BTreeMap<RelSym, FastMap<Tuple, u32>>,
    /// Combined materialized view (base instance clone, lock-step).
    instance: Instance,
}

impl OverlayIndex {
    /// A fresh overlay over `base` (visible set = the snapshot).
    pub fn new(base: Arc<FrozenIndex>) -> Self {
        let instance = base.instance().clone();
        let mut over = DeltaIndex::new();
        for (rel, r) in base.instance().relations() {
            over.declare(rel, r.arity());
        }
        OverlayIndex {
            base,
            over,
            base_refs: BTreeMap::new(),
            instance,
        }
    }

    /// The shared frozen base this overlay layers over.
    pub fn base(&self) -> &Arc<FrozenIndex> {
        &self.base
    }

    /// Declare a relation (counterpart of [`DeltaIndex::declare`]).
    pub fn declare(&mut self, rel: RelSym, arity: usize) {
        self.over.declare(rel, arity);
        self.instance.declare(rel, arity);
    }

    /// Apply a `+tuple` delta; returns `true` when the tuple became
    /// visible (it was in neither the base nor the overlay).
    pub fn insert(&mut self, rel: RelSym, t: Tuple) -> bool {
        if self.base.contains(rel, &t) {
            dx_obs::count!("relation.delta.applies");
            dx_obs::count!("relation.delta.refcount_churn");
            *self.base_refs.entry(rel).or_default().entry(t).or_insert(0) += 1;
            return false;
        }
        let became_visible = self.over.insert(rel, t.clone());
        if became_visible {
            self.instance.insert(rel, t);
        }
        became_visible
    }

    /// Undo a `+tuple` delta; returns `true` when the tuple became
    /// invisible. Panics on an unmatched undo — including an attempt to
    /// remove a base tuple that this overlay never re-inserted.
    pub fn remove(&mut self, rel: RelSym, t: &Tuple) -> bool {
        if self.base.contains(rel, t) {
            dx_obs::count!("relation.delta.undos");
            dx_obs::count!("relation.delta.refcount_churn");
            let count = self
                .base_refs
                .get_mut(&rel)
                .and_then(|m| m.get_mut(t))
                .expect("OverlayIndex::remove of a base tuple that was never re-inserted");
            *count -= 1;
            if *count == 0 {
                self.base_refs.get_mut(&rel).expect("present").remove(t);
            }
            return false;
        }
        let became_invisible = self.over.remove(rel, t);
        if became_invisible {
            self.instance.remove(rel, t);
        }
        became_invisible
    }

    /// Is `t` currently visible (in the base or the overlay)?
    pub fn contains(&self, rel: RelSym, t: &Tuple) -> bool {
        self.base.contains(rel, t) || self.over.contains(rel, t)
    }

    /// The combined materialized view (base ∪ overlay).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arity of `rel`, if declared in either layer.
    pub fn rel_arity(&self, rel: RelSym) -> Option<usize> {
        self.base.rel_arity(rel).or(self.over.rel_arity(rel))
    }

    /// Number of visible tuples in `rel` (exact: the layers are disjoint).
    pub fn rel_len(&self, rel: RelSym) -> usize {
        self.base.rel_len(rel) + self.over.rel_len(rel)
    }

    /// Selectivity estimate: the sum of the per-layer estimates (a valid
    /// bound since the layers are disjoint; it may be tighter than a
    /// single-store estimate when the layers bound on different columns,
    /// which only influences probe-order heuristics, never results).
    pub fn selectivity(&self, rel: RelSym, pattern: &[Option<Value>]) -> usize {
        self.base.selectivity(rel, pattern) + self.over.selectivity(rel, pattern)
    }

    /// Invoke `f` on every visible tuple of `rel` matching `pattern`:
    /// base tuples first, then overlay tuples (each exactly once).
    pub fn for_each_matching(
        &self,
        rel: RelSym,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&Tuple),
    ) {
        self.base.for_each_matching(rel, pattern, f);
        self.over.for_each_matching(rel, pattern, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InstanceIndex;

    fn rel() -> RelSym {
        RelSym::new("DlR")
    }

    fn sample() -> Instance {
        let mut i = Instance::new();
        i.insert_names("DlR", &["a", "x"]);
        i.insert_names("DlR", &["a", "y"]);
        i.insert(rel(), Tuple::new(vec![Value::c("b"), Value::null(3)]));
        i
    }

    /// The delta store built from an instance answers probes exactly like a
    /// snapshot index of the same instance.
    #[test]
    fn matches_snapshot_index_after_build() {
        let inst = sample();
        let delta = DeltaIndex::from_instance(&inst);
        let snap = InstanceIndex::build(&inst);
        assert_eq!(delta.instance(), &inst);
        for pattern in [
            vec![Some(Value::c("a")), None],
            vec![None, Some(Value::c("x"))],
            vec![None, Some(Value::null(3))],
            vec![None, None],
            vec![Some(Value::c("zzz")), None],
        ] {
            assert_eq!(
                delta.selectivity(rel(), &pattern),
                crate::index::RelationIndex::build(inst.relation(rel()).unwrap())
                    .selectivity(&pattern)
            );
            let mut via_delta = Vec::new();
            delta.for_each_matching(rel(), &pattern, &mut |t| via_delta.push(t.clone()));
            let mut via_snap = Vec::new();
            if let Some(ri) = snap.relation(rel()) {
                for id in ri.matching(&pattern) {
                    via_snap.push(ri.get(id).clone());
                }
            }
            via_delta.sort();
            via_snap.sort();
            assert_eq!(via_delta, via_snap, "pattern {pattern:?}");
        }
    }

    /// Insert/remove round-trips restore the exact previous state, at any
    /// nesting depth (the backtracking protocol).
    #[test]
    fn lifo_apply_undo_restores_state() {
        let inst = sample();
        let mut delta = DeltaIndex::from_instance(&inst);
        let t1 = Tuple::from_names(&["c", "z"]);
        let t2 = Tuple::from_names(&["c", "w"]);
        assert!(delta.insert(rel(), t1.clone()));
        assert!(delta.insert(rel(), t2.clone()));
        assert_eq!(delta.rel_len(rel()), 5);
        assert_eq!(delta.selectivity(rel(), &[Some(Value::c("c")), None]), 2);
        assert!(delta.remove(rel(), &t2));
        assert!(delta.remove(rel(), &t1));
        assert_eq!(delta.instance(), &inst);
        assert_eq!(delta.selectivity(rel(), &[Some(Value::c("c")), None]), 0);
    }

    /// Reference counting: overlapping deltas keep set semantics.
    #[test]
    fn refcounts_keep_set_semantics() {
        let mut delta = DeltaIndex::new();
        delta.declare(rel(), 2);
        let t = Tuple::from_names(&["a", "b"]);
        assert!(delta.insert(rel(), t.clone()));
        assert!(!delta.insert(rel(), t.clone()), "second insert only bumps");
        assert_eq!(delta.rel_len(rel()), 1);
        assert_eq!(delta.instance().tuple_count(), 1);
        assert!(!delta.remove(rel(), &t), "first remove only unbumps");
        assert!(delta.contains(rel(), &t));
        assert!(delta.remove(rel(), &t));
        assert!(!delta.contains(rel(), &t));
        assert!(delta.instance().is_empty());
        // The relation stays declared (mirrors `rel_part` semantics).
        assert_eq!(delta.rel_arity(rel()), Some(2));
        assert_eq!(delta.instance().relation(rel()).map(|r| r.arity()), Some(2));
    }

    /// Internal-invariant checker for the fuzz test: the slot map, the
    /// refcount table, the per-column postings and the lock-step instance
    /// view must all describe the same set of live tuples, with the
    /// reference counts `expected` predicts.
    fn assert_consistent(delta: &DeltaIndex, expected: &BTreeMap<(RelSym, Tuple), u32>) {
        for (rel, dr) in &delta.rels {
            let live: Vec<(u32, &Tuple)> = dr
                .slots
                .iter()
                .enumerate()
                .filter_map(|(s, t)| t.as_ref().map(|t| (s as u32, t)))
                .collect();
            assert_eq!(live.len(), dr.refs.len(), "live slots == refcount entries");
            for (slot, tuple) in &live {
                let &(rslot, count) = dr.refs.get(*tuple).expect("live slot has a refcount");
                assert_eq!(rslot, *slot, "refs point at the owning slot");
                assert_eq!(
                    Some(&count),
                    expected.get(&(*rel, (*tuple).clone())),
                    "refcount of {tuple} in {rel}"
                );
            }
            for &f in &dr.free {
                assert!(dr.slots[f as usize].is_none(), "free slots are vacated");
            }
            assert_eq!(
                dr.free.len() + live.len(),
                dr.slots.len(),
                "every slot is live or free"
            );
            // Postings: exactly one entry per (live tuple, column), on a
            // live slot whose tuple carries the value at that column.
            let mut posted = 0usize;
            for (c, col) in dr.by_col.iter().enumerate() {
                for (v, slots) in col.iter() {
                    assert!(!slots.is_empty(), "empty posting lists are pruned");
                    for &s in slots {
                        let t = dr.slots[s as usize]
                            .as_ref()
                            .expect("posted slots are live");
                        assert_eq!(t.get(c), *v, "posting value matches the tuple");
                        posted += 1;
                    }
                }
            }
            assert_eq!(posted, live.len() * dr.arity, "one posting per live cell");
            // The instance view is exactly the live set.
            let view: Vec<&Tuple> = delta.instance.tuples(*rel).collect();
            assert_eq!(view.len(), live.len());
            for t in view {
                assert!(dr.refs.contains_key(t), "view tuple is live");
            }
        }
    }

    /// Probe equality against a freshly built store over the same instance:
    /// `for_each_matching` results and selectivities agree on a pattern
    /// battery derived from the instance's values.
    fn assert_probes_match_fresh(delta: &DeltaIndex) {
        let fresh = DeltaIndex::from_instance(delta.instance());
        for (rel, r) in delta.instance().relations() {
            let mut values: Vec<Value> = r.active_domain().into_iter().collect();
            values.push(Value::c("fz-missing"));
            let mut patterns: Vec<Vec<Option<Value>>> = vec![vec![None; r.arity()]];
            for c in 0..r.arity() {
                for &v in &values {
                    let mut p = vec![None; r.arity()];
                    p[c] = Some(v);
                    patterns.push(p);
                }
            }
            for p in patterns {
                assert_eq!(delta.selectivity(rel, &p), fresh.selectivity(rel, &p));
                let mut a = Vec::new();
                delta.for_each_matching(rel, &p, &mut |t| a.push(t.clone()));
                let mut b = Vec::new();
                fresh.for_each_matching(rel, &p, &mut |t| b.push(t.clone()));
                a.sort();
                b.sort();
                assert_eq!(a, b, "pattern {p:?} on {rel}");
            }
        }
    }

    /// Fuzz: random interleavings of apply (insert), undo and out-of-order
    /// remove, with the journal replayed backwards at the end — the store
    /// must return to the exact pre-state (instance view, slot/refcount/
    /// posting invariants, probe results vs a fresh build), and stay
    /// internally consistent at every intermediate step.
    #[test]
    fn randomized_apply_undo_remove_fuzz() {
        let rel_a = RelSym::new("FzA");
        let rel_b = RelSym::new("FzB");
        let mut seed = 0xF77Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..60 {
            // Value pool: constants and nulls (nulls are atomic values to
            // the store).
            let mk_value = |r: u64| -> Value {
                if r.is_multiple_of(4) {
                    Value::null((r / 4 % 3) as u32)
                } else {
                    Value::c(&format!("fc{}", r / 4 % 4))
                }
            };
            let random_tuple = |rel: RelSym, next: &mut dyn FnMut() -> u64| -> Tuple {
                let arity = if rel == rel_a { 2 } else { 1 };
                Tuple::new((0..arity).map(|_| mk_value(next())).collect::<Vec<_>>())
            };
            // Random initial instance.
            let mut initial = Instance::new();
            initial.declare(rel_a, 2);
            initial.declare(rel_b, 1);
            for _ in 0..next() % 6 {
                let t = random_tuple(rel_a, &mut next);
                initial.insert(rel_a, t);
            }
            for _ in 0..next() % 4 {
                let t = random_tuple(rel_b, &mut next);
                initial.insert(rel_b, t);
            }
            let mut delta = DeltaIndex::from_instance(&initial);
            let mut expected: BTreeMap<(RelSym, Tuple), u32> = initial
                .relations()
                .flat_map(|(rel, r)| r.iter().map(move |t| ((rel, t.clone()), 1)))
                .collect();
            // Random op interleaving, journaled.
            let mut journal: Vec<(bool, RelSym, Tuple)> = Vec::new();
            for step in 0..(next() % 40) {
                let rel = if next() % 2 == 0 { rel_a } else { rel_b };
                let live: Vec<Tuple> = expected
                    .iter()
                    .filter(|((r, _), &c)| *r == rel && c > 0)
                    .map(|((_, t), _)| t.clone())
                    .collect();
                if next() % 10 < 6 || live.is_empty() {
                    // Apply: a fresh random tuple or a re-insert of a live
                    // one (refcount bump).
                    let t = if !live.is_empty() && next() % 3 == 0 {
                        live[(next() % live.len() as u64) as usize].clone()
                    } else {
                        random_tuple(rel, &mut next)
                    };
                    let count = expected.entry((rel, t.clone())).or_insert(0);
                    let became_visible = delta.insert(rel, t.clone());
                    assert_eq!(became_visible, *count == 0, "visibility on 0 → 1");
                    *count += 1;
                    journal.push((true, rel, t));
                } else {
                    // Remove (often out of journal order).
                    let t = live[(next() % live.len() as u64) as usize].clone();
                    let count = expected.get_mut(&(rel, t.clone())).expect("live");
                    let became_invisible = delta.remove(rel, &t);
                    assert_eq!(became_invisible, *count == 1, "invisibility on 1 → 0");
                    *count -= 1;
                    if *count == 0 {
                        expected.remove(&(rel, t.clone()));
                    }
                    journal.push((false, rel, t));
                }
                if step % 7 == 0 {
                    assert_consistent(&delta, &expected);
                    assert_probes_match_fresh(&delta);
                }
            }
            assert_consistent(&delta, &expected);
            // Unwind the journal backwards: every apply undone, every
            // remove re-applied — the exact pre-state must come back.
            for (was_insert, rel, t) in journal.into_iter().rev() {
                if was_insert {
                    delta.remove(rel, &t);
                } else {
                    delta.insert(rel, t);
                }
            }
            assert_eq!(
                delta.instance(),
                &initial,
                "case {case}: unwound view equals the pre-state"
            );
            let pristine: BTreeMap<(RelSym, Tuple), u32> = initial
                .relations()
                .flat_map(|(rel, r)| r.iter().map(move |t| ((rel, t.clone()), 1)))
                .collect();
            assert_consistent(&delta, &pristine);
            assert_probes_match_fresh(&delta);
        }
    }

    /// `mem_stats` tracks live slots, postings and refcounts through
    /// overlapping apply/undo.
    #[test]
    fn mem_stats_track_footprint() {
        let mut delta = DeltaIndex::from_instance(&sample());
        // 3 live binary tuples: 3 slots, 6 postings, 3 refs.
        assert_eq!(
            delta.mem_stats(),
            DeltaMemStats {
                live_slots: 3,
                posting_entries: 6,
                refcount_total: 3,
            }
        );
        // A refcount bump adds no slot/posting, only a ref.
        let t = Tuple::from_names(&["a", "x"]);
        assert!(!delta.insert(rel(), t.clone()));
        assert_eq!(
            delta.mem_stats(),
            DeltaMemStats {
                live_slots: 3,
                posting_entries: 6,
                refcount_total: 4,
            }
        );
        assert!(!delta.remove(rel(), &t));
        assert!(delta.remove(rel(), &t));
        assert_eq!(
            delta.mem_stats(),
            DeltaMemStats {
                live_slots: 2,
                posting_entries: 4,
                refcount_total: 2,
            }
        );
    }

    /// Freeze + overlay basics: base sharing, disjoint layering, and the
    /// never-remove-base-below-visibility panic discipline.
    #[test]
    fn freeze_overlay_basics() {
        let inst = sample();
        let delta = DeltaIndex::from_instance(&inst);
        let frozen = delta.freeze();
        let mut ov = OverlayIndex::new(Arc::clone(&frozen));
        assert_eq!(ov.instance(), &inst);

        // Re-inserting a base tuple only bumps the local refcount.
        let base_t = Tuple::from_names(&["a", "x"]);
        assert!(!ov.insert(rel(), base_t.clone()));
        assert_eq!(ov.rel_len(rel()), 3);
        // New tuples go to the overlay layer and the combined view.
        let new_t = Tuple::from_names(&["c", "z"]);
        assert!(ov.insert(rel(), new_t.clone()));
        assert_eq!(ov.rel_len(rel()), 4);
        assert!(ov.contains(rel(), &new_t));
        assert!(ov.instance().relation(rel()).unwrap().contains(&new_t));
        // Undo both: back to the snapshot, base untouched.
        assert!(!ov.remove(rel(), &base_t));
        assert!(ov.remove(rel(), &new_t));
        assert_eq!(ov.instance(), &inst);
        assert_eq!(frozen.instance(), &inst);

        // Removing a base tuple that was never re-inserted is a caller
        // bug, same as an unmatched DeltaIndex undo.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ov.remove(rel(), &base_t);
        }));
        assert!(r.is_err(), "unmatched base undo must panic");
    }

    /// Two overlays over one frozen base are independent: neither sees
    /// the other's inserts, and the base never changes.
    #[test]
    fn overlays_are_isolated() {
        let inst = sample();
        let frozen = DeltaIndex::from_instance(&inst).freeze();
        let mut a = OverlayIndex::new(Arc::clone(&frozen));
        let mut b = OverlayIndex::new(Arc::clone(&frozen));
        let ta = Tuple::from_names(&["only", "a"]);
        let tb = Tuple::from_names(&["only", "b"]);
        a.insert(rel(), ta.clone());
        b.insert(rel(), tb.clone());
        assert!(a.contains(rel(), &ta) && !a.contains(rel(), &tb));
        assert!(b.contains(rel(), &tb) && !b.contains(rel(), &ta));
        assert_eq!(frozen.instance(), &inst);
    }

    /// Fuzz: a random overlay op sequence must behave exactly like the
    /// same sequence applied to one sequential [`DeltaIndex`] seeded with
    /// the base — same combined view, same probe results, same
    /// visibility transitions — while the frozen base never mutates; and
    /// unwinding the journal restores the snapshot view exactly.
    #[test]
    fn randomized_overlay_matches_sequential_fuzz() {
        let rel_a = RelSym::new("OvA");
        let rel_b = RelSym::new("OvB");
        let mut seed = 0x0E71u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..40 {
            let mk_value = |r: u64| -> Value {
                if r.is_multiple_of(4) {
                    Value::null((r / 4 % 3) as u32)
                } else {
                    Value::c(&format!("ov{}", r / 4 % 4))
                }
            };
            let random_tuple = |rel: RelSym, next: &mut dyn FnMut() -> u64| -> Tuple {
                let arity = if rel == rel_a { 2 } else { 1 };
                Tuple::new((0..arity).map(|_| mk_value(next())).collect::<Vec<_>>())
            };
            let mut initial = Instance::new();
            initial.declare(rel_a, 2);
            initial.declare(rel_b, 1);
            for _ in 0..next() % 6 {
                let t = random_tuple(rel_a, &mut next);
                initial.insert(rel_a, t);
            }
            for _ in 0..next() % 4 {
                let t = random_tuple(rel_b, &mut next);
                initial.insert(rel_b, t);
            }
            let frozen = DeltaIndex::from_instance(&initial).freeze();
            let mut overlay = OverlayIndex::new(Arc::clone(&frozen));
            let mut mirror = DeltaIndex::from_instance(&initial);
            // Overlay discipline: only remove what this overlay inserted,
            // so track per-tuple insert-minus-remove balances.
            let mut balance: BTreeMap<(RelSym, Tuple), u32> = BTreeMap::new();
            let mut journal: Vec<(bool, RelSym, Tuple)> = Vec::new();
            for step in 0..(next() % 40) {
                let rel = if next() % 2 == 0 { rel_a } else { rel_b };
                let removable: Vec<Tuple> = balance
                    .iter()
                    .filter(|((r, _), &c)| *r == rel && c > 0)
                    .map(|((_, t), _)| t.clone())
                    .collect();
                if next() % 10 < 6 || removable.is_empty() {
                    let t = if !removable.is_empty() && next() % 3 == 0 {
                        removable[(next() % removable.len() as u64) as usize].clone()
                    } else {
                        random_tuple(rel, &mut next)
                    };
                    let via_overlay = overlay.insert(rel, t.clone());
                    let via_mirror = mirror.insert(rel, t.clone());
                    assert_eq!(via_overlay, via_mirror, "insert visibility transition");
                    *balance.entry((rel, t.clone())).or_insert(0) += 1;
                    journal.push((true, rel, t));
                } else {
                    let t = removable[(next() % removable.len() as u64) as usize].clone();
                    let via_overlay = overlay.remove(rel, &t);
                    let via_mirror = mirror.remove(rel, &t);
                    assert_eq!(via_overlay, via_mirror, "remove visibility transition");
                    *balance.get_mut(&(rel, t.clone())).expect("balanced") -= 1;
                    journal.push((false, rel, t));
                }
                if step % 5 == 0 {
                    assert_eq!(overlay.instance(), mirror.instance(), "combined view");
                    assert_eq!(frozen.instance(), &initial, "frozen base never mutates");
                    for (rel, r) in mirror.instance().relations() {
                        assert_eq!(overlay.rel_len(rel), mirror.rel_len(rel));
                        let mut values: Vec<Value> = r.active_domain().into_iter().collect();
                        values.push(Value::c("ov-missing"));
                        let mut patterns: Vec<Vec<Option<Value>>> = vec![vec![None; r.arity()]];
                        for c in 0..r.arity() {
                            for &v in &values {
                                let mut p = vec![None; r.arity()];
                                p[c] = Some(v);
                                patterns.push(p);
                            }
                        }
                        for p in patterns {
                            let mut a = Vec::new();
                            overlay.for_each_matching(rel, &p, &mut |t| a.push(t.clone()));
                            let mut b = Vec::new();
                            mirror.for_each_matching(rel, &p, &mut |t| b.push(t.clone()));
                            a.sort();
                            b.sort();
                            assert_eq!(a, b, "case {case}: pattern {p:?} on {rel}");
                        }
                    }
                }
            }
            // Unwind: the snapshot view must come back, with both the
            // overlay layer and the base-refcount table empty.
            for (was_insert, rel, t) in journal.into_iter().rev() {
                if was_insert {
                    overlay.remove(rel, &t);
                } else {
                    overlay.insert(rel, t);
                }
            }
            assert_eq!(overlay.instance(), &initial, "case {case}: unwound view");
            assert_eq!(
                overlay.over.instance().tuple_count(),
                0,
                "overlay layer empty"
            );
            assert!(
                overlay.base_refs.values().all(FastMap::is_empty),
                "base refcounts balanced"
            );
            assert_eq!(frozen.instance(), &initial, "frozen base never mutates");
        }
    }

    /// Out-of-order removal still works (linear posting scan).
    #[test]
    fn non_lifo_removal_is_correct() {
        let mut delta = DeltaIndex::new();
        delta.declare(rel(), 1);
        let ts: Vec<Tuple> = ["p", "q", "r"]
            .iter()
            .map(|n| Tuple::from_names(&[n]))
            .collect();
        for t in &ts {
            delta.insert(rel(), t.clone());
        }
        delta.remove(rel(), &ts[0]);
        let mut seen = Vec::new();
        delta.for_each_matching(rel(), &[None], &mut |t| seen.push(t.clone()));
        seen.sort();
        assert_eq!(seen, vec![ts[1].clone(), ts[2].clone()]);
        // Freed slot is reused.
        delta.insert(rel(), Tuple::from_names(&["s"]));
        assert_eq!(delta.rel_len(rel()), 3);
    }
}
