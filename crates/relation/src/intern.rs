//! Process-wide string interner and the symbol newtypes built on it.
//!
//! The paper works with abstract countably infinite domains of constants,
//! relation names, function symbols and variables. We realize each of them as
//! a `u32` index into a shared string table, which makes values `Copy`, makes
//! comparisons O(1), and keeps tuples compact (see the performance guide's
//! advice on small integer keys).
//!
//! Interning is deterministic within a process: the id of a symbol is the
//! order of first interning. All ordered containers in this workspace iterate
//! in id order, so test output is stable for a fixed execution path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// The global string table. `OnceLock` keeps initialization lazy and an
/// `RwLock` keeps the read path (resolution) cheap.
struct Table {
    by_name: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();

fn table() -> &'static RwLock<Table> {
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its stable id.
///
/// Lock poisoning cannot arise in practice: no code path panics while
/// holding the table lock. `unwrap` documents that invariant.
fn intern(name: &str) -> u32 {
    // Fast path: already interned.
    if let Some(&id) = table().read().unwrap().by_name.get(name) {
        return id;
    }
    let mut t = table().write().unwrap();
    if let Some(&id) = t.by_name.get(name) {
        return id;
    }
    let id = t.names.len() as u32;
    let boxed: Box<str> = name.into();
    t.names.push(boxed.clone());
    t.by_name.insert(boxed, id);
    id
}

/// Resolve an id back to its string (cloned out of the table).
fn resolve(id: u32) -> String {
    table().read().unwrap().names[id as usize].to_string()
}

macro_rules! symbol {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Intern `name` and return the symbol.
            pub fn new(name: &str) -> Self {
                Self(intern(name))
            }

            /// The interned string this symbol stands for.
            pub fn name(self) -> String {
                resolve(self.0)
            }

            /// The raw interner index (stable within a process run).
            pub fn index(self) -> u32 {
                self.0
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.name())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "({})"), self.name())
            }
        }
    };
}

symbol!(
    /// An interned **constant** from the domain `Const` of the paper.
    ///
    /// Constants are the values that may appear in source instances and that
    /// valuations assign to nulls. Two constants are equal iff their names
    /// are equal.
    ConstId,
    "Const"
);

symbol!(
    /// An interned **relation symbol** (e.g. `Papers`, `Reviews`).
    RelSym,
    "Rel"
);

symbol!(
    /// An interned **function symbol** used in Skolemized STDs (SkSTDs).
    FuncSym,
    "Func"
);

symbol!(
    /// An interned **first-order variable** (e.g. `x`, `y`, `z1`).
    Var,
    "Var"
);

impl ConstId {
    /// Convenience constructor interning the decimal representation of `n`.
    ///
    /// Useful for workloads that index constants by integers (grid
    /// coordinates, vertex ids, …).
    pub fn num(n: i64) -> Self {
        Self::new(&n.to_string())
    }
}

impl Var {
    /// A fresh-ish variable `base__n`; used by rewriting algorithms (e.g. the
    /// composition algorithm of Lemma 5) that must rename apart. The name
    /// stays within the identifier syntax accepted by the `dx-logic` parser.
    pub fn indexed(base: &str, n: usize) -> Self {
        Self::new(&format!("{base}__{n}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ConstId::new("alpha");
        let b = ConstId::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.name(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let a = ConstId::new("x-one");
        let b = ConstId::new("x-two");
        assert_ne!(a, b);
    }

    #[test]
    fn symbol_kinds_share_a_table_but_not_types() {
        // Same string interned under two newtypes resolves identically.
        let r = RelSym::new("shared-name");
        let c = ConstId::new("shared-name");
        assert_eq!(r.name(), c.name());
    }

    #[test]
    fn numeric_constants() {
        assert_eq!(ConstId::num(42), ConstId::new("42"));
        assert_eq!(ConstId::num(-7).name(), "-7");
    }

    #[test]
    fn display_and_debug() {
        let v = Var::new("x3");
        assert_eq!(format!("{v}"), "x3");
        assert_eq!(format!("{v:?}"), "Var(x3)");
    }

    #[test]
    fn indexed_vars_are_reproducible() {
        assert_eq!(Var::indexed("z", 4), Var::new("z__4"));
    }
}
