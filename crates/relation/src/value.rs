//! Values over the two disjoint domains `Const ∪ Null`.
//!
//! Following §2 of the paper: *source* instances are over `Const` only, while
//! *target* instances may also contain labelled nulls. Nulls are "existing
//! but unknown" values; two nulls are equal iff they are the same null
//! (naive-table semantics).

use crate::intern::ConstId;
use std::fmt;

/// A labelled null `⊥ᵢ`. Fresh nulls are produced by [`NullGen`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NullId(pub u32);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// A database value: either a constant or a labelled null.
///
/// The ordering places all constants before all nulls; within a kind, values
/// order by interner/null index. The ordering is only used for deterministic
/// container iteration, never for semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An element of the domain `Const`.
    Const(ConstId),
    /// An element of the domain `Null`.
    Null(NullId),
}

impl Value {
    /// Shortcut: intern `name` as a constant value.
    pub fn c(name: &str) -> Self {
        Value::Const(ConstId::new(name))
    }

    /// Shortcut: the numeric constant `n`.
    pub fn num(n: i64) -> Self {
        Value::Const(ConstId::num(n))
    }

    /// Shortcut: the null with index `i`.
    pub fn null(i: u32) -> Self {
        Value::Null(NullId(i))
    }

    /// Is this a null?
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// The null inside, if any.
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            Value::Const(_) => None,
        }
    }
}

impl From<ConstId> for Value {
    fn from(c: ConstId) -> Self {
        Value::Const(c)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A deterministic source of fresh nulls.
///
/// Canonical-solution construction (§2/§3 of the paper) invents *a fresh
/// tuple of distinct nulls* per justification; a `NullGen` scoped to one
/// construction keeps the resulting null ids reproducible.
#[derive(Clone, Debug, Default)]
pub struct NullGen {
    next: u32,
}

impl NullGen {
    /// A generator starting at `⊥0`.
    pub fn new() -> Self {
        NullGen { next: 0 }
    }

    /// A generator whose first output is strictly greater than every null in
    /// `used` (useful when extending an existing instance).
    pub fn after<I: IntoIterator<Item = NullId>>(used: I) -> Self {
        let next = used.into_iter().map(|n| n.0 + 1).max().unwrap_or(0);
        NullGen { next }
    }

    /// Produce the next fresh null.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Produce `n` fresh nulls.
    pub fn fresh_many(&mut self, n: usize) -> Vec<NullId> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// The index the next fresh null would get.
    pub fn peek(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_before_null_ordering() {
        let c = Value::c("zzz");
        let n = Value::null(0);
        assert!(c < n, "constants order before nulls");
    }

    #[test]
    fn null_equality_is_by_label() {
        assert_eq!(Value::null(3), Value::null(3));
        assert_ne!(Value::null(3), Value::null(4));
    }

    #[test]
    fn accessors() {
        let c = Value::c("a");
        assert!(c.is_const() && !c.is_null());
        assert_eq!(c.as_const(), Some(ConstId::new("a")));
        assert_eq!(c.as_null(), None);
        let n = Value::null(7);
        assert_eq!(n.as_null(), Some(NullId(7)));
        assert!(n.is_null());
    }

    #[test]
    fn nullgen_is_sequential() {
        let mut g = NullGen::new();
        assert_eq!(g.fresh(), NullId(0));
        assert_eq!(g.fresh(), NullId(1));
        assert_eq!(g.fresh_many(3), vec![NullId(2), NullId(3), NullId(4)]);
    }

    #[test]
    fn nullgen_after_skips_used() {
        let g = NullGen::after([NullId(5), NullId(2)]);
        assert_eq!(g.peek(), 6);
        let g2 = NullGen::after(std::iter::empty());
        assert_eq!(g2.peek(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::c("bob").to_string(), "bob");
        assert_eq!(Value::null(2).to_string(), "⊥2");
    }
}
