//! A fast non-cryptographic hasher for the workspace's hot maps.
//!
//! The index structures here and in `dx-engine` hash tiny keys (interned
//! `u32` symbols, `Value`s, short tuples) millions of times per chase.
//! `std`'s default SipHash is DoS-resistant but an order of magnitude
//! slower than needed for process-internal keys that never cross a trust
//! boundary. [`FastHasher`] is a word-at-a-time multiply-xor hasher (the
//! well-known Fx construction used by rustc); [`FastMap`] / [`FastSet`] are
//! the corresponding container aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher. Not DoS-resistant — use only for
/// process-internal keys.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed by the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed by the fast hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn maps_behave_like_maps() {
        let mut m: FastMap<Value, usize> = FastMap::default();
        for i in 0..1000u32 {
            m.insert(Value::null(i), i as usize);
            m.insert(Value::c(&format!("k{i}")), i as usize);
        }
        assert_eq!(m.len(), 2000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&Value::null(i)), Some(&(i as usize)));
        }
        for i in 0..1000u32 {
            m.remove(&Value::null(i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_distinguishes_nearby_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FastHasher> = Default::default();
        let h = |v: u64| bh.hash_one(v);
        // Not a statistical test — just a sanity check that consecutive
        // keys do not collide into a handful of buckets.
        let hashes: std::collections::BTreeSet<u64> = (0..1024u64).map(h).collect();
        assert_eq!(hashes.len(), 1024);
    }
}
