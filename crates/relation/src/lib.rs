//! # dx-relation — relational substrate for `oc-exchange`
//!
//! This crate implements the data model underlying the reproduction of
//! *“Data exchange and schema mappings in open and closed worlds”*
//! (Libkin & Sirangelo, PODS 2008 / JCSS 2011):
//!
//! * interned **symbols** ([`ConstId`], [`RelSym`], [`FuncSym`], [`Var`]) backed
//!   by a process-wide string table,
//! * **values** over the two disjoint countable domains `Const` and `Null`
//!   ([`Value`], [`NullId`], [`NullGen`]),
//! * **tuples**, **relations** and **instances** ([`Tuple`], [`Relation`],
//!   [`Instance`], [`Schema`]) with deterministic (`BTree`-based) iteration,
//! * **open/closed annotations** ([`Ann`], [`Annotation`]) and annotated
//!   instances ([`AnnTuple`], [`AnnRelation`], [`AnnInstance`]) including the
//!   paper's *empty annotated tuples* `(_, α)`,
//! * **valuations** of nulls ([`Valuation`]) used to define the semantics
//!   `Rep(T)` and `Rep_A(T)`.
//!
//! Everything in this crate is purely structural; semantics (`Rep_A`
//! membership, solutions, certain answers) live in `dx-solver` and `dx-core`.

#![deny(missing_docs)]

pub mod annotation;
pub mod delta;
pub mod fxmap;
pub mod index;
pub mod instance;
pub mod intern;
pub mod relation;
pub mod tuple;
pub mod update;
pub mod valuation;
pub mod value;

pub use annotation::{Ann, AnnInstance, AnnRelation, AnnTuple, Annotation};
pub use delta::{DeltaIndex, DeltaMemStats, FrozenIndex, OverlayIndex};
pub use fxmap::{FastMap, FastSet};
pub use index::{InstanceIndex, RelationIndex, TupleId};
pub use instance::{Instance, Schema};
pub use intern::{ConstId, FuncSym, RelSym, Var};
pub use relation::Relation;
pub use tuple::Tuple;
pub use update::{AppliedUpdate, Update};
pub use valuation::Valuation;
pub use value::{NullGen, NullId, Value};
