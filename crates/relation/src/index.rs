//! Hash indexes over relations and instances, with stable tuple ids.
//!
//! The backtracking searches in `dx-solver` and the delta-driven chase in
//! `dx-engine` both spend their time answering the same question: *which
//! tuples of relation `R` agree with a partially known tuple on its bound
//! positions?* The naive answer — scan the whole relation — is what the
//! reference implementations do; this module provides the indexed answer:
//!
//! * every tuple gets a stable [`TupleId`] (its position in insertion
//!   order), so matches can be exchanged as small integers instead of
//!   cloned tuples;
//! * a per-column hash index `(column, value) → sorted ids` supports point
//!   probes;
//! * [`RelationIndex::matching`] answers pattern queries by probing the
//!   most selective bound column and post-filtering, which is the building
//!   block of selectivity-ordered join plans.
//!
//! [`RelationIndex`] / [`InstanceIndex`] are *immutable snapshots* built
//! from a [`Relation`] / [`Instance`]; the chase engine's mutable indexed
//! store (`dx-engine`) maintains the same invariants incrementally.

use crate::fxmap::FastMap;
use crate::instance::Instance;
use crate::intern::RelSym;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;

/// A stable identifier of a tuple inside one indexed relation: its position
/// in insertion (iteration) order at build time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as a usize (for slot vectors).
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An immutable column index over one relation's tuples.
pub struct RelationIndex {
    arity: usize,
    tuples: Vec<Tuple>,
    /// `by_col[c][v]` = sorted ids of tuples with value `v` at column `c`.
    by_col: Vec<FastMap<Value, Vec<TupleId>>>,
}

impl RelationIndex {
    /// Build the index from a relation snapshot (ids follow the relation's
    /// deterministic iteration order).
    pub fn build(rel: &Relation) -> Self {
        let mut idx = RelationIndex {
            arity: rel.arity(),
            tuples: Vec::with_capacity(rel.len()),
            by_col: vec![FastMap::default(); rel.arity()],
        };
        for t in rel.iter() {
            let id = TupleId(idx.tuples.len() as u32);
            for (c, v) in t.iter().enumerate() {
                idx.by_col[c].entry(v).or_default().push(id);
            }
            idx.tuples.push(t.clone());
        }
        idx
    }

    /// The indexed relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the indexed relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple behind an id.
    pub fn get(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.idx()]
    }

    /// All ids, in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Point probe: ids of tuples with `value` at `col` (sorted).
    pub fn probe(&self, col: usize, value: Value) -> &[TupleId] {
        self.by_col[col]
            .get(&value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// An upper bound on how many tuples can match `pattern`
    /// (`Some(v)` = position bound to `v`, `None` = free): the length of the
    /// most selective bound column's posting list, or the relation size when
    /// nothing is bound. This is the estimate join planners order atoms by.
    pub fn selectivity(&self, pattern: &[Option<Value>]) -> usize {
        debug_assert_eq!(pattern.len(), self.arity);
        pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| self.probe(c, v).len()))
            .min()
            .unwrap_or_else(|| self.len())
    }

    /// Ids of tuples matching `pattern` exactly on all bound positions.
    ///
    /// Probes the most selective bound column, then post-filters the posting
    /// list against the remaining bound positions; a pattern with no bound
    /// position returns every id.
    pub fn matching(&self, pattern: &[Option<Value>]) -> Vec<TupleId> {
        debug_assert_eq!(pattern.len(), self.arity);
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (self.probe(c, v).len(), c, v)))
            .min();
        match best {
            None => self.ids().collect(),
            Some((_, col, v)) => self
                .probe(col, v)
                .iter()
                .copied()
                .filter(|&id| {
                    let t = self.get(id);
                    pattern
                        .iter()
                        .enumerate()
                        .all(|(c, p)| p.is_none_or(|pv| t.get(c) == pv))
                })
                .collect(),
        }
    }
}

/// Immutable per-relation indexes over a whole instance.
pub struct InstanceIndex {
    rels: BTreeMap<RelSym, RelationIndex>,
}

impl InstanceIndex {
    /// Index every relation of `inst`.
    pub fn build(inst: &Instance) -> Self {
        InstanceIndex {
            rels: inst
                .relations()
                .map(|(r, rel)| (r, RelationIndex::build(rel)))
                .collect(),
        }
    }

    /// The index of `rel`, if the instance has it.
    pub fn relation(&self, rel: RelSym) -> Option<&RelationIndex> {
        self.rels.get(&rel)
    }

    /// Iterate over `(relation, index)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (RelSym, &RelationIndex)> + '_ {
        self.rels.iter().map(|(&r, idx)| (r, idx))
    }
}

/// The match pattern of `probe` against the index: bound positions from a
/// tuple template with nulls treated as bound values (naive-table
/// semantics: a null is an atomic value).
pub fn pattern_of(t: &Tuple) -> Vec<Option<Value>> {
    t.iter().map(Some).collect()
}

/// The pattern binding only the constant positions of `t` (used when nulls
/// are *variables to solve for*, as in the `Rep_A` valuation search).
pub fn const_pattern_of(t: &Tuple) -> Vec<Option<Value>> {
    t.iter()
        .map(|v| if v.is_const() { Some(v) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_tuples(
            2,
            [
                Tuple::from_names(&["a", "x"]),
                Tuple::from_names(&["a", "y"]),
                Tuple::from_names(&["b", "x"]),
                Tuple::new(vec![Value::c("b"), Value::null(3)]),
            ],
        )
    }

    #[test]
    fn probe_finds_posting_lists() {
        let idx = RelationIndex::build(&sample());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.probe(0, Value::c("a")).len(), 2);
        assert_eq!(idx.probe(1, Value::c("x")).len(), 2);
        assert_eq!(idx.probe(1, Value::null(3)).len(), 1);
        assert!(idx.probe(0, Value::c("zzz")).is_empty());
    }

    #[test]
    fn matching_filters_all_bound_positions() {
        let idx = RelationIndex::build(&sample());
        let hits = idx.matching(&[Some(Value::c("a")), Some(Value::c("x"))]);
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.get(hits[0]), &Tuple::from_names(&["a", "x"]));
        // Unbound pattern returns everything.
        assert_eq!(idx.matching(&[None, None]).len(), 4);
        // Nulls are atomic values.
        let hits = idx.matching(&[None, Some(Value::null(3))]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn selectivity_picks_the_tightest_column() {
        let idx = RelationIndex::build(&sample());
        assert_eq!(idx.selectivity(&[Some(Value::c("a")), None]), 2);
        assert_eq!(
            idx.selectivity(&[Some(Value::c("a")), Some(Value::null(3))]),
            1
        );
        assert_eq!(idx.selectivity(&[None, None]), 4);
    }

    #[test]
    fn instance_index_covers_all_relations() {
        let mut inst = Instance::new();
        inst.insert_names("IdxE", &["a", "b"]);
        inst.insert_names("IdxV", &["a"]);
        let idx = InstanceIndex::build(&inst);
        assert!(idx.relation(RelSym::new("IdxE")).is_some());
        assert!(idx.relation(RelSym::new("IdxV")).is_some());
        assert!(idx.relation(RelSym::new("Missing")).is_none());
        assert_eq!(idx.relations().count(), 2);
    }

    #[test]
    fn patterns_from_tuples() {
        let t = Tuple::new(vec![Value::c("a"), Value::null(1)]);
        assert_eq!(
            pattern_of(&t),
            vec![Some(Value::c("a")), Some(Value::null(1))]
        );
        assert_eq!(const_pattern_of(&t), vec![Some(Value::c("a")), None]);
    }

    #[test]
    fn ids_are_stable_and_deterministic() {
        let a = RelationIndex::build(&sample());
        let b = RelationIndex::build(&sample());
        for (ia, ib) in a.ids().zip(b.ids()) {
            assert_eq!(ia, ib);
            assert_eq!(a.get(ia), b.get(ib));
        }
    }
}
