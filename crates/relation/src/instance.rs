//! Database instances and schemas.

use crate::intern::{ConstId, RelSym};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{NullId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relational schema: relation symbols with arities.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Schema {
    rels: BTreeMap<RelSym, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Self {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.add(RelSym::new(name), arity);
        }
        s
    }

    /// Add a relation symbol. Panics on conflicting arity re-declaration.
    pub fn add(&mut self, rel: RelSym, arity: usize) -> &mut Self {
        if let Some(&prev) = self.rels.get(&rel) {
            assert_eq!(prev, arity, "conflicting arity for {rel}");
        }
        self.rels.insert(rel, arity);
        self
    }

    /// The arity of `rel`, if declared.
    pub fn arity(&self, rel: RelSym) -> Option<usize> {
        self.rels.get(&rel).copied()
    }

    /// Does the schema declare `rel`?
    pub fn contains(&self, rel: RelSym) -> bool {
        self.rels.contains_key(&rel)
    }

    /// Iterate over `(relation, arity)` in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (RelSym, usize)> + '_ {
        self.rels.iter().map(|(&r, &a)| (r, a))
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// The maximum arity over all relations (0 for the empty schema).
    pub fn max_arity(&self) -> usize {
        self.rels.values().copied().max().unwrap_or(0)
    }

    /// Union of two schemas; panics on conflicting arities.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut s = self.clone();
        for (r, a) in other.iter() {
            s.add(r, a);
        }
        s
    }

    /// Do the two schemas share no relation symbol?
    pub fn is_disjoint(&self, other: &Schema) -> bool {
        self.rels.keys().all(|r| !other.rels.contains_key(r))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (r, a)) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}/{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A database instance: an assignment of a [`Relation`] to each relation
/// symbol that has at least one declared tuple (absent symbols read as empty).
///
/// Instances may contain nulls; *source* instances in data exchange are
/// ground (see [`Instance::is_ground`]).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instance {
    rels: BTreeMap<RelSym, Relation>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `t` into relation `rel`, creating the relation (with `t`'s
    /// arity) on first use.
    pub fn insert(&mut self, rel: RelSym, t: Tuple) -> bool {
        self.rels
            .entry(rel)
            .or_insert_with(|| Relation::new(t.arity()))
            .insert(t)
    }

    /// Insert a ground tuple given by constant names.
    pub fn insert_names(&mut self, rel: &str, names: &[&str]) -> bool {
        self.insert(RelSym::new(rel), Tuple::from_names(names))
    }

    /// Insert a ground tuple given by numeric constants.
    pub fn insert_nums(&mut self, rel: &str, nums: &[i64]) -> bool {
        self.insert(RelSym::new(rel), Tuple::from_nums(nums))
    }

    /// Declare an empty relation of the given arity (so it shows up in
    /// iteration even without tuples).
    pub fn declare(&mut self, rel: RelSym, arity: usize) {
        self.rels.entry(rel).or_insert_with(|| Relation::new(arity));
    }

    /// Remove `t` from relation `rel`; the relation stays declared even when
    /// it becomes empty (so arities survive, mirroring
    /// [`AnnInstance::rel_part`](crate::annotation::AnnInstance::rel_part)).
    pub fn remove(&mut self, rel: RelSym, t: &Tuple) -> bool {
        self.rels.get_mut(&rel).is_some_and(|r| r.remove(t))
    }

    /// The relation for `rel`, if any tuple or declaration exists.
    pub fn relation(&self, rel: RelSym) -> Option<&Relation> {
        self.rels.get(&rel)
    }

    /// Tuples of `rel` (empty iterator when the relation is absent).
    pub fn tuples(&self, rel: RelSym) -> impl Iterator<Item = &Tuple> + '_ {
        self.rels.get(&rel).into_iter().flat_map(|r| r.iter())
    }

    /// Does `rel` contain `t`?
    pub fn contains(&self, rel: RelSym, t: &Tuple) -> bool {
        self.rels.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// Iterate over `(relation symbol, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (RelSym, &Relation)> + '_ {
        self.rels.iter().map(|(&r, rel)| (r, rel))
    }

    /// Total number of tuples across relations.
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// Is the instance empty (no tuples at all)?
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(|r| r.is_empty())
    }

    /// The active domain `D_T`: all values occurring in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.rels.values().flat_map(|r| r.active_domain()).collect()
    }

    /// The constants of the active domain.
    pub fn adom_consts(&self) -> BTreeSet<ConstId> {
        self.rels.values().flat_map(|r| r.consts()).collect()
    }

    /// All nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.rels.values().flat_map(|r| r.nulls()).collect()
    }

    /// Does the instance mention no nulls (i.e. is it over `Const` only)?
    pub fn is_ground(&self) -> bool {
        self.rels.values().all(|r| r.is_ground())
    }

    /// Relation-wise inclusion `self ⊆ other`.
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.rels.iter().all(|(r, rel)| {
            rel.is_empty() || other.rels.get(r).is_some_and(|orel| rel.is_subset(orel))
        })
    }

    /// Relation-wise union.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for (r, rel) in other.relations() {
            match out.rels.get_mut(&r) {
                Some(mine) => mine.union_with(rel),
                None => {
                    out.rels.insert(r, rel.clone());
                }
            }
        }
        out
    }

    /// Apply a valuation relation-wise (`v(T)` in the paper).
    pub fn apply(&self, v: &Valuation) -> Instance {
        Instance {
            rels: self
                .rels
                .iter()
                .map(|(&r, rel)| (r, rel.apply(v)))
                .collect(),
        }
    }

    /// Restrict to tuples whose values all lie in `universe` (used by the
    /// bounded-model arguments of Lemma 2 / Proposition 5).
    pub fn restrict_to(&self, universe: &BTreeSet<Value>) -> Instance {
        let mut out = Instance::new();
        for (r, rel) in self.relations() {
            out.declare(r, rel.arity());
            for t in rel.iter() {
                if t.iter().all(|v| universe.contains(&v)) {
                    out.insert(r, t.clone());
                }
            }
        }
        out
    }

    /// Check that the instance only uses relations declared in `schema`, at
    /// the right arities.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.rels
            .iter()
            .all(|(&r, rel)| schema.arity(r) == Some(rel.arity()))
    }

    /// Restrict the instance to the relations of `schema`.
    pub fn project_schema(&self, schema: &Schema) -> Instance {
        let mut out = Instance::new();
        for (r, a) in schema.iter() {
            out.declare(r, a);
            if let Some(rel) = self.rels.get(&r) {
                for t in rel.iter() {
                    out.insert(r, t.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rels.is_empty() {
            return write!(f, "∅");
        }
        for (i, (r, rel)) in self.rels.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r} = {rel}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::ConstId;

    fn sample() -> Instance {
        let mut i = Instance::new();
        i.insert_names("E", &["a", "b"]);
        i.insert_names("E", &["b", "c"]);
        i.insert_names("V", &["a"]);
        i
    }

    #[test]
    fn schema_basics() {
        let s = Schema::from_pairs([("E", 2), ("V", 1)]);
        assert_eq!(s.arity(RelSym::new("E")), Some(2));
        assert_eq!(s.arity(RelSym::new("Missing")), None);
        assert_eq!(s.max_arity(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn schema_union_and_disjointness() {
        let s = Schema::from_pairs([("E", 2)]);
        let t = Schema::from_pairs([("V", 1)]);
        assert!(s.is_disjoint(&t));
        let u = s.union(&t);
        assert_eq!(u.len(), 2);
        assert!(!u.is_disjoint(&t));
    }

    #[test]
    #[should_panic(expected = "conflicting arity")]
    fn schema_conflicting_arity_panics() {
        let mut s = Schema::new();
        s.add(RelSym::new("R"), 2);
        s.add(RelSym::new("R"), 3);
    }

    #[test]
    fn insert_and_lookup() {
        let i = sample();
        assert_eq!(i.tuple_count(), 3);
        assert!(i.contains(RelSym::new("E"), &Tuple::from_names(&["a", "b"])));
        assert!(!i.contains(RelSym::new("E"), &Tuple::from_names(&["c", "a"])));
        assert!(i.conforms_to(&Schema::from_pairs([("E", 2), ("V", 1)])));
    }

    #[test]
    fn subinstance_and_union() {
        let i = sample();
        let mut j = Instance::new();
        j.insert_names("E", &["a", "b"]);
        assert!(j.is_subinstance_of(&i));
        assert!(!i.is_subinstance_of(&j));
        let u = j.union(&i);
        assert_eq!(u, i);
    }

    #[test]
    fn groundness_and_valuation() {
        let mut i = sample();
        i.insert(RelSym::new("V"), Tuple::new(vec![Value::null(0)]));
        assert!(!i.is_ground());
        let v = Valuation::from_pairs([(NullId(0), ConstId::new("a"))]);
        let iv = i.apply(&v);
        assert!(iv.is_ground());
        // (a) merges into the existing V tuple
        assert_eq!(iv.relation(RelSym::new("V")).unwrap().len(), 1);
    }

    #[test]
    fn restrict_to_universe() {
        let i = sample();
        let universe: BTreeSet<Value> = [Value::c("a"), Value::c("b")].into();
        let r = i.restrict_to(&universe);
        assert_eq!(r.tuple_count(), 2); // E(a,b) and V(a); E(b,c) dropped
    }

    #[test]
    fn display_empty() {
        assert_eq!(Instance::new().to_string(), "∅");
    }
}
