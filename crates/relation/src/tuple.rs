//! Tuples of values.

use crate::intern::ConstId;
use crate::valuation::Valuation;
use crate::value::{NullId, Value};
use std::fmt;

/// A database tuple: a fixed-arity sequence of [`Value`]s.
///
/// Tuples are immutable once built; transformation methods return new tuples.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// Build a ground tuple from constants.
    pub fn from_consts(consts: &[ConstId]) -> Self {
        Tuple(consts.iter().map(|&c| Value::Const(c)).collect())
    }

    /// Build a ground tuple by interning each name.
    pub fn from_names(names: &[&str]) -> Self {
        Tuple(names.iter().map(|n| Value::c(n)).collect())
    }

    /// Build a ground tuple of numeric constants.
    pub fn from_nums(nums: &[i64]) -> Self {
        Tuple(nums.iter().map(|&n| Value::num(n)).collect())
    }

    /// Number of positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at position `i` (0-based).
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// All values, in position order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over the values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.0.iter().copied()
    }

    /// The nulls occurring in this tuple (with repetitions, position order).
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.0.iter().filter_map(|v| v.as_null())
    }

    /// The constants occurring in this tuple (with repetitions).
    pub fn consts(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.0.iter().filter_map(|v| v.as_const())
    }

    /// Does this tuple mention no nulls?
    pub fn is_ground(&self) -> bool {
        self.0.iter().all(|v| v.is_const())
    }

    /// Apply a (possibly partial) valuation: nulls in the valuation's domain
    /// are replaced by their constants, others are left untouched.
    pub fn apply(&self, v: &Valuation) -> Tuple {
        Tuple(self.0.iter().map(|&val| v.apply_value(val)).collect())
    }

    /// Project onto the given positions (used by `π_X` in composition).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v: Vec<Value> = self.0.to_vec();
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Positions at which this tuple agrees with `other`. Panics if arities
    /// differ.
    pub fn agreement(&self, other: &Tuple) -> Vec<usize> {
        assert_eq!(self.arity(), other.arity(), "arity mismatch");
        (0..self.arity())
            .filter(|&i| self.0[i] == other.0[i])
            .collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = Tuple::from_names(&["a", "b"]);
        let b = Tuple::new(vec![Value::c("a"), Value::c("b")]);
        assert_eq!(a, b);
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn groundness() {
        assert!(Tuple::from_names(&["a"]).is_ground());
        assert!(!Tuple::new(vec![Value::c("a"), Value::null(0)]).is_ground());
    }

    #[test]
    fn null_and_const_extraction() {
        let t = Tuple::new(vec![Value::c("a"), Value::null(1), Value::null(1)]);
        assert_eq!(t.nulls().collect::<Vec<_>>(), vec![NullId(1), NullId(1)]);
        assert_eq!(t.consts().count(), 1);
    }

    #[test]
    fn apply_valuation_partial() {
        let t = Tuple::new(vec![Value::null(0), Value::null(1)]);
        let mut v = Valuation::new();
        v.set(NullId(0), ConstId::new("x"));
        let t2 = t.apply(&v);
        assert_eq!(t2.get(0), Value::c("x"));
        assert_eq!(t2.get(1), Value::null(1));
    }

    #[test]
    fn project_and_concat() {
        let t = Tuple::from_nums(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::from_nums(&[30, 10]));
        assert_eq!(
            t.concat(&Tuple::from_nums(&[40])),
            Tuple::from_nums(&[10, 20, 30, 40])
        );
    }

    #[test]
    fn agreement_positions() {
        let a = Tuple::from_nums(&[1, 2, 3]);
        let b = Tuple::from_nums(&[1, 9, 3]);
        assert_eq!(a.agreement(&b), vec![0, 2]);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::c("a"), Value::null(0)]);
        assert_eq!(t.to_string(), "(a, ⊥0)");
    }
}
