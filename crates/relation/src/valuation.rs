//! Valuations: partial maps `Null → Const`.
//!
//! §2 of the paper: a *valuation* `v` is a partial map from `Null` to
//! `Const`; `v(T)` replaces each null of `T` by its image, and
//! `Rep(T) = { v(T) | v defined on all nulls of T }`.

use crate::intern::ConstId;
use crate::value::{NullId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A partial map from nulls to constants.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<NullId, ConstId>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a valuation from `(null, constant)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NullId, ConstId)>) -> Self {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// The image of `n`, if assigned.
    pub fn get(&self, n: NullId) -> Option<ConstId> {
        self.map.get(&n).copied()
    }

    /// Assign `n ↦ c`, returning the previous image if any.
    pub fn set(&mut self, n: NullId, c: ConstId) -> Option<ConstId> {
        self.map.insert(n, c)
    }

    /// Remove the assignment of `n` (used when backtracking).
    pub fn unset(&mut self, n: NullId) -> Option<ConstId> {
        self.map.remove(&n)
    }

    /// Is `n` in the domain of this valuation?
    pub fn is_defined(&self, n: NullId) -> bool {
        self.map.contains_key(&n)
    }

    /// Number of assigned nulls.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the valuation empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply to a single value. Constants and unassigned nulls pass through.
    pub fn apply_value(&self, v: Value) -> Value {
        match v {
            Value::Const(_) => v,
            Value::Null(n) => match self.get(n) {
                Some(c) => Value::Const(c),
                None => v,
            },
        }
    }

    /// Is this valuation defined on every null in `nulls`?
    pub fn is_total_for(&self, nulls: impl IntoIterator<Item = NullId>) -> bool {
        nulls.into_iter().all(|n| self.is_defined(n))
    }

    /// Iterate over `(null, constant)` assignments in null order.
    pub fn iter(&self) -> impl Iterator<Item = (NullId, ConstId)> + '_ {
        self.map.iter().map(|(&n, &c)| (n, c))
    }

    /// The composition `self ∘ h` for a null-to-null map `h`
    /// (`(self ∘ h)(n) = self(h(n))`). Used in the proof of Theorem 1 where
    /// `v ∘ h` witnesses `Rep_A` membership through a homomorphism.
    pub fn compose_null_map(&self, h: &BTreeMap<NullId, NullId>) -> Valuation {
        let mut out = Valuation::new();
        for (&n, &hn) in h {
            if let Some(c) = self.get(hn) {
                out.set(n, c);
            }
        }
        out
    }

    /// The range (set of constants used), in order.
    pub fn range(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.map.values().copied()
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}↦{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut v = Valuation::new();
        assert!(v.is_empty());
        assert_eq!(v.set(NullId(0), ConstId::new("a")), None);
        assert_eq!(v.get(NullId(0)), Some(ConstId::new("a")));
        assert_eq!(v.set(NullId(0), ConstId::new("b")), Some(ConstId::new("a")));
        assert_eq!(v.unset(NullId(0)), Some(ConstId::new("b")));
        assert!(!v.is_defined(NullId(0)));
    }

    #[test]
    fn apply_value_passthrough() {
        let v = Valuation::from_pairs([(NullId(1), ConstId::new("c"))]);
        assert_eq!(v.apply_value(Value::c("k")), Value::c("k"));
        assert_eq!(v.apply_value(Value::null(1)), Value::c("c"));
        assert_eq!(v.apply_value(Value::null(2)), Value::null(2));
    }

    #[test]
    fn totality() {
        let v = Valuation::from_pairs([(NullId(0), ConstId::new("a"))]);
        assert!(v.is_total_for([NullId(0)]));
        assert!(!v.is_total_for([NullId(0), NullId(1)]));
    }

    #[test]
    fn compose_with_null_map() {
        // h: ⊥0 ↦ ⊥5, v: ⊥5 ↦ a  ⇒  (v∘h): ⊥0 ↦ a
        let v = Valuation::from_pairs([(NullId(5), ConstId::new("a"))]);
        let mut h = BTreeMap::new();
        h.insert(NullId(0), NullId(5));
        let comp = v.compose_null_map(&h);
        assert_eq!(comp.get(NullId(0)), Some(ConstId::new("a")));
    }

    #[test]
    fn display() {
        let v = Valuation::from_pairs([(NullId(0), ConstId::new("a"))]);
        assert_eq!(v.to_string(), "{⊥0↦a}");
    }
}
