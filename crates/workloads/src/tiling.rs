//! The 2ⁿ×2ⁿ tiling system behind Theorem 3's coNEXPTIME-hardness.
//!
//! The reduction maps a tiling instance (tile types `T`, horizontal/vertical
//! compatibility `H, V`, a unary `n`) to the fixed `#op(Σα) = 1` mapping
//!
//! ```text
//! H(x:cl, y:cl)  :- Hs(x, y)        V(x:cl, y:cl) :- Vs(x, y)
//! N(x:cl)        :- Ns(x)           Empty(x:cl)   :- Emptys(x)
//! Gh(x:cl, y:op) :- Ns(x)           Gv(x:cl, y:op):- Ns(x)
//! F(x:cl, y:op)  :- Tile(x)         Less(x:cl, y:cl) :- Ls(x, y)
//! ```
//!
//! and the sentence `β = β₁ ∧ β₂ ∧ β₃₁ ∧ β₃₂ ∧ β₄₁ ∧ β₄₂` (built verbatim
//! from the proof of Theorem 3) such that some `I ∈ Rep_A(CSol_A(S))`
//! satisfies `β` iff a tiling of the 2ⁿ×2ⁿ grid exists: the open nulls of
//! `Gh`/`Gv` replicate into bit-vector encodings of grid coordinates, and
//! `F`'s open null assigns a cell set to each tile.
//!
//! Because the refutation search is genuinely NEXPTIME, tests exercise the
//! *verification* direction: a brute-force tiler produces a tiling, the
//! witness builder converts it into an instance `I`, and both
//! `I ∈ Rep_A(CSol_A(S))` (via the NP membership check) and `I |= β` (via
//! the FO evaluator) are machine-checked.

use dx_chase::{canonical_solution, Mapping};
use dx_logic::{Evaluator, Formula, Query, Term};
use dx_relation::{Instance, Var};
use dx_solver::repa::rep_a_membership;

/// The constant standing for the empty set of grid positions.
pub const EMPTY_NAME: &str = "nullpos";

/// A tiling system: tile names (index 0 is the mandatory corner tile `t₀`),
/// compatibility relations, and the grid exponent `n` (grid side `2ⁿ`).
#[derive(Clone, Debug)]
pub struct TilingSystem {
    /// Tile type names; `tiles[0]` must tile position (0,0).
    pub tiles: Vec<String>,
    /// Horizontally compatible pairs `(left, right)` (indices).
    pub h_compat: Vec<(usize, usize)>,
    /// Vertically compatible pairs `(below, above)` (indices).
    pub v_compat: Vec<(usize, usize)>,
    /// Grid exponent: the grid is `2ⁿ × 2ⁿ`.
    pub n: usize,
}

impl TilingSystem {
    /// A checkerboard system: two tiles, each compatible only with the
    /// other — always solvable.
    pub fn checkerboard(n: usize) -> Self {
        TilingSystem {
            tiles: vec!["t0".into(), "t1".into()],
            h_compat: vec![(0, 1), (1, 0)],
            v_compat: vec![(0, 1), (1, 0)],
            n,
        }
    }

    /// A single tile incompatible with itself — unsolvable for any grid
    /// wider than one cell.
    pub fn unsolvable(n: usize) -> Self {
        TilingSystem {
            tiles: vec!["t0".into()],
            h_compat: vec![],
            v_compat: vec![],
            n,
        }
    }

    /// Side length of the grid.
    pub fn side(&self) -> usize {
        1usize << self.n
    }

    /// Brute-force tiler: row-major backtracking. Returns
    /// `f(x, y) = tile index` as a row-major vector.
    pub fn solve_brute_force(&self) -> Option<Vec<usize>> {
        let side = self.side();
        let cells = side * side;
        let mut f = vec![usize::MAX; cells];
        let h_ok = |a: usize, b: usize| self.h_compat.contains(&(a, b));
        let v_ok = |a: usize, b: usize| self.v_compat.contains(&(a, b));
        fn go(
            i: usize,
            cells: usize,
            side: usize,
            sys: &TilingSystem,
            f: &mut Vec<usize>,
            h_ok: &impl Fn(usize, usize) -> bool,
            v_ok: &impl Fn(usize, usize) -> bool,
        ) -> bool {
            if i == cells {
                return true;
            }
            let (x, y) = (i % side, i / side);
            for t in 0..sys.tiles.len() {
                if i == 0 && t != 0 {
                    continue; // f(0,0) = t0
                }
                if x > 0 && !h_ok(f[i - 1], t) {
                    continue;
                }
                if y > 0 && !v_ok(f[i - side], t) {
                    continue;
                }
                f[i] = t;
                if go(i + 1, cells, side, sys, f, h_ok, v_ok) {
                    return true;
                }
                f[i] = usize::MAX;
            }
            false
        }
        go(0, cells, side, self, &mut f, &h_ok, &v_ok).then_some(f)
    }
}

/// The fixed annotated mapping of the reduction (`#op(Σα) = 1`).
pub fn mapping() -> Mapping {
    Mapping::parse(
        "H(x:cl, y:cl) <- Hs(x, y);\n\
         V(x:cl, y:cl) <- Vs(x, y);\n\
         N(x:cl) <- Ns(x);\n\
         Gh(x:cl, y:op) <- Ns(x);\n\
         Gv(x:cl, y:op) <- Ns(x);\n\
         F(x:cl, y:op) <- Tile(x);\n\
         Empty(x:cl) <- Emptys(x);\n\
         Less(x:cl, y:cl) <- Ls(x, y)",
    )
    .expect("the tiling mapping parses")
}

/// The source instance encoding a tiling system.
pub fn source(sys: &TilingSystem) -> Instance {
    let mut s = Instance::new();
    for &(a, b) in &sys.h_compat {
        s.insert_names("Hs", &[&sys.tiles[a], &sys.tiles[b]]);
    }
    for &(a, b) in &sys.v_compat {
        s.insert_names("Vs", &[&sys.tiles[a], &sys.tiles[b]]);
    }
    for i in 1..=sys.n {
        s.insert_names("Ns", &[&format!("{i}")]);
    }
    for t in &sys.tiles {
        s.insert_names("Tile", &[t]);
    }
    s.insert_names("Emptys", &[EMPTY_NAME]);
    for i in 1..=sys.n {
        for j in (i + 1)..=sys.n {
            s.insert_names("Ls", &[&format!("{i}"), &format!("{j}")]);
        }
    }
    s
}

fn v(name: &str) -> Var {
    Var::new(name)
}

fn atom(rel: &str, vars: &[&str]) -> Formula {
    Formula::atom(rel, vars.iter().map(|n| Term::var(n)).collect())
}

/// `Pos(y) = ¬Empty(y) ∧ ∃t F(t, y)` with a fresh `t`-variable per use.
fn pos(yvar: &str, uniq: &str) -> Formula {
    let t = format!("pt{uniq}");
    Formula::and([
        Formula::not(atom("Empty", &[yvar])),
        Formula::exists(vec![v(&t)], atom("F", &[&t, yvar])),
    ])
}

/// `a-succ(z, y)` for axis `a` (`Gh`/`Gv`): `y`'s `a`-coordinate is the
/// bit-vector successor of `z`'s, and the other coordinate agrees.
fn a_succ(ga: &str, gother: &str, zvar: &str, yvar: &str, uniq: &str) -> Formula {
    let i = format!("i{uniq}");
    let j = format!("j{uniq}");
    Formula::and([
        // Other coordinate unchanged.
        Formula::forall(
            vec![v(&i)],
            Formula::iff(atom(gother, &[&i, zvar]), atom(gother, &[&i, yvar])),
        ),
        // Successor on the a-coordinate: lowest flipped bit i.
        Formula::exists(
            vec![v(&i)],
            Formula::and([
                atom(ga, &[&i, yvar]),
                Formula::not(atom(ga, &[&i, zvar])),
                Formula::forall(
                    vec![v(&j)],
                    Formula::implies(
                        atom("Less", &[&j, &i]),
                        Formula::and([atom(ga, &[&j, zvar]), Formula::not(atom(ga, &[&j, yvar]))]),
                    ),
                ),
                Formula::forall(
                    vec![v(&j)],
                    Formula::implies(
                        atom("Less", &[&i, &j]),
                        Formula::iff(atom(ga, &[&j, zvar]), atom(ga, &[&j, yvar])),
                    ),
                ),
            ]),
        ),
    ])
}

/// The sentence `β` of Theorem 3 (independent of the input instance; the
/// corner tile name is the only parameter).
pub fn beta(t0_name: &str) -> Formula {
    // β1: each tile maps only to the empty value or only to positions.
    let beta1 = Formula::not(Formula::exists(
        vec![v("b1t"), v("b1y1"), v("b1y2")],
        Formula::and([
            atom("F", &["b1t", "b1y1"]),
            atom("F", &["b1t", "b1y2"]),
            atom("Empty", &["b1y1"]),
            Formula::not(atom("Empty", &["b1y2"])),
        ]),
    ));
    // β2: F is a function on non-empty values.
    let beta2 = Formula::forall(
        vec![v("b2x"), v("b2t"), v("b2u")],
        Formula::implies(
            Formula::and([
                Formula::not(atom("Empty", &["b2x"])),
                atom("F", &["b2t", "b2x"]),
                atom("F", &["b2u", "b2x"]),
            ]),
            Formula::Eq(Term::var("b2t"), Term::var("b2u")),
        ),
    );
    // β31: position (2ⁿ−1, 2ⁿ−1) — all bits set — is represented exactly once.
    let beta31 = Formula::exists_unique(
        v("b31y"),
        Formula::and([
            pos("b31y", "b31"),
            Formula::forall(
                vec![v("b31i")],
                Formula::implies(
                    atom("N", &["b31i"]),
                    Formula::and([atom("Gh", &["b31i", "b31y"]), atom("Gv", &["b31i", "b31y"])]),
                ),
            ),
        ]),
    );
    // β32: represented positions have their predecessors represented
    // exactly once (horizontal and vertical).
    let pred = |ga: &str, gother: &str, uniq: &str| {
        let i = format!("pi{uniq}");
        Formula::implies(
            Formula::exists(vec![v(&i)], atom(ga, &[&i, "b32y"])),
            Formula::exists_unique(
                v(&format!("pz{uniq}")),
                Formula::and([
                    pos(&format!("pz{uniq}"), uniq),
                    a_succ(ga, gother, &format!("pz{uniq}"), "b32y", uniq),
                ]),
            ),
        )
    };
    let beta32 = Formula::forall(
        vec![v("b32y")],
        Formula::implies(
            pos("b32y", "b32"),
            Formula::and([pred("Gh", "Gv", "ph"), pred("Gv", "Gh", "pv")]),
        ),
    );
    // β41: tile t0 sits on position (0,0).
    let beta41 = Formula::exists(
        vec![v("b41y")],
        Formula::and([
            Formula::Atom(
                dx_relation::RelSym::new("F"),
                vec![Term::cst(t0_name), Term::var("b41y")],
            ),
            Formula::not(atom("Empty", &["b41y"])),
            Formula::not(Formula::exists(
                vec![v("b41i")],
                Formula::or([atom("Gh", &["b41i", "b41y"]), atom("Gv", &["b41i", "b41y"])]),
            )),
        ]),
    );
    // β42: adjacent positions carry compatible tiles.
    let beta42 = Formula::forall(
        vec![v("b42x"), v("b42y"), v("b42t"), v("b42u")],
        Formula::implies(
            Formula::and([
                atom("F", &["b42t", "b42x"]),
                atom("F", &["b42u", "b42y"]),
                Formula::not(atom("Empty", &["b42x"])),
                Formula::not(atom("Empty", &["b42y"])),
            ]),
            Formula::and([
                Formula::implies(
                    a_succ("Gh", "Gv", "b42x", "b42y", "qh"),
                    atom("H", &["b42t", "b42u"]),
                ),
                Formula::implies(
                    a_succ("Gv", "Gh", "b42x", "b42y", "qv"),
                    atom("V", &["b42t", "b42u"]),
                ),
            ]),
        ),
    );
    Formula::and([beta1, beta2, beta31, beta32, beta41, beta42])
}

/// The query `Q_φ(x) = ¬(β ∧ Empty(x))` of the reduction: the certain answer
/// to `Q_φ` on `'nullpos'` is *true* iff **no** tiling exists.
pub fn query(sys: &TilingSystem) -> Query {
    Query::new(
        vec![v("qx")],
        Formula::not(Formula::and([beta(&sys.tiles[0]), atom("Empty", &["qx"])])),
    )
}

/// Build the witness instance `I ∈ Rep_A(CSol_A(S))` encoding a tiling
/// (row-major `f`, as returned by [`TilingSystem::solve_brute_force`]).
pub fn witness_from_tiling(sys: &TilingSystem, f: &[usize]) -> Instance {
    let side = sys.side();
    assert_eq!(f.len(), side * side, "tiling must cover the grid");
    let mut i = Instance::new();
    // Copies of the closed relations.
    for &(a, b) in &sys.h_compat {
        i.insert_names("H", &[&sys.tiles[a], &sys.tiles[b]]);
    }
    for &(a, b) in &sys.v_compat {
        i.insert_names("V", &[&sys.tiles[a], &sys.tiles[b]]);
    }
    for bit in 1..=sys.n {
        i.insert_names("N", &[&format!("{bit}")]);
    }
    i.insert_names("Empty", &[EMPTY_NAME]);
    for a in 1..=sys.n {
        for b in (a + 1)..=sys.n {
            i.insert_names("Less", &[&format!("{a}"), &format!("{b}")]);
        }
    }
    // Cells with bit-vector coordinates.
    let cell = |x: usize, y: usize| format!("cell_{x}_{y}");
    let mut used = vec![false; sys.tiles.len()];
    for y in 0..side {
        for x in 0..side {
            let c = cell(x, y);
            for bit in 1..=sys.n {
                if x & (1 << (bit - 1)) != 0 {
                    i.insert_names("Gh", &[&format!("{bit}"), &c]);
                }
                if y & (1 << (bit - 1)) != 0 {
                    i.insert_names("Gv", &[&format!("{bit}"), &c]);
                }
            }
            let t = f[y * side + x];
            used[t] = true;
            i.insert_names("F", &[&sys.tiles[t], &c]);
        }
    }
    // Unused tiles map to the empty value (β1 demands exclusivity).
    for (t, was_used) in used.iter().enumerate() {
        if !was_used {
            i.insert_names("F", &[&sys.tiles[t], EMPTY_NAME]);
        }
    }
    i
}

/// Machine-check the verification direction of the reduction for a solved
/// system: the witness built from a brute-force tiling is a `Rep_A` member
/// and satisfies `β ∧ Empty(nullpos)` — certifying
/// `'nullpos' ∉ certain(Q_φ, S)`.
pub fn verify_witness(sys: &TilingSystem) -> Option<Instance> {
    let f = sys.solve_brute_force()?;
    let w = witness_from_tiling(sys, &f);
    let csol = canonical_solution(&mapping(), &source(sys));
    rep_a_membership(&csol.instance, &w)?;
    let ev = Evaluator::for_formula(&w, &beta(&sys.tiles[0]));
    ev.holds(&beta(&sys.tiles[0])).then_some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_tiler() {
        assert!(TilingSystem::checkerboard(1).solve_brute_force().is_some());
        assert!(TilingSystem::unsolvable(1).solve_brute_force().is_none());
    }

    #[test]
    fn mapping_statistics() {
        let m = mapping();
        assert_eq!(m.num_op(), 1, "#op(Σα) = 1, the coNEXPTIME regime");
    }

    #[test]
    fn checkerboard_witness_verifies() {
        let sys = TilingSystem::checkerboard(1);
        let w = verify_witness(&sys).expect("2×2 checkerboard witness verifies");
        // The witness contains 4 cells, each with one tile.
        let fcount = w.relation(dx_relation::RelSym::new("F")).unwrap().len();
        assert_eq!(fcount, 4);
    }

    #[test]
    fn sabotaged_witness_fails_beta() {
        let sys = TilingSystem::checkerboard(1);
        let f = sys.solve_brute_force().unwrap();
        // Put the corner tile next to itself horizontally: violates β42.
        let mut f2 = f.clone();
        f2[1] = f[0];
        let bad = witness_from_tiling(&sys, &f2);
        let ev = Evaluator::for_formula(&bad, &beta(&sys.tiles[0]));
        assert!(
            !ev.holds(&beta(&sys.tiles[0])),
            "incompatible adjacency must fail β"
        );
    }

    #[test]
    fn beta_requires_the_corner_tile() {
        let sys = TilingSystem::checkerboard(1);
        let f = sys.solve_brute_force().unwrap();
        // Swap tiles globally: (0,0) now has t1, violating β41.
        let swapped: Vec<usize> = f.iter().map(|&t| 1 - t).collect();
        let w = witness_from_tiling(&sys, &swapped);
        let ev = Evaluator::for_formula(&w, &beta(&sys.tiles[0]));
        assert!(!ev.holds(&beta(&sys.tiles[0])));
    }

    #[test]
    fn query_shape() {
        let sys = TilingSystem::checkerboard(1);
        let q = query(&sys);
        assert_eq!(q.arity(), 1);
        // The reduction's query is genuinely full FO.
        assert_eq!(q.class(), dx_logic::QueryClass::FullFirstOrder);
    }
}
