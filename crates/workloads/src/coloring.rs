//! 3-colorability and the Theorem 4 composition reduction.
//!
//! The paper proves NP-hardness of `Comp(Σcl, Δα′)` (for CQ-STDs and any
//! `α′`) by reduction from 3-colorability:
//!
//! ```text
//! Σ:  C(x, z) :- V(x)            (z: the colour null of vertex x)
//!     E'(x, y) :- E(x, y)
//!     D'(x, y) :- D(x, y)
//! Δ:  D̄(u, v) :- E'(x, y) ∧ C(x, u) ∧ C(y, v)
//!     D̄(u, v) :- D'(u, v)
//! ```
//!
//! with `D` the disequality relation on `{r, g, b}` and the target `W`
//! interpreting `D̄` as exactly `D`. Then `(S, W) ∈ Σcl ∘ Δα′` iff the
//! valuation of the colour nulls is a proper 3-colouring.

use dx_chase::Mapping;
use dx_core::compose::comp_membership;
use dx_relation::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph on vertices `0..n` (stored as directed edge pairs).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges (u, v) with u ≠ v.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// A *planted* 3-colourable graph: vertices pre-assigned random colours,
    /// `m` random edges drawn only between colour classes.
    pub fn planted_colorable(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let colors: Vec<u8> = (0..n).map(|_| rng.gen_range(0..3u8)).collect();
        let mut edges = Vec::new();
        let mut attempts = 0;
        while edges.len() < m && attempts < 50 * m + 100 {
            attempts += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && colors[u] != colors[v] && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Graph { n, edges }
    }

    /// The complete graph `K_n` (3-colourable iff `n ≤ 3`).
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        Graph { n, edges }
    }

    /// The cycle `C_n` (3-colourable for all `n ≥ 3`; 2-colourable iff even).
    pub fn cycle(n: usize) -> Self {
        Graph {
            n,
            edges: (0..n).map(|i| (i, (i + 1) % n)).collect(),
        }
    }

    /// Brute-force 3-colouring baseline.
    pub fn color_brute_force(&self) -> Option<Vec<u8>> {
        let mut colors = vec![0u8; self.n];
        fn go(i: usize, g: &Graph, colors: &mut Vec<u8>) -> bool {
            if i == g.n {
                return true;
            }
            for c in 0..3u8 {
                let ok = g
                    .edges
                    .iter()
                    .filter(|&&(u, v)| (u == i && v < i) || (v == i && u < i))
                    .all(|&(u, v)| {
                        let other = if u == i { v } else { u };
                        colors[other] != c
                    });
                if ok {
                    colors[i] = c;
                    if go(i + 1, g, colors) {
                        return true;
                    }
                }
            }
            false
        }
        go(0, self, &mut colors).then_some(colors)
    }
}

/// The Σ side of the reduction (all-closed, CQ bodies).
pub fn sigma() -> Mapping {
    Mapping::parse(
        "C(x:cl, z:cl) <- V(x);\n\
         Ep(x:cl, y:cl) <- E(x, y);\n\
         Dp(x:cl, y:cl) <- D(x, y)",
    )
    .expect("parses")
}

/// The Δ side of the reduction.
pub fn delta() -> Mapping {
    Mapping::parse(
        "Dbar(u:cl, v:cl) <- Ep(x, y) & C(x, u) & C(y, v);\n\
         Dbar(u:cl, v:cl) <- Dp(u, v)",
    )
    .expect("parses")
}

const COLORS: [&str; 3] = ["r", "g", "b"];

/// The source instance: `V`, `E` from the graph, `D` = disequality on
/// colours.
pub fn source(g: &Graph) -> Instance {
    let mut s = Instance::new();
    for v in 0..g.n {
        s.insert_names("V", &[&format!("v{v}")]);
    }
    for &(u, v) in &g.edges {
        s.insert_names("E", &[&format!("v{u}"), &format!("v{v}")]);
    }
    for a in COLORS {
        for b in COLORS {
            if a != b {
                s.insert_names("D", &[a, b]);
            }
        }
    }
    s
}

/// The target instance: `D̄` = disequality on colours.
pub fn target() -> Instance {
    let mut w = Instance::new();
    for a in COLORS {
        for b in COLORS {
            if a != b {
                w.insert_names("Dbar", &[a, b]);
            }
        }
    }
    w
}

/// Decide 3-colourability *through the composition problem*:
/// `(S, W) ∈ Σcl ∘ Δ` iff the graph is 3-colourable (Theorem 4).
pub fn solve_via_composition(g: &Graph) -> bool {
    comp_membership(&sigma(), &delta(), &source(g), &target(), None).member
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_baseline_sanity() {
        assert!(Graph::complete(3).color_brute_force().is_some());
        assert!(Graph::complete(4).color_brute_force().is_none());
        assert!(Graph::cycle(5).color_brute_force().is_some());
    }

    #[test]
    fn colorable_graphs_are_members() {
        let g = Graph::cycle(3);
        assert!(solve_via_composition(&g));
    }

    #[test]
    fn k4_is_rejected() {
        let g = Graph::complete(4);
        assert!(!solve_via_composition(&g));
    }

    #[test]
    fn reduction_agrees_with_brute_force() {
        for seed in 0..4 {
            let g = Graph::planted_colorable(4, 4, seed);
            assert_eq!(
                g.color_brute_force().is_some(),
                solve_via_composition(&g),
                "seed {seed}: {g:?}"
            );
        }
    }
}
