//! The paper's §1 running example: conference submissions and reviews.
//!
//! Source schema `σ = {Papers(paper#, title), Assignments(paper#, reviewer)}`,
//! target schema `τ = {Reviews(paper#, review), Submissions(paper#, author)}`,
//! with the three annotated rules from the introduction:
//!
//! ```text
//! Submissions(x:cl, z:op) :- Papers(x, y)
//! Reviews(x:cl, z:cl)     :- Assignments(x, y)
//! Reviews(x:cl, z:op)     :- Papers(x, y) ∧ ¬∃r Assignments(x, r)
//! ```

use dx_chase::Mapping;
use dx_logic::Query;
use dx_relation::Instance;

/// The three-rule annotated mapping of §1.
pub fn mapping() -> Mapping {
    Mapping::parse(
        "Submissions(x:cl, z:op) <- Papers(x, y);\n\
         Reviews(x:cl, z:cl)     <- Assignments(x, y);\n\
         Reviews(x:cl, z:op)     <- Papers(x, y) & !exists r. Assignments(x, r)",
    )
    .expect("the running example parses")
}

/// A source with `n` papers; paper `i` is assigned to reviewer `r{i%k}` when
/// `i % assign_every == 0` (so a mix of assigned and unassigned papers),
/// with `k = 3` reviewers.
pub fn source(n: usize, assign_every: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("Papers", &[&format!("p{i}"), &format!("title{i}")]);
        if assign_every > 0 && i % assign_every == 0 {
            s.insert_names("Assignments", &[&format!("p{i}"), &format!("r{}", i % 3)]);
        }
    }
    s
}

/// The motivating query: *does every paper have exactly one author?* —
/// certain-true under all-CWA (the anomaly), certain-false once the author
/// attribute is open.
pub fn one_author_query() -> Query {
    Query::boolean(
        dx_logic::parse_formula(
            "forall p a1 a2. (Submissions(p, a1) & Submissions(p, a2) -> a1 = a2)",
        )
        .expect("query parses"),
    )
}

/// A positive query: papers that have some review (`∃z Reviews(x, z)`),
/// answerable by naive evaluation for every annotation (Proposition 3).
pub fn reviewed_query() -> Query {
    Query::parse(&["x"], "exists z. Reviews(x, z)").expect("query parses")
}

/// A positive Boolean join query: is some paper both submitted and reviewed?
pub fn submitted_and_reviewed() -> Query {
    Query::boolean(
        dx_logic::parse_formula("exists x a r. Submissions(x, a) & Reviews(x, r)")
            .expect("query parses"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::canonical_solution;
    use dx_relation::RelSym;

    #[test]
    fn canonical_solution_shape() {
        let m = mapping();
        let s = source(4, 2); // papers p0..p3; p0, p2 assigned
        let csol = canonical_solution(&m, &s);
        // Submissions: one tuple per paper.
        assert_eq!(
            csol.instance
                .relation(RelSym::new("Submissions"))
                .unwrap()
                .len(),
            4
        );
        // Reviews: one closed tuple per assignment (p0, p2) + one open-review
        // tuple per unassigned paper (p1, p3).
        assert_eq!(
            csol.instance
                .relation(RelSym::new("Reviews"))
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn reviewed_query_is_certain_for_all_papers() {
        let m = mapping();
        let s = source(3, 1); // all assigned
        let (rel, _) = dx_core::certain::certain_answers(&m, &s, &reviewed_query(), None);
        assert_eq!(rel.len(), 3, "every paper certainly has a review");
    }

    #[test]
    fn one_author_flips_with_annotation() {
        let m = mapping();
        let s = source(2, 0);
        let q = one_author_query();
        let empty = dx_relation::Tuple::new(Vec::<dx_relation::Value>::new());
        let mixed = dx_core::certain::certain_contains(&m, &s, &q, &empty, None);
        assert!(!mixed.certain, "open author admits multiple authors");
        let cwa = dx_core::certain::certain_cwa(&m, &s, &q, &empty);
        assert!(cwa.certain, "the CWA anomaly");
    }
}
