//! Seeded random generators for property tests and benches.
//!
//! Everything is driven by an explicit seed (via `StdRng`), so failures are
//! reproducible; no generator touches global randomness.

use dx_chase::target_deps::{is_weakly_acyclic, Egd, TargetDep, Tgd};
use dx_chase::{Mapping, Std, TargetAtom};
use dx_logic::{Formula, Term};
use dx_relation::{Ann, Annotation, Instance, RelSym, Schema, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random ground instance over `schema`: `tuples_per_rel` tuples per
/// relation, values drawn from `n_consts` constants `k0 … k{n-1}`.
pub fn random_instance(
    schema: &Schema,
    tuples_per_rel: usize,
    n_consts: usize,
    rng: &mut StdRng,
) -> Instance {
    let mut inst = Instance::new();
    for (rel, arity) in schema.iter() {
        inst.declare(rel, arity);
        for _ in 0..tuples_per_rel {
            let names: Vec<String> = (0..arity)
                .map(|_| format!("k{}", rng.gen_range(0..n_consts)))
                .collect();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            inst.insert(rel, dx_relation::Tuple::from_names(&refs));
        }
    }
    inst
}

/// A random annotation of the given arity with each position independently
/// closed with probability `p_closed`.
pub fn random_annotation(arity: usize, p_closed: f64, rng: &mut StdRng) -> Annotation {
    Annotation::new(
        (0..arity)
            .map(|_| {
                if rng.gen_bool(p_closed) {
                    Ann::Closed
                } else {
                    Ann::Open
                }
            })
            .collect::<Vec<_>>(),
    )
}

/// Re-annotate a mapping with independent random annotations.
pub fn randomly_annotated(mapping: &Mapping, p_closed: f64, rng: &mut StdRng) -> Mapping {
    let stds = mapping
        .stds
        .iter()
        .map(|std| {
            Std::new(
                std.head
                    .iter()
                    .map(|a| {
                        TargetAtom::new(
                            a.rel,
                            a.args.clone(),
                            random_annotation(a.arity(), p_closed, rng),
                        )
                    })
                    .collect(),
                std.body.clone(),
            )
        })
        .collect();
    Mapping {
        source: mapping.source.clone(),
        target: mapping.target.clone(),
        stds,
    }
}

/// A random single-atom-body mapping over `schema`: for each source
/// relation, a rule whose head keeps a random subset of the body variables
/// (frontier) and adds `extra_nulls` existential positions, annotated
/// randomly.
pub fn random_mapping(
    schema: &Schema,
    extra_nulls: usize,
    p_closed: f64,
    rng: &mut StdRng,
) -> Mapping {
    let mut stds = Vec::new();
    for (idx, (rel, arity)) in schema.iter().enumerate() {
        let body_vars: Vec<Var> = (0..arity).map(|i| Var::indexed("x", i)).collect();
        let body = Formula::Atom(rel, body_vars.iter().map(|&v| Term::Var(v)).collect());
        // Head: keep each body var with probability 1/2 (at least one), then
        // append existential variables.
        let mut head_terms: Vec<Term> = body_vars
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .map(|&v| Term::Var(v))
            .collect();
        if head_terms.is_empty() {
            head_terms.push(Term::Var(body_vars[0]));
        }
        for z in 0..extra_nulls {
            head_terms.push(Term::Var(Var::new(&format!("z{idx}_{z}"))));
        }
        let ann = random_annotation(head_terms.len(), p_closed, rng);
        stds.push(Std::new(
            vec![TargetAtom::new(
                RelSym::new(&format!("{}_t", rel.name())),
                head_terms,
                ann,
            )],
            body,
        ));
    }
    Mapping::from_stds(stds)
}

/// Sample a ground member of `⟦S⟧_Σα` by applying a random valuation to the
/// canonical solution and randomly replicating open tuples. Useful for
/// generating positive membership cases.
pub fn sample_member(
    mapping: &Mapping,
    source: &Instance,
    n_consts: usize,
    replications: usize,
    rng: &mut StdRng,
) -> Instance {
    use dx_relation::{Valuation, Value};
    let csol = dx_chase::canonical_solution(mapping, source);
    let nulls: Vec<_> = csol.instance.nulls().into_iter().collect();
    let mut v = Valuation::new();
    for n in nulls {
        v.set(
            n,
            dx_relation::ConstId::new(&format!("k{}", rng.gen_range(0..n_consts))),
        );
    }
    let valued = csol.instance.apply(&v);
    let mut out = valued.rel_part();
    // Random replications of open tuples.
    for _ in 0..replications {
        let rels: Vec<_> = valued.relations().collect();
        if rels.is_empty() {
            break;
        }
        let (rel, arel) = rels[rng.gen_range(0..rels.len())];
        let tuples: Vec<_> = arel.iter().cloned().collect();
        if tuples.is_empty() {
            continue;
        }
        let at = &tuples[rng.gen_range(0..tuples.len())];
        if at.ann.count_open() == 0 {
            continue;
        }
        let mut vals: Vec<Value> = at.tuple.values().to_vec();
        for p in at.ann.open_positions() {
            vals[p] = Value::c(&format!("k{}", rng.gen_range(0..n_consts)));
        }
        out.insert(rel, dx_relation::Tuple::new(vals));
    }
    out
}

/// A random **weakly acyclic** set of target dependencies over `target`:
/// up to `n_deps` dependencies, each an egd (a functional dependency on a
/// relation of arity ≥ 2) with probability `p_egd`, otherwise a tgd that
/// either symmetrizes a binary relation or projects a relation into a fresh
/// `…_d{i}` relation with one randomly annotated existential position.
///
/// Candidates whose addition would break weak acyclicity are dropped, so
/// every returned set chases to termination; the result may be shorter than
/// `n_deps` (or empty for degenerate schemas).
pub fn random_target_deps(
    target: &Schema,
    n_deps: usize,
    p_egd: f64,
    rng: &mut StdRng,
) -> Vec<TargetDep> {
    let rels: Vec<(RelSym, usize)> = target.iter().collect();
    if rels.is_empty() {
        return Vec::new();
    }
    let mut deps: Vec<TargetDep> = Vec::new();
    for i in 0..n_deps {
        let (rel, arity) = rels[rng.gen_range(0..rels.len())];
        let candidate = if arity >= 2 && rng.gen_bool(p_egd) {
            // FD: key = a random non-empty prefix of the positions,
            // determined position = a random non-key position.
            let key_len = rng.gen_range(1..arity);
            let det = rng.gen_range(key_len..arity);
            let mk_args = |side: usize| -> Vec<Term> {
                (0..arity)
                    .map(|p| {
                        if p < key_len {
                            Term::Var(Var::indexed("k", p))
                        } else if p == det {
                            Term::Var(Var::indexed("d", side))
                        } else {
                            Term::Var(Var::indexed(&format!("o{side}"), p))
                        }
                    })
                    .collect()
            };
            TargetDep::Egd(Egd {
                body: vec![(rel, mk_args(0)), (rel, mk_args(1))],
                eq: (
                    Term::Var(Var::indexed("d", 0)),
                    Term::Var(Var::indexed("d", 1)),
                ),
            })
        } else if arity == 2 && rng.gen_bool(0.5) {
            // Symmetry tgd (no existential positions).
            let x = Var::indexed("x", 0);
            let y = Var::indexed("x", 1);
            TargetDep::Tgd(Tgd {
                body: vec![(rel, vec![Term::Var(x), Term::Var(y)])],
                head: vec![TargetAtom::new(
                    rel,
                    vec![Term::Var(y), Term::Var(x)],
                    random_annotation(2, 0.5, rng),
                )],
            })
        } else {
            // Projection into a fresh relation with one invented position.
            let body_vars: Vec<Var> = (0..arity).map(|p| Var::indexed("x", p)).collect();
            let kept: Vec<Var> = body_vars
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.6))
                .collect();
            let mut head_terms: Vec<Term> = if kept.is_empty() {
                vec![Term::Var(body_vars[0])]
            } else {
                kept.into_iter().map(Term::Var).collect()
            };
            head_terms.push(Term::Var(Var::new(&format!("zdep{i}"))));
            let head_rel = RelSym::new(&format!("{}_d{i}", rel.name()));
            let ann = random_annotation(head_terms.len(), 0.5, rng);
            TargetDep::Tgd(Tgd {
                body: vec![(rel, body_vars.into_iter().map(Term::Var).collect())],
                head: vec![TargetAtom::new(head_rel, head_terms, ann)],
            })
        };
        deps.push(candidate);
        if !is_weakly_acyclic(&deps) {
            deps.pop();
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible() {
        let schema = Schema::from_pairs([("A", 2), ("B", 1)]);
        let i1 = random_instance(&schema, 5, 4, &mut rng(7));
        let i2 = random_instance(&schema, 5, 4, &mut rng(7));
        assert_eq!(i1, i2);
        assert!(i1.is_ground());
    }

    #[test]
    fn random_mappings_validate() {
        let schema = Schema::from_pairs([("A", 2), ("B", 3)]);
        for seed in 0..5 {
            let m = random_mapping(&schema, 1, 0.5, &mut rng(seed));
            assert_eq!(m.stds.len(), 2);
            // Head variables are frontier ∪ existential; construction is
            // well-formed by Mapping::from_stds validation.
            let _ = m.num_op();
        }
    }

    #[test]
    fn random_target_deps_are_weakly_acyclic() {
        let target = Schema::from_pairs([("T1", 2), ("T2", 3), ("T3", 1)]);
        for seed in 0..20 {
            let mut r = rng(seed);
            let deps = random_target_deps(&target, 4, 0.4, &mut r);
            assert!(is_weakly_acyclic(&deps), "seed {seed}");
            // Reproducible.
            let again = random_target_deps(&target, 4, 0.4, &mut rng(seed));
            assert_eq!(deps.len(), again.len());
        }
    }

    #[test]
    fn sampled_members_really_are_members() {
        let schema = Schema::from_pairs([("A", 2)]);
        for seed in 0..6 {
            let mut r = rng(seed);
            let m = random_mapping(&schema, 1, 0.5, &mut r);
            let s = random_instance(&schema, 3, 3, &mut r);
            let t = sample_member(&m, &s, 4, 2, &mut r);
            assert!(
                dx_core::semantics::is_member(&m, &s, &t),
                "seed {seed}: sampled target must be a member\nmapping:\n{m}\nS={s}\nT={t}"
            );
        }
    }
}
