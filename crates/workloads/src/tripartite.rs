//! Tripartite matching and the Theorem 2 reduction.
//!
//! Theorem 2's NP-hardness: given disjoint sets `B₀, G₀, H₀` of size `n` and
//! a compatibility relation `C₀ ⊆ B₀ × G₀ × H₀`, build source/target
//! instances for the fixed annotated mapping
//!
//! ```text
//! C(x:op, y:op, z:op), B(x:cl), G(y:cl), H(z:cl) :- N(w)
//! C(x:op, y:op, z:op)                            :- Cp(x, y, z)
//! ```
//!
//! so that `T ∈ ⟦S⟧_Σα` iff a perfect tripartite matching exists. The
//! valuation of the `i`-th rule-1 nulls *is* the `i`-th chosen triple; the
//! closed annotations on `B/G/H` force the chosen triples to cover all
//! elements.

use dx_chase::Mapping;
use dx_core::semantics;
use dx_relation::Instance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A tripartite matching instance: element universe sizes `n` and the
/// compatibility triples (indices into `0..n` per part).
#[derive(Clone, Debug)]
pub struct TripartiteInstance {
    /// Size of each part.
    pub n: usize,
    /// Compatible triples `(b, g, h)`.
    pub triples: Vec<(usize, usize, usize)>,
}

impl TripartiteInstance {
    /// A *planted* instance: a hidden perfect matching plus `extra` random
    /// triples (always solvable).
    pub fn planted(n: usize, extra: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs: Vec<usize> = (0..n).collect();
        let mut hs: Vec<usize> = (0..n).collect();
        gs.shuffle(&mut rng);
        hs.shuffle(&mut rng);
        let mut triples: Vec<(usize, usize, usize)> = (0..n).map(|b| (b, gs[b], hs[b])).collect();
        for _ in 0..extra {
            triples.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0..n),
            ));
        }
        triples.sort_unstable();
        triples.dedup();
        TripartiteInstance { n, triples }
    }

    /// A random instance with `m` triples (may or may not be solvable).
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut triples: Vec<(usize, usize, usize)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                )
            })
            .collect();
        triples.sort_unstable();
        triples.dedup();
        TripartiteInstance { n, triples }
    }

    /// Brute-force baseline: find a perfect matching by backtracking.
    pub fn solve_brute_force(&self) -> Option<Vec<(usize, usize, usize)>> {
        let mut used_g = vec![false; self.n];
        let mut used_h = vec![false; self.n];
        let mut by_b: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for &(b, g, h) in &self.triples {
            by_b[b].push((g, h));
        }
        let mut chosen = Vec::with_capacity(self.n);
        fn go(
            b: usize,
            n: usize,
            by_b: &[Vec<(usize, usize)>],
            used_g: &mut [bool],
            used_h: &mut [bool],
            chosen: &mut Vec<(usize, usize, usize)>,
        ) -> bool {
            if b == n {
                return true;
            }
            for &(g, h) in &by_b[b] {
                if !used_g[g] && !used_h[h] {
                    used_g[g] = true;
                    used_h[h] = true;
                    chosen.push((b, g, h));
                    if go(b + 1, n, by_b, used_g, used_h, chosen) {
                        return true;
                    }
                    chosen.pop();
                    used_g[g] = false;
                    used_h[h] = false;
                }
            }
            false
        }
        go(0, self.n, &by_b, &mut used_g, &mut used_h, &mut chosen).then_some(chosen)
    }
}

/// The fixed annotated mapping of the reduction (`#cl(Σα) = 1`).
pub fn mapping() -> Mapping {
    Mapping::parse(
        "C(x:op, y:op, z:op), B(x:cl), G(y:cl), H(z:cl) <- N(w);\n\
         C(x:op, y:op, z:op) <- Cp(x, y, z)",
    )
    .expect("the reduction mapping parses")
}

/// The source instance: `N = {1..n}`, `Cp = C₀` (elements named `b{i}`,
/// `g{i}`, `h{i}`).
pub fn source(inst: &TripartiteInstance) -> Instance {
    let mut s = Instance::new();
    for i in 1..=inst.n {
        s.insert_names("N", &[&format!("{i}")]);
    }
    for &(b, g, h) in &inst.triples {
        s.insert_names(
            "Cp",
            &[&format!("b{b}"), &format!("g{g}"), &format!("h{h}")],
        );
    }
    s
}

/// The target instance: `C = C₀`, `B = B₀`, `G = G₀`, `H = H₀`.
pub fn target(inst: &TripartiteInstance) -> Instance {
    let mut t = Instance::new();
    for &(b, g, h) in &inst.triples {
        t.insert_names("C", &[&format!("b{b}"), &format!("g{g}"), &format!("h{h}")]);
    }
    for i in 0..inst.n {
        t.insert_names("B", &[&format!("b{i}")]);
        t.insert_names("G", &[&format!("g{i}")]);
        t.insert_names("H", &[&format!("h{i}")]);
    }
    t
}

/// Solve tripartite matching *through the data-exchange membership problem*:
/// `T ∈ ⟦S⟧_Σα` iff a perfect matching exists.
pub fn solve_via_membership(inst: &TripartiteInstance) -> bool {
    let m = mapping();
    semantics::is_member(&m, &source(inst), &target(inst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_instances_are_solvable_both_ways() {
        for seed in 0..5 {
            let inst = TripartiteInstance::planted(3, 2, seed);
            assert!(inst.solve_brute_force().is_some());
            assert!(solve_via_membership(&inst), "seed {seed}");
        }
    }

    #[test]
    fn unsolvable_instance_rejected() {
        // Two b's forced onto the same g: no perfect matching.
        let inst = TripartiteInstance {
            n: 2,
            triples: vec![(0, 0, 0), (1, 0, 1)],
        };
        assert!(inst.solve_brute_force().is_none());
        assert!(!solve_via_membership(&inst));
    }

    #[test]
    fn reduction_agrees_with_brute_force_on_random_instances() {
        for seed in 0..12 {
            let inst = TripartiteInstance::random(3, 5, seed);
            let brute = inst.solve_brute_force().is_some();
            let exchange = solve_via_membership(&inst);
            assert_eq!(brute, exchange, "disagreement at seed {seed}: {inst:?}");
        }
    }

    #[test]
    fn reduction_statistics() {
        let m = mapping();
        assert_eq!(m.num_cl(), 1, "#cl(Σα) = 1 as in the paper");
        assert_eq!(m.num_op(), 3);
    }
}
