//! Copying mappings `R′(x̄) :– R(x̄)`.
//!
//! Copying mappings carry several of the paper's lower bounds (§4): even for
//! them, OWA certain answers of FO queries are intractable, while the CWA
//! behaves well. The builders here produce copy mappings for arbitrary
//! schemas with a chosen annotation, plus the two-rule `#op = 1` shape
//! `R′₁(x̄cl) :– R₁(x̄), R′₂(x̄cl, z op) :– R₂(x̄)` the paper singles out after
//! Theorem 3.

use dx_chase::{Mapping, Std, TargetAtom};
use dx_logic::{Formula, Term};
use dx_relation::{Ann, Annotation, RelSym, Schema, Var};

/// A copying mapping for `schema`: each `R/k` gets `R′(x̄) :– R(x̄)` with
/// every target position annotated `ann`. Target relations are named
/// `{R}_p`.
pub fn copy_mapping(schema: &Schema, ann: Ann) -> Mapping {
    let stds = schema
        .iter()
        .map(|(rel, arity)| {
            let vars: Vec<Var> = (0..arity).map(|i| Var::indexed("x", i)).collect();
            let args: Vec<Term> = vars.iter().map(|&v| Term::Var(v)).collect();
            let head = TargetAtom::new(
                RelSym::new(&format!("{}_p", rel.name())),
                args.clone(),
                Annotation::new(vec![ann; arity]),
            );
            Std::new(vec![head], Formula::Atom(rel, args))
        })
        .collect();
    Mapping::from_stds(stds)
}

/// The paper's minimal `#op = 1` hardness carrier: a copying rule plus one
/// open-null-introducing rule,
/// `R1p(x̄:cl) :– R1(x̄); R2p(x:cl, z:op) :– R2(x)`.
pub fn one_open_null_mapping(arity1: usize) -> Mapping {
    let vars: Vec<Var> = (0..arity1).map(|i| Var::indexed("x", i)).collect();
    let args: Vec<Term> = vars.iter().map(|&v| Term::Var(v)).collect();
    let copy = Std::new(
        vec![TargetAtom::new(
            RelSym::new("R1p"),
            args.clone(),
            Annotation::all_closed(arity1),
        )],
        Formula::Atom(RelSym::new("R1"), args),
    );
    let open = Std::parse("R2p(x:cl, z:op) <- R2(x)").expect("parses");
    Mapping::from_stds(vec![copy, open])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::Instance;

    #[test]
    fn copy_mapping_shape() {
        let schema = Schema::from_pairs([("E", 2), ("V", 1)]);
        let m = copy_mapping(&schema, Ann::Closed);
        assert!(m.is_copying());
        assert!(m.is_all_closed());
        assert_eq!(m.stds.len(), 2);
        assert_eq!(m.target.arity(RelSym::new("E_p")), Some(2));
    }

    #[test]
    fn copy_semantics_under_cwa() {
        let schema = Schema::from_pairs([("E", 2)]);
        let m = copy_mapping(&schema, Ann::Closed);
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let mut copy = Instance::new();
        copy.insert_names("E_p", &["a", "b"]);
        assert!(dx_core::semantics::is_member(&m, &s, &copy));
        let mut bigger = copy.clone();
        bigger.insert_names("E_p", &["c", "d"]);
        assert!(!dx_core::semantics::is_member(&m, &s, &bigger));
        assert!(dx_core::semantics::is_member(&m.all_open(), &s, &bigger));
    }

    #[test]
    fn one_open_null_statistics() {
        let m = one_open_null_mapping(2);
        assert_eq!(m.num_op(), 1);
        assert_eq!(m.num_cl(), 2);
    }
}
