//! # dx-workloads — workload generators and hardness reductions
//!
//! Every lower bound in the paper is witnessed by an explicit reduction;
//! this crate turns each into an executable workload, alongside the worked
//! examples used throughout the text:
//!
//! * [`conference`] — the §1 running example (Papers/Assignments →
//!   Submissions/Reviews) with scalable sources;
//! * [`copying`] — copying mappings `R′(x̄) :– R(x̄)` (the §4 lower-bound
//!   carriers);
//! * [`employees`] — the SkSTD example (8) (employee ids and phones);
//! * [`tripartite`] — tripartite matching ↔ `T ∈ ⟦S⟧_Σα` (Theorem 2's
//!   NP-hardness), with a brute-force baseline;
//! * [`coloring`] — 3-colorability ↔ `Comp(Σcl, Δα′)` (Theorem 4's
//!   NP-hardness), with a brute-force baseline;
//! * [`tiling`] — the 2ⁿ×2ⁿ tiling system behind Theorem 3's
//!   coNEXPTIME-hardness: the fixed mapping, the sentence `β`, witness
//!   construction from tilings, and a brute-force tiler;
//! * [`powerset`] — the polynomial-hierarchy gadget of §4 (`Φ_p`: an open
//!   null relation encodes a powerset) with an MSO-style worked example;
//! * [`random_gen`] — seeded random instances/mappings/annotations for
//!   property tests and benches.

#![warn(missing_docs)]

pub mod coloring;
pub mod conference;
pub mod copying;
pub mod employees;
pub mod powerset;
pub mod random_gen;
pub mod tiling;
pub mod tripartite;
