//! The SkSTD example (8): inventing employee ids and phones.
//!
//! `T(f(em):cl, em:cl, g(em, proj):op) :- S(em, proj)` — one id per employee
//! *name* (`f` depends on the name only), one invented phone per
//! (name, project) pair, with the phone attribute open (employees may have
//! more phones).

use dx_core::skstd::SkMapping;
use dx_relation::Instance;

/// The example (8) mapping.
pub fn mapping() -> SkMapping {
    SkMapping::parse("T(f(em):cl, em:cl, g(em, proj):op) <- S(em, proj)").expect("parses")
}

/// A source with `n` employees, employee `i` working on `projects_per`
/// projects.
pub fn source(n: usize, projects_per: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        for p in 0..projects_per {
            s.insert_names("S", &[&format!("emp{i}"), &format!("proj{p}")]);
        }
    }
    s
}

/// The "intended" target: ids `id{i}`, phones `ph{i}_{p}` — a canonical
/// member of the semantics.
pub fn intended_target(n: usize, projects_per: usize) -> Instance {
    let mut t = Instance::new();
    for i in 0..n {
        for p in 0..projects_per {
            t.insert_names(
                "T",
                &[&format!("id{i}"), &format!("emp{i}"), &format!("ph{i}_{p}")],
            );
        }
    }
    t
}

/// A target violating the functional `f`: employee 0 with two ids.
pub fn two_id_target(n: usize, projects_per: usize) -> Instance {
    let mut t = intended_target(n, projects_per);
    t.insert_names("T", &["otherid0", "emp0", "ph_extra"]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intended_target_is_member() {
        let m = mapping();
        assert!(m
            .membership(&source(2, 2), &intended_target(2, 2))
            .is_some());
    }

    #[test]
    fn two_ids_rejected() {
        let m = mapping();
        assert!(m.membership(&source(2, 2), &two_id_target(2, 2)).is_none());
    }

    #[test]
    fn extra_phone_is_fine() {
        // The phone position is open: extra phones for an existing
        // (id, name) pair are allowed.
        let m = mapping();
        let mut t = intended_target(1, 1);
        t.insert_names("T", &["id0", "emp0", "second-phone"]);
        assert!(m.membership(&source(1, 1), &t).is_some());
    }
}
