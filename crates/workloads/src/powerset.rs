//! The polynomial-hierarchy gadget of §4: open nulls encode a powerset.
//!
//! Between Theorem 3's statement and proof, the paper sketches why `#op = 1`
//! already escapes the polynomial hierarchy: with the two-rule mapping
//!
//! ```text
//! E'(x:cl, y:cl) :- E(x, y)
//! P(x:cl, z:op)  :- V(x)
//! ```
//!
//! a sentence `Φ_p` can force `P` to encode the **powerset** of `V` (each
//! set of vertices is the `P`-preimage of some value), after which monadic
//! second-order quantification over `E` becomes first-order quantification
//! over `P`-indices — and MSO over graphs is hard for every level of PH.
//!
//! This module builds `Φ_p`, a worked MSO→FO example (2-colourability /
//! bipartiteness), and the powerset witness instances that make the whole
//! argument machine-checkable.

use dx_chase::Mapping;
use dx_logic::{Evaluator, Formula, Term};
use dx_relation::{Instance, Var};

/// The fixed `#op = 1` mapping of the gadget.
pub fn mapping() -> Mapping {
    Mapping::parse(
        "Ep(x:cl, y:cl) <- E(x, y);\n\
         P(x:cl, z:op)  <- V(x)",
    )
    .expect("parses")
}

fn v(n: &str) -> Var {
    Var::new(n)
}

fn atom(rel: &str, vars: &[&str]) -> Formula {
    Formula::atom(rel, vars.iter().map(|n| Term::var(n)).collect())
}

/// `Φ_p`: `P` encodes (at least) a powerset structure over its first column:
///
/// * **singletons** — for each vertex `a` there is an index `c` with
///   `P(a, c)` and no other `P(·, c)`;
/// * **unions** — for any indices `c₁, c₂` there is an index `c` whose set
///   is exactly the union of theirs.
pub fn phi_p() -> Formula {
    let singletons = Formula::forall(
        vec![v("a")],
        Formula::implies(
            Formula::exists(vec![v("w")], atom("P", &["a", "w"])),
            Formula::exists(
                vec![v("c")],
                Formula::and([
                    atom("P", &["a", "c"]),
                    Formula::forall(
                        vec![v("a2")],
                        Formula::implies(
                            atom("P", &["a2", "c"]),
                            Formula::Eq(Term::var("a2"), Term::var("a")),
                        ),
                    ),
                ]),
            ),
        ),
    );
    let unions = Formula::forall(
        vec![v("c1"), v("c2")],
        Formula::implies(
            Formula::and([
                Formula::exists(vec![v("u1")], atom("P", &["u1", "c1"])),
                Formula::exists(vec![v("u2")], atom("P", &["u2", "c2"])),
            ]),
            Formula::exists(
                vec![v("c")],
                Formula::forall(
                    vec![v("a")],
                    Formula::iff(
                        atom("P", &["a", "c"]),
                        Formula::or([atom("P", &["a", "c1"]), atom("P", &["a", "c2"])]),
                    ),
                ),
            ),
        ),
    );
    Formula::and([singletons, unions])
}

/// The MSO sentence "the graph is 2-colourable (bipartite)" translated to FO
/// over `{E', P}`: `∃c ∀u ∀v (E'(u,v) → (P(u,c) ↔ ¬P(v,c)))`.
pub fn bipartite_fo() -> Formula {
    Formula::exists(
        vec![v("c")],
        Formula::forall(
            vec![v("u"), v("w")],
            Formula::implies(
                atom("Ep", &["u", "w"]),
                Formula::iff(atom("P", &["u", "c"]), Formula::not(atom("P", &["w", "c"]))),
            ),
        ),
    )
}

/// Build the powerset witness: `E'` copies the edges; `P(vᵢ, s_m)` for every
/// subset mask `m ∋ i` over `n` vertices (index values `s_0 … s_{2ⁿ−1}`;
/// `s_0` is the empty set and gets a self-standing marker row only if
/// `include_empty`).
pub fn powerset_witness(n: usize, edges: &[(usize, usize)]) -> Instance {
    let mut inst = Instance::new();
    for &(a, b) in edges {
        inst.insert_names("Ep", &[&format!("v{a}"), &format!("v{b}")]);
    }
    for mask in 0u32..(1 << n) {
        for i in 0..n {
            if mask & (1 << i) != 0 {
                inst.insert_names("P", &[&format!("v{i}"), &format!("s{mask}")]);
            }
        }
    }
    inst
}

/// Evaluate an FO sentence over the powerset witness of a graph — the
/// workhorse for MSO-style properties in the experiments.
pub fn holds_on_powerset(n: usize, edges: &[(usize, usize)], sentence: &Formula) -> bool {
    let w = powerset_witness(n, edges);
    Evaluator::for_formula(&w, sentence).holds(sentence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::canonical_solution;
    use dx_solver::repa::rep_a_membership;

    #[test]
    fn phi_p_holds_on_full_powerset() {
        let w = powerset_witness(3, &[(0, 1)]);
        assert!(Evaluator::for_formula(&w, &phi_p()).holds(&phi_p()));
    }

    #[test]
    fn phi_p_fails_without_unions() {
        // Only singletons: union closure fails for n ≥ 2.
        let mut w = Instance::new();
        w.insert_names("P", &["v0", "s1"]);
        w.insert_names("P", &["v1", "s2"]);
        assert!(!Evaluator::for_formula(&w, &phi_p()).holds(&phi_p()));
    }

    #[test]
    fn witness_is_a_rep_a_member() {
        // The powerset witness really lives in Rep_A(CSol_A(S)).
        let mut s = Instance::new();
        s.insert_names("V", &["v0"]);
        s.insert_names("V", &["v1"]);
        s.insert_names("E", &["v0", "v1"]);
        let w = powerset_witness(2, &[(0, 1)]);
        let csol = canonical_solution(&mapping(), &s);
        assert!(rep_a_membership(&csol.instance, &w).is_some());
    }

    #[test]
    fn bipartiteness_via_powerset() {
        // Even cycle: bipartite. Odd cycle: not.
        let even = [(0, 1), (1, 2), (2, 3), (3, 0)];
        assert!(holds_on_powerset(4, &even, &bipartite_fo()));
        let odd = [(0, 1), (1, 2), (2, 0)];
        assert!(!holds_on_powerset(3, &odd, &bipartite_fo()));
    }
}
