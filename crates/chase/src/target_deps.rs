//! Target dependencies: tgds and egds over the target schema.
//!
//! The paper's conclusions (§6) single out the extension to mappings with
//! target constraints, noting that "adding weakly acyclic constraints would
//! lead to a terminating chase as in both open-world [FKMP'05] and
//! closed-world [Hernich–Schweikardt'07] cases". This module provides the
//! constraint language:
//!
//! * **tgds** `∀x̄ (φ(x̄) → ∃z̄ ψ(x̄, z̄))` with conjunctive bodies and
//!   annotated heads (invented positions carry their own `op`/`cl`
//!   annotations, consistent with the rest of the system);
//! * **egds** `∀x̄ (φ(x̄) → x = y)`;
//! * the **weak acyclicity** test on the position dependency graph.
//!
//! The chase itself lives in [`crate::chase_engine`].

use crate::std_dep::TargetAtom;
use dx_logic::{Formula, Term};
use dx_relation::{RelSym, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conjunctive-body tuple-generating dependency with annotated head.
#[derive(Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Body atoms (variables and constants only).
    pub body: Vec<(RelSym, Vec<Term>)>,
    /// Annotated head atoms.
    pub head: Vec<TargetAtom>,
}

/// An equality-generating dependency `φ(x̄) → u = v`.
#[derive(Clone, PartialEq, Eq)]
pub struct Egd {
    /// Body atoms.
    pub body: Vec<(RelSym, Vec<Term>)>,
    /// The two terms forced equal (variables of the body, or constants).
    pub eq: (Term, Term),
}

/// A target dependency.
#[derive(Clone, PartialEq, Eq)]
pub enum TargetDep {
    /// Tuple-generating.
    Tgd(Tgd),
    /// Equality-generating.
    Egd(Egd),
}

impl Tgd {
    /// Parse from rule syntax, e.g.
    /// `Sym(y:cl, x:cl) <- Edge(x, y)` (a symmetry tgd) or
    /// `HasDept(e:cl, d:op) <- Emp(e)` (an inventing tgd).
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        let rule = dx_logic::parse_rule(src)?;
        let body = conjunct_atoms(&rule.body).ok_or_else(|| dx_logic::ParseError {
            msg: "tgd bodies must be conjunctions of relational atoms".into(),
            pos: 0,
        })?;
        Ok(Tgd {
            body,
            head: rule
                .head
                .into_iter()
                .map(|a| TargetAtom::new(a.rel, a.args, dx_relation::Annotation::new(a.anns)))
                .collect(),
        })
    }

    /// Universal variables: those occurring in the body.
    pub fn universal_vars(&self) -> BTreeSet<Var> {
        self.body
            .iter()
            .flat_map(|(_, args)| args.iter().flat_map(|t| t.vars()))
            .collect()
    }

    /// Existential variables: head variables not in the body.
    pub fn existential_vars(&self) -> BTreeSet<Var> {
        let uni = self.universal_vars();
        self.head
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| !uni.contains(v))
            .collect()
    }
}

impl Egd {
    /// Parse from `u = v <- body` syntax, e.g.
    /// `y1 = y2 <- R(x, y1) & R(x, y2)` (a functional dependency).
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        let (lhs, rhs) = src.split_once("<-").ok_or_else(|| dx_logic::ParseError {
            msg: "egd must be written `u = v <- body`".into(),
            pos: 0,
        })?;
        let eq_formula = dx_logic::parse_formula(lhs.trim())?;
        let eq = match eq_formula {
            Formula::Eq(a, b) => (a, b),
            _ => {
                return Err(dx_logic::ParseError {
                    msg: "egd left-hand side must be a single equality".into(),
                    pos: 0,
                })
            }
        };
        let body_formula = dx_logic::parse_formula(rhs.trim())?;
        let body = conjunct_atoms(&body_formula).ok_or_else(|| dx_logic::ParseError {
            msg: "egd bodies must be conjunctions of relational atoms".into(),
            pos: 0,
        })?;
        Ok(Egd { body, eq })
    }
}

impl TargetDep {
    /// Parse a dependency: egd if the text before `<-` contains `=`,
    /// otherwise tgd.
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        let head_part = src.split("<-").next().unwrap_or("");
        if head_part.contains('=') {
            Ok(TargetDep::Egd(Egd::parse(src)?))
        } else {
            Ok(TargetDep::Tgd(Tgd::parse(src)?))
        }
    }

    /// Parse a `;`-separated list of dependencies.
    pub fn parse_many(src: &str) -> Result<Vec<Self>, dx_logic::ParseError> {
        src.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect()
    }
}

fn conjunct_atoms(f: &Formula) -> Option<Vec<(RelSym, Vec<Term>)>> {
    let mut out = Vec::new();
    fn go(f: &Formula, out: &mut Vec<(RelSym, Vec<Term>)>) -> bool {
        match f {
            Formula::Atom(r, args)
                if args
                    .iter()
                    .all(|t| matches!(t, Term::Var(_) | Term::Const(_))) =>
            {
                out.push((*r, args.clone()));
                true
            }
            Formula::And(fs) => fs.iter().all(|g| go(g, out)),
            Formula::True => true,
            _ => false,
        }
    }
    go(f, &mut out).then_some(out)
}

impl fmt::Display for TargetDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetDep::Tgd(t) => {
                for (i, a) in t.head.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, " <- ")?;
                fmt_body(f, &t.body)
            }
            TargetDep::Egd(e) => {
                write!(f, "{} = {} <- ", e.eq.0, e.eq.1)?;
                fmt_body(f, &e.body)
            }
        }
    }
}

impl fmt::Debug for TargetDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

fn fmt_body(f: &mut fmt::Formatter<'_>, body: &[(RelSym, Vec<Term>)]) -> fmt::Result {
    for (i, (r, args)) in body.iter().enumerate() {
        if i > 0 {
            write!(f, " & ")?;
        }
        write!(f, "{r}(")?;
        for (j, t) in args.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

/// A position `(relation, index)` in the dependency graph.
pub type Position = (RelSym, usize);

/// The position dependency graph of a set of tgds, used by the weak
/// acyclicity test of [FKMP'05] (egds never add edges).
#[derive(Default)]
pub struct DependencyGraph {
    /// Regular edges `p → q`.
    pub regular: BTreeSet<(Position, Position)>,
    /// Special edges `p ⇒ q` (into existential positions).
    pub special: BTreeSet<(Position, Position)>,
}

/// Build the position dependency graph.
pub fn dependency_graph(deps: &[TargetDep]) -> DependencyGraph {
    let mut g = DependencyGraph::default();
    for dep in deps {
        let tgd = match dep {
            TargetDep::Tgd(t) => t,
            TargetDep::Egd(_) => continue,
        };
        // Body positions of each universal variable.
        let mut body_pos: BTreeMap<Var, Vec<Position>> = BTreeMap::new();
        for (rel, args) in &tgd.body {
            for (i, t) in args.iter().enumerate() {
                if let Term::Var(v) = t {
                    body_pos.entry(*v).or_default().push((*rel, i));
                }
            }
        }
        let existential = tgd.existential_vars();
        // Head occurrences.
        let mut exist_pos: Vec<Position> = Vec::new();
        let mut head_universals: BTreeSet<Var> = BTreeSet::new();
        for atom in &tgd.head {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    if existential.contains(v) {
                        exist_pos.push((atom.rel, i));
                    } else {
                        head_universals.insert(*v);
                        // Regular edges from every body position of v.
                        if let Some(ps) = body_pos.get(v) {
                            for &p in ps {
                                g.regular.insert((p, (atom.rel, i)));
                            }
                        }
                    }
                }
            }
        }
        // Special edges: from every body position of every universal
        // variable occurring in the head, to every existential position.
        for v in &head_universals {
            if let Some(ps) = body_pos.get(v) {
                for &p in ps {
                    for &q in &exist_pos {
                        g.special.insert((p, q));
                    }
                }
            }
        }
    }
    g
}

/// Is the set of dependencies weakly acyclic (no cycle through a special
/// edge)? Guarantees chase termination ([FKMP'05] Thm 3.9; the paper's §6
/// points at the closed-world analogue of [Hernich–Schweikardt'07]).
pub fn is_weakly_acyclic(deps: &[TargetDep]) -> bool {
    let g = dependency_graph(deps);
    // Nodes.
    let mut nodes: BTreeSet<Position> = BTreeSet::new();
    for &(a, b) in g.regular.iter().chain(g.special.iter()) {
        nodes.insert(a);
        nodes.insert(b);
    }
    // For each special edge (p, q): check q cannot reach p (through any
    // edges). A cycle through the special edge exists iff q reaches p.
    let adj: BTreeMap<Position, Vec<Position>> = {
        let mut m: BTreeMap<Position, Vec<Position>> = BTreeMap::new();
        for &(a, b) in g.regular.iter().chain(g.special.iter()) {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let reaches = |from: Position, to: Position| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if seen.insert(p) {
                if let Some(next) = adj.get(&p) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    g.special.iter().all(|&(p, q)| !reaches(q, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tgd_and_egd() {
        let t = TargetDep::parse("Sym(y:cl, x:cl) <- Edge(x, y)").unwrap();
        assert!(matches!(t, TargetDep::Tgd(_)));
        let e = TargetDep::parse("y1 = y2 <- R(x, y1) & R(x, y2)").unwrap();
        assert!(matches!(e, TargetDep::Egd(_)));
        let both =
            TargetDep::parse_many("Sym(y:cl, x:cl) <- Edge(x, y); y1 = y2 <- R(x, y1) & R(x, y2)")
                .unwrap();
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn tgd_variable_classification() {
        let t = Tgd::parse("HasDept(e:cl, d:op) <- Emp(e)").unwrap();
        assert_eq!(t.universal_vars(), [Var::new("e")].into());
        assert_eq!(t.existential_vars(), [Var::new("d")].into());
    }

    #[test]
    fn weakly_acyclic_cases() {
        // Symmetry: only regular edges — weakly acyclic.
        let sym = TargetDep::parse_many("Sym(y:cl, x:cl) <- Edge(x, y)").unwrap();
        assert!(is_weakly_acyclic(&sym));
        // Egds alone are always weakly acyclic.
        let fd = TargetDep::parse_many("y1 = y2 <- R(x, y1) & R(x, y2)").unwrap();
        assert!(is_weakly_acyclic(&fd));
        // The classic non-terminating tgd: R(y, z) <- R(x, y) — the
        // existential z position feeds back into the body position of y.
        let cyc = TargetDep::parse_many("R(y:cl, z:cl) <- R(x, y)").unwrap();
        assert!(!is_weakly_acyclic(&cyc));
        // Inventing into a *different* relation, no feedback: acyclic.
        let ok = TargetDep::parse_many("Emp2(e:cl, d:cl) <- Emp(e)").unwrap();
        assert!(is_weakly_acyclic(&ok));
        // Mutual invention where existential positions are sinks: still
        // weakly acyclic (the restricted chase terminates).
        let sinks =
            TargetDep::parse_many("B(x:cl, z:cl) <- A(x, y); A(x:cl, z:cl) <- B(x, y)").unwrap();
        assert!(is_weakly_acyclic(&sinks));
        // Genuine two-step feedback: each rule feeds its invented value into
        // the position the other rule generates from.
        let loop2 =
            TargetDep::parse_many("B(y:cl, z:cl) <- A(x, y); A(y:cl, z:cl) <- B(x, y)").unwrap();
        assert!(!is_weakly_acyclic(&loop2));
    }

    #[test]
    fn dependency_graph_edges() {
        let deps = TargetDep::parse_many("R2(x:cl, z:op) <- R1(x, y)").unwrap();
        let g = dependency_graph(&deps);
        let r1 = RelSym::new("R1");
        let r2 = RelSym::new("R2");
        assert!(g.regular.contains(&((r1, 0), (r2, 0))));
        assert!(g.special.contains(&((r1, 0), (r2, 1))));
        // y does not occur in the head: no edges from (R1, 1).
        assert!(!g.regular.iter().any(|&(p, _)| p == (r1, 1)));
        assert!(!g.special.iter().any(|&(p, _)| p == (r1, 1)));
    }
}
