//! The annotated canonical (universal) solution `CSol_A(S)`.
//!
//! For each STD `ψ(x̄, z̄) :– φ(x̄, ȳ)` and each pair of tuples `(ā, b̄)` with
//! `φ(ā, b̄)` true in the source, a fresh tuple of distinct nulls
//! `⊥̄_(φ,ψ,ā,b̄)` is created and annotated head atoms are added so that
//! `ψ(ā, ⊥̄)` holds. If `φ` evaluates to the empty set, *empty annotated
//! tuples* are added for each head atom (§3, "Annotated canonical solution").
//!
//! The construction records one [`Justification`] per null — the object the
//! CWA machinery of [Libkin'06] and the composition argument of Claim 5 both
//! manipulate.

use crate::mapping::Mapping;
use crate::std_dep::Std;
use dx_logic::{Assignment, Evaluator, Formula, Term};
use dx_relation::{AnnInstance, AnnTuple, Instance, NullGen, NullId, Tuple, Value, Var};
use std::collections::BTreeMap;
use std::fmt;

/// The justification of a null: which STD, which body witness, and which
/// existential variable created it (`(φ, ψ, ā, b̄)` plus a variable among
/// `z̄` in the paper's notation).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Justification {
    /// Index of the STD in the mapping.
    pub std_idx: usize,
    /// The witness: values of the body's free variables, in
    /// [`Std::body_vars`] order.
    pub witness: Vec<Value>,
    /// The existential head variable this null instantiates.
    pub var: Var,
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(std#{}, {:?}, {})",
            self.std_idx, self.witness, self.var
        )
    }
}

impl fmt::Debug for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The annotated canonical solution together with its justification
/// bookkeeping.
#[derive(Clone)]
pub struct CanonicalSolution {
    /// The annotated instance `CSol_A(S)`.
    pub instance: AnnInstance,
    /// Origin of each null.
    pub null_origin: BTreeMap<NullId, Justification>,
    /// For each STD (by index), the satisfying assignments of its body over
    /// the source, in [`Std::body_vars`] order.
    pub witnesses: Vec<Vec<Vec<Value>>>,
}

impl CanonicalSolution {
    /// The unannotated canonical solution `CSol(S) = rel(CSol_A(S))`.
    pub fn rel_part(&self) -> Instance {
        self.instance.rel_part()
    }

    /// All nulls of the canonical solution, in creation order.
    pub fn nulls(&self) -> Vec<NullId> {
        self.null_origin.keys().copied().collect()
    }

    /// The null justified by `(std_idx, witness, var)`, if any.
    pub fn null_for(&self, std_idx: usize, witness: &[Value], var: Var) -> Option<NullId> {
        self.null_origin
            .iter()
            .find(|(_, j)| j.std_idx == std_idx && j.witness == witness && j.var == var)
            .map(|(&n, _)| n)
    }
}

impl fmt::Display for CanonicalSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.instance)
    }
}

impl fmt::Debug for CanonicalSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Strategy for evaluating STD bodies over source instances — the hook
/// that lets [`canonical_solution_via`] run its FO body evaluation on a
/// pluggable engine (the tree-walking reference here, or `dx-query`'s
/// compiled plans) without this crate depending on the engine.
///
/// **Contract:** `witnesses` must return exactly the satisfying
/// assignments of `std.body` over `source` in [`Std::body_vars`] order,
/// sorted ascending — the set the reference [`std_witnesses`] computes.
/// Null numbering (and hence every downstream justification) depends on
/// this order, so implementations are differentially tested for equality,
/// not just equivalence.
pub trait BodyEval {
    /// A short engine name (bench/JSON output).
    fn name(&self) -> &'static str;

    /// The satisfying assignments of `std.body` over `source`, in
    /// [`Std::body_vars`] order, sorted ascending.
    fn witnesses(&self, std: &Std, source: &Instance) -> Vec<Vec<Value>>;
}

/// The reference body evaluator: the tree-walking active-domain evaluator
/// of [`dx_logic::eval`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveBodyEval;

impl BodyEval for NaiveBodyEval {
    fn name(&self) -> &'static str {
        "naive-walk"
    }

    fn witnesses(&self, std: &Std, source: &Instance) -> Vec<Vec<Value>> {
        std_witnesses(std, source)
    }
}

/// Compute the annotated canonical solution `CSol_A(S)` of `source` under
/// `mapping`, with nulls numbered deterministically from `⊥0`.
///
/// The source must be ground (a `Const`-instance), as required by the
/// data-exchange setting. Body evaluation uses the tree-walking reference
/// engine; see [`canonical_solution_via`] for the pluggable variant.
pub fn canonical_solution(mapping: &Mapping, source: &Instance) -> CanonicalSolution {
    canonical_solution_via(&NaiveBodyEval, mapping, source)
}

/// [`canonical_solution`] with a pluggable STD-body evaluation engine.
/// Because [`BodyEval`] implementations must reproduce the reference
/// witness order exactly, the result is identical across engines (asserted
/// by `tests/query_differential.rs`).
pub fn canonical_solution_via(
    eval: &dyn BodyEval,
    mapping: &Mapping,
    source: &Instance,
) -> CanonicalSolution {
    assert!(source.is_ground(), "source instances must be over Const");
    let mut gen = NullGen::new();
    let mut instance = AnnInstance::new();
    let mut null_origin = BTreeMap::new();
    let mut witnesses = Vec::with_capacity(mapping.stds.len());

    // Make sure every target relation exists in the output, even if no STD
    // fires (arities retrievable; harmless for semantics).
    for std in &mapping.stds {
        let rows = eval.witnesses(std, source);

        if rows.is_empty() {
            // Empty annotated tuples, one per head atom.
            for atom in &std.head {
                instance.insert_empty_mark(atom.rel, atom.ann.clone());
            }
        }

        for row in &rows {
            let env = head_env(std, row, &mut gen, |var, null| {
                null_origin.insert(
                    null,
                    Justification {
                        std_idx: witnesses.len(),
                        witness: row.clone(),
                        var,
                    },
                );
            });
            for atom in &std.head {
                let tuple = instantiate_atom(&atom.args, &env);
                instance.insert(atom.rel, AnnTuple::new(tuple, atom.ann.clone()));
            }
        }
        witnesses.push(rows);
    }

    CanonicalSolution {
        instance,
        null_origin,
        witnesses,
    }
}

/// The satisfying assignments of `std`'s body over `source`, in
/// [`Std::body_vars`] order.
pub fn std_witnesses(std: &Std, source: &Instance) -> Vec<Vec<Value>> {
    let vars = std.body_vars();
    let ev = Evaluator::for_formula(source, &std.body);
    ev.satisfying_assignments(&std.body, &vars)
}

/// Build the head environment for one witness row: frontier variables get
/// their witness values, existential variables get fresh nulls (reported to
/// `on_null`). Public so incremental maintainers (`dx-engine`'s streaming
/// layer) can re-instantiate heads witness-by-witness with *recorded* null
/// bookkeeping instead of re-running the whole construction.
pub fn head_env(
    std: &Std,
    row: &[Value],
    gen: &mut NullGen,
    mut on_null: impl FnMut(Var, NullId),
) -> BTreeMap<Var, Value> {
    let mut env: BTreeMap<Var, Value> = std
        .body_vars()
        .into_iter()
        .zip(row.iter().copied())
        .collect();
    for z in std.existential_vars() {
        let null = gen.fresh();
        on_null(z, null);
        env.insert(z, Value::Null(null));
    }
    env
}

/// Instantiate head-atom arguments under an environment.
pub fn instantiate_atom(args: &[Term], env: &BTreeMap<Var, Value>) -> Tuple {
    Tuple::new(
        args.iter()
            .map(|t| match t {
                Term::Var(v) => *env
                    .get(v)
                    .unwrap_or_else(|| panic!("head variable {v} unbound")),
                Term::Const(c) => Value::Const(*c),
                Term::App(_, _) => unreachable!("plain STDs have no function terms"),
            })
            .collect::<Vec<_>>(),
    )
}

/// Evaluate whether `(source, target)` satisfies one STD under the classical
/// (unannotated) reading `∀x̄∀ȳ (φ → ∃z̄ ψ)`; used by the OWA-solution check.
pub fn std_satisfied(std: &Std, source: &Instance, target: &Instance) -> bool {
    let rows = std_witnesses(std, source);
    if rows.is_empty() {
        return true;
    }
    // ∃z̄. ⋀ head atoms, evaluated over the target with frontier variables
    // bound to witness values.
    let zvars: Vec<Var> = std.existential_vars().into_iter().collect();
    let head_formula = Formula::exists(
        zvars,
        Formula::and(
            std.head
                .iter()
                .map(|a| Formula::Atom(a.rel, a.args.clone())),
        ),
    );
    let body_vars = std.body_vars();
    for row in rows {
        // Quantifier domain: target adom plus the witness values themselves.
        let mut dom = target.active_domain();
        dom.extend(row.iter().copied());
        let ev = Evaluator::with_domain_and_funcs(target, dom, &dx_logic::NoFuncs);
        let mut asg = Assignment::new();
        for (v, val) in body_vars.iter().zip(row.iter()) {
            asg.bind(*v, *val);
        }
        if !ev.eval(&head_formula, &mut asg) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, RelSym};

    /// The paper's running example: E = {(a,c1),(a,c2),(b,c3)} under
    /// R(x:cl, z:op) :- E(x,y) gives {(a^cl,⊥0^op),(a^cl,⊥1^op),(b^cl,⊥2^op)}.
    #[test]
    fn papers_running_example() {
        let m = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c1"]);
        s.insert_names("E", &["a", "c2"]);
        s.insert_names("E", &["b", "c3"]);
        let csol = canonical_solution(&m, &s);
        let r = csol.instance.relation(RelSym::new("R")).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(csol.null_origin.len(), 3);
        // Each tuple has a constant first coordinate (cl) and a distinct null
        // second coordinate (op).
        let mut nulls = std::collections::BTreeSet::new();
        for at in r.iter() {
            assert!(at.tuple.get(0).is_const());
            assert!(at.tuple.get(1).is_null());
            assert_eq!(at.ann.get(0), Ann::Closed);
            assert_eq!(at.ann.get(1), Ann::Open);
            nulls.insert(at.tuple.get(1));
        }
        assert_eq!(nulls.len(), 3, "distinct nulls per justification");
    }

    /// Paper §3: STD R(x:op, z1:cl) ∧ R(x:cl, z2:op) with S = {(a,c)} gives
    /// CSol_A(S) = {(a^op, ⊥1^cl), (a^cl, ⊥2^op)}.
    #[test]
    fn mixed_annotations_same_variable() {
        let m = Mapping::parse("R(x:op, z1:cl), R(x:cl, z2:op) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c"]);
        let csol = canonical_solution(&m, &s);
        let r = csol.instance.relation(RelSym::new("R")).unwrap();
        assert_eq!(r.len(), 2);
        let anns: Vec<_> = r.iter().map(|at| at.ann.clone()).collect();
        assert!(anns.contains(&dx_relation::Annotation::new(vec![Ann::Open, Ann::Closed])));
        assert!(anns.contains(&dx_relation::Annotation::new(vec![Ann::Closed, Ann::Open])));
        assert_eq!(csol.null_origin.len(), 2);
    }

    #[test]
    fn empty_source_produces_empty_marks() {
        let m = Mapping::parse("R(x:cl, z:op) <- E(x, y); U(w:op) <- V(w)").unwrap();
        let mut s = Instance::new();
        s.insert_names("V", &["v1"]); // E empty, V nonempty
        let csol = canonical_solution(&m, &s);
        let r = csol.instance.relation(RelSym::new("R")).unwrap();
        assert_eq!(r.len(), 0);
        assert_eq!(r.empty_marks().count(), 1);
        let u = csol.instance.relation(RelSym::new("U")).unwrap();
        assert_eq!(u.len(), 1);
        assert_eq!(u.empty_marks().count(), 0);
    }

    #[test]
    fn negation_in_body() {
        // Reviews(x:cl, z:op) for unassigned papers only.
        let m =
            Mapping::parse("Reviews(x:cl, z:op) <- Papers(x, y) & !exists r. Assignments(x, r)")
                .unwrap();
        let mut s = Instance::new();
        s.insert_names("Papers", &["p1", "t1"]);
        s.insert_names("Papers", &["p2", "t2"]);
        s.insert_names("Assignments", &["p1", "rev1"]);
        let csol = canonical_solution(&m, &s);
        let r = csol.instance.relation(RelSym::new("Reviews")).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().tuple.get(0), Value::c("p2"));
    }

    #[test]
    fn justification_lookup() {
        let m = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let csol = canonical_solution(&m, &s);
        let witness = vec![Value::c("a"), Value::c("b")];
        let n = csol.null_for(0, &witness, Var::new("z"));
        assert!(n.is_some());
        assert_eq!(csol.null_origin[&n.unwrap()].witness, witness);
    }

    #[test]
    fn std_satisfied_owa_style() {
        let std = Std::parse("R(x:op, z:op) <- E(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        // Target with R(a, k) satisfies ∃z R(a,z).
        let mut t = Instance::new();
        t.insert_names("R", &["a", "k"]);
        assert!(std_satisfied(&std, &s, &t));
        // Empty target does not.
        assert!(!std_satisfied(&std, &s, &Instance::new()));
    }

    #[test]
    #[should_panic(expected = "must be over Const")]
    fn non_ground_source_rejected() {
        let m = Mapping::parse("R(x:cl) <- E(x)").unwrap();
        let mut s = Instance::new();
        s.insert(RelSym::new("E"), Tuple::new(vec![Value::null(0)]));
        canonical_solution(&m, &s);
    }
}
